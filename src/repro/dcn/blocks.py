"""DCN building blocks: aggregation blocks across generations.

§2.1: the spine-free fabric interconnects heterogeneous aggregation
blocks (ABs) -- different generations run different per-port rates yet
share the same OCS layer thanks to backward-compatible transceivers
(rapid technology refresh).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.optics.transceiver import TransceiverSpec, interoperable, transceiver


class BlockGeneration(enum.Enum):
    """Aggregation-block generations with their uplink transceivers."""

    GEN_40G = "qsfp_40g"
    GEN_100G = "qsfp28_100g"
    GEN_200G = "qsfp56_200g"
    GEN_400G = "osfp_400g"

    @property
    def spec(self) -> TransceiverSpec:
        return transceiver(self.value)

    @property
    def uplink_rate_gbps(self) -> float:
        return self.spec.max_rate_gbps


@dataclass(frozen=True)
class AggregationBlock:
    """One aggregation block: a pod of ToR+aggregation switches.

    Args:
        index: block number within the fabric.
        uplinks: fiber trunks toward the interconnect layer.
        generation: transceiver generation for those uplinks.
    """

    index: int
    uplinks: int = 64
    generation: BlockGeneration = BlockGeneration.GEN_400G

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("block index must be non-negative")
        if self.uplinks <= 0:
            raise ConfigurationError("block needs at least one uplink")

    @property
    def uplink_rate_gbps(self) -> float:
        return self.generation.uplink_rate_gbps

    @property
    def total_uplink_gbps(self) -> float:
        return self.uplinks * self.uplink_rate_gbps

    def can_link(self, other: "AggregationBlock") -> bool:
        """Different-generation blocks interconnect when their
        transceivers interoperate (§2.1 rapid technology refresh)."""
        return interoperable(self.generation.spec, other.generation.spec)

    def link_rate_gbps(self, other: "AggregationBlock") -> float:
        """Rate of one trunk between the two blocks: the highest line
        rate both generations support, across the module's lanes."""
        if not self.can_link(other):
            raise ConfigurationError(
                f"ab-{self.index} ({self.generation.name}) cannot link "
                f"ab-{other.index} ({other.generation.name})"
            )
        a, b = self.generation.spec, other.generation.spec
        common = a.common_rate_gbps(b)
        lanes = min(a.lanes, b.lanes)
        return common * lanes

    def __str__(self) -> str:
        return f"ab-{self.index:02d}({self.generation.name}, {self.uplinks} up)"
