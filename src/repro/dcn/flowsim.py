"""Max-min fair flow-level simulation: flow completion times.

Flows follow the paths the traffic-engineering router picked for their
block pair; link bandwidth is shared max-min fairly (progressive
filling), and rates are recomputed at every arrival/completion -- the
standard fluid approximation for TCP-like sharing.  Comparing FCTs on an
engineered vs a uniform mesh reproduces the §4.2 "10% improvement in
flow completion time" result.

Three implementations of the event loop coexist, fastest first:

- :meth:`FlowSimulator.run` -- the **incremental water-filling engine**.
  Per-link active counts, the per-flow rate vector, and a completion
  calendar persist across events; an arrival/departure re-solves only
  the connected component of the flow/link interaction graph reachable
  from the touched links (the affected-subgraph trick), falling back to
  a full solve when that frontier exceeds a threshold.  Max-min
  progressive filling decomposes exactly over components -- the per-link
  subtraction sequence is identical whether a component is solved alone
  or interleaved in a global solve -- so the incremental allocations are
  bit-exact against the full per-event solve.
- :meth:`FlowSimulator.run_full_solve` -- the previous vectorized path:
  one :meth:`_IncidenceSystem.fill_rates` pass per event over a
  persistent link x flow incidence structure (with a dict-kernel
  fallback below :attr:`FlowSimulator.dict_kernel_crossover` active
  flows).  Kept as the perf-regression baseline the incremental engine
  is measured against.
- :meth:`FlowSimulator.run_reference` -- the original per-event dict
  loop: the bit-exact oracle for both of the above.

The allocation kernels follow the same pattern:
:func:`max_min_rates` is the incidence-matrix water-filler and
:func:`max_min_rates_reference` its dict-loop oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.traffic_engineering import RoutingSolution
from repro.obs import NULL_OBS, resolve_obs

Link = Tuple[int, int]

#: A per-event allocation probe: ``probe(now_s, {flow_id: rate_gbps})``
#: fired once per event iteration with the allocation for the current
#: active set.  The incremental/full/reference parity suites use it to
#: pin allocations at every event boundary.
RateProbe = Callable[[float, Dict[int, float]], None]

#: Below this many concurrently active flows the full-solve path falls
#: back to the dict kernel: NumPy per-call overhead only pays off once
#: the incidence arrays have some width.  Both kernels produce identical
#: allocations (the property suite pins them together), so the crossover
#: is purely a performance knob -- now a :class:`FlowSimulator` field so
#: perf cases can sweep it without monkeypatching.
_DICT_KERNEL_CROSSOVER = 32

#: Default incremental-engine fallback threshold: when the affected
#: component (the "dirty set") reachable from an event's touched links
#: exceeds this many flows, the engine stops walking and re-solves the
#: whole active set with :meth:`_IncidenceSystem.fill_rates` instead.
#: Allocations are identical either way; this bounds the Python frontier
#: walk so pathological all-connected workloads degrade gracefully to
#: the vectorized full solve.
_INCREMENTAL_MAX_FRONTIER = 96

#: Relative half-width of the calendar's pop re-evaluation window.  Heap
#: keys are projected absolute finish times computed when a flow's rate
#: last changed; the freshly recomputed value can drift from the key by
#: accumulated float rounding (~2^-52 per drain event, so ~1e-11
#: relative after 10^5 events).  Popping every entry within this much of
#: the top and re-evaluating with the oracle's exact arithmetic keeps
#: completion picks bit-identical to a per-event argmin while leaving
#: >100x margin over the drift bound.
_CALENDAR_REL_WINDOW = 4e-9


@dataclass(frozen=True)
class Flow:
    """One flow between aggregation blocks."""

    flow_id: int
    src: int
    dst: int
    size_gbit: float
    arrival_s: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError("flow endpoints must differ")
        if self.size_gbit <= 0:
            raise ConfigurationError("flow size must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival must be non-negative")


@dataclass(frozen=True)
class FlowRecord:
    """Completion record."""

    flow: Flow
    start_s: float
    finish_s: float

    @property
    def fct_s(self) -> float:
        return self.finish_s - self.flow.arrival_s


def _links_of(path: Tuple[int, ...]) -> List[Link]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


class _IncidenceSystem:
    """A link x flow incidence structure in flat CSR arrays.

    ``flat`` holds the link index of every (flow, link) membership and
    ``owner`` the flow index of the same entry, both ``int32`` so 65k-port
    link sets stay hot in cache.  Entries are indexed both ways --
    grouped by flow (``flow_start``/``flow_len``) and, lazily, by link
    (``link_start``/``link_len``/``link_owner``) -- so per-link active
    counts are one ``np.bincount`` pass, each filling round touches only
    the entries it actually freezes, and the incremental engine can walk
    link -> flows adjacency without rebuilding anything.  Built once and
    reused across events by the simulator.
    """

    __slots__ = (
        "flat",
        "owner",
        "num_flows",
        "capacity",
        "flow_start",
        "flow_len",
        "_link_csr",
    )

    def __init__(self, cols: Sequence[np.ndarray], capacity: np.ndarray) -> None:
        self.num_flows = len(cols)
        self.capacity = np.asarray(capacity, dtype=float)
        lens = np.array([len(c) for c in cols], dtype=np.int32)
        if cols:
            self.flat = np.concatenate(cols).astype(np.int32, copy=False)
            self.owner = np.repeat(
                np.arange(self.num_flows, dtype=np.int32), lens
            )
        else:
            self.flat = np.empty(0, dtype=np.int32)
            self.owner = np.empty(0, dtype=np.int32)
        self.flow_len = lens
        self.flow_start = np.concatenate(
            ([0], np.cumsum(lens[:-1]))
        ).astype(np.int32) if len(cols) else np.empty(0, dtype=np.int32)
        self._link_csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def link_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(link_start, link_len, link_owner)``: entries grouped by link."""
        if self._link_csr is None:
            num_links = self.capacity.size
            order = np.argsort(self.flat, kind="stable")
            link_owner = self.owner[order]
            link_len = np.bincount(self.flat, minlength=num_links).astype(np.int32)
            link_start = np.zeros(num_links, dtype=np.int64)
            np.cumsum(link_len[:-1], out=link_start[1:])
            self._link_csr = (link_start, link_len, link_owner)
        return self._link_csr

    def fill_rates(self, active: np.ndarray) -> np.ndarray:
        """Progressive-filling max-min allocation over the active flows.

        Entries are compacted to the active flows once; every round then
        computes per-link active counts and fair shares as array ops.
        Every link exactly at the minimum share saturates in the same
        round -- freezing tied bottlenecks together matches
        one-at-a-time progressive filling, since removing one tied link's
        flows leaves every other tied link's share unchanged
        ((c - k*s) / (n - k) == s when c/n == s).  Returns a rate per
        flow (0.0 for inactive flows and for flows starved by a
        zero-capacity link).
        """
        num_links = self.capacity.size
        rates = np.zeros(self.num_flows)
        selected = active[self.owner]
        # Storage is int32 (cache footprint at 65k-port link sets); the
        # water-filling rounds index with these arrays repeatedly, and
        # NumPy re-casts non-intp index arrays on every use -- one
        # up-front cast of the compacted entries wins it back.
        flat = self.flat[selected].astype(np.intp, copy=False)
        owner = self.owner[selected].astype(np.intp, copy=False)
        if not flat.size:
            return rates
        remaining = self.capacity.copy()
        alive = np.ones(flat.size, dtype=bool)
        while alive.any():
            counts = np.bincount(flat[alive], minlength=num_links)
            used = counts > 0
            share = np.where(used, remaining / np.where(used, counts, 1), np.inf)
            fair = share.min()
            frozen = np.zeros(self.num_flows, dtype=bool)
            frozen[owner[(share == fair)[flat] & alive]] = True
            entries = frozen[owner] & alive
            decrement = np.bincount(flat[entries], minlength=num_links)
            remaining -= fair * decrement
            np.maximum(remaining, 0.0, out=remaining)
            rates[frozen] = fair
            # Frozen entries are a subset of the alive ones, so XOR
            # removes them in place without a temporary.
            alive ^= entries
        return rates


def _index_links(
    flow_paths: Dict[int, List[Link]], link_capacity: Dict[Link, float]
) -> Tuple[Dict[Link, int], np.ndarray]:
    """Index every link any flow touches; absent links get 0 capacity."""
    link_index: Dict[Link, int] = {}
    for links in flow_paths.values():
        for link in links:
            if link not in link_index:
                link_index[link] = len(link_index)
    capacity = np.array(
        [link_capacity.get(link, 0.0) for link in link_index], dtype=float
    )
    return link_index, capacity


def max_min_rates(
    flow_paths: Dict[int, List[Link]],
    link_capacity: Dict[Link, float],
) -> Dict[int, float]:
    """Progressive-filling max-min fair allocation.

    Repeatedly saturate the bottleneck link with the smallest fair share
    and freeze its flows.  Runs on a link x flow incidence matrix with
    per-round counts and shares as NumPy array ops; property-tested
    against the dict-loop oracle :func:`max_min_rates_reference`.
    """
    link_index, capacity = _index_links(flow_paths, link_capacity)
    fids = list(flow_paths)
    cols = [
        np.array([link_index[link] for link in flow_paths[fid]], dtype=np.int32)
        for fid in fids
    ]
    system = _IncidenceSystem(cols, capacity)
    active = np.array([len(c) > 0 for c in cols], dtype=bool)
    rates = system.fill_rates(active)
    return {fid: float(rates[i]) for i, fid in enumerate(fids) if active[i]}


def max_min_rates_reference(
    flow_paths: Dict[int, List[Link]],
    link_capacity: Dict[Link, float],
) -> Dict[int, float]:
    """Dict-loop oracle for :func:`max_min_rates` (original implementation).

    Kept for the property suite and the perf-regression harness.
    """
    active = dict(flow_paths)
    remaining = dict(link_capacity)
    rates: Dict[int, float] = {}
    while active:
        counts: Dict[Link, int] = {}
        for links in active.values():
            for link in links:
                counts[link] = counts.get(link, 0) + 1
        bottleneck, share = None, float("inf")
        for link, count in counts.items():
            s = remaining.get(link, 0.0) / count
            if s < share:
                share, bottleneck = s, link
        if bottleneck is None:
            break
        frozen = [
            fid for fid, links in active.items() if bottleneck in links
        ]
        for fid in frozen:
            rates[fid] = share
            for link in active[fid]:
                remaining[link] = max(0.0, remaining[link] - share)
            del active[fid]
    return rates


@dataclass
class FlowSimulator:
    """Fluid flow simulation over a routed spine-free fabric.

    Args:
        path_policy: ``"primary"`` pins every flow of a pair to the
            highest-weight routed path; ``"wcmp"`` hashes each flow onto
            one of the pair's routed paths with probability proportional
            to the routed weight (flow-level weighted-cost multipath).
        dict_kernel_crossover: active-flow count below which
            :meth:`run_full_solve` uses the dict allocation kernel
            instead of the incidence-matrix kernel (perf knob; both
            kernels allocate identically).
        incremental_max_frontier: dirty-set size (in flows) above which
            :meth:`run` abandons the component walk for one event and
            re-solves the whole active set (perf knob; allocations are
            identical either way).
        obs: optional :class:`repro.obs.Observability` bundle; the
            incremental engine lands frontier sizes, dirty fractions,
            full-solve fallbacks, and calendar traffic on it.
    """

    fabric: SpineFreeFabric
    routing: RoutingSolution
    path_policy: str = "primary"
    seed: int = 0
    dict_kernel_crossover: int = _DICT_KERNEL_CROSSOVER
    incremental_max_frontier: int = _INCREMENTAL_MAX_FRONTIER
    obs: Optional[object] = None

    def __post_init__(self) -> None:
        if self.path_policy not in ("primary", "wcmp"):
            raise ConfigurationError(
                f"path policy must be 'primary' or 'wcmp', got {self.path_policy!r}"
            )
        if self.dict_kernel_crossover < 0:
            raise ConfigurationError("dict_kernel_crossover must be >= 0")
        if self.incremental_max_frontier < 1:
            raise ConfigurationError("incremental_max_frontier must be >= 1")
        self._path_rng = np.random.default_rng(self.seed)
        self._obs = resolve_obs(self.obs)

    def _path_for(self, src: int, dst: int) -> Tuple[int, ...]:
        """Route one flow of the pair per the path policy."""
        options = self.routing.path_for(src, dst)
        if not options:
            return (src, dst)
        if self.path_policy == "primary":
            return max(options, key=lambda pw: pw[1])[0]
        weights = np.array([w for _, w in options], dtype=float)
        total = weights.sum()
        if total <= 0:
            return options[0][0]
        idx = int(self._path_rng.choice(len(options), p=weights / total))
        return options[idx][0]

    def _capacities(self) -> Dict[Link, float]:
        """Lit-link capacities as a dict, in row-major link order.

        One ``np.nonzero`` pass over the capacity matrix instead of the
        O(n^2) Python double loop -- at 65k-port (1k-block) fabrics the
        matrix scan is pure NumPy and only lit links pay Python cost.
        """
        c = np.asarray(self.routing.link_capacity_gbps, dtype=float)
        rows, cols = np.nonzero(c > 0.0)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
        values = c[rows, cols]
        return {
            (int(i), int(j)): float(v)
            for i, j, v in zip(rows.tolist(), cols.tolist(), values.tolist())
        }

    def _routed_paths(
        self, flows: Sequence[Flow], capacity: Dict[Link, float]
    ) -> Dict[int, List[Link]]:
        """Route every flow and validate against the lit-link capacities."""
        paths = {f.flow_id: _links_of(self._path_for(f.src, f.dst)) for f in flows}
        for f in flows:
            for link in paths[f.flow_id]:
                if link not in capacity:
                    raise ConfigurationError(
                        f"flow {f.flow_id} routed over dark link {link}"
                    )
        return paths

    def _prepare(
        self, flows: Sequence[Flow]
    ) -> Tuple[Dict[Link, float], Dict[int, List[Link]], List[Flow], List[List[int]], np.ndarray]:
        """Shared event-loop setup: capacities, routes, arrival order,
        and per-flow link-index columns (plain lists; callers lift to
        arrays as needed)."""
        if not flows:
            raise ConfigurationError("need at least one flow")
        capacity = self._capacities()
        paths = self._routed_paths(flows, capacity)
        ordered = sorted(flows, key=lambda f: f.arrival_s)
        link_index, cap_vector = _index_links(
            {f.flow_id: paths[f.flow_id] for f in ordered}, capacity
        )
        cols = [
            [link_index[link] for link in paths[f.flow_id]] for f in ordered
        ]
        return capacity, paths, ordered, cols, cap_vector

    # ------------------------------------------------------------------ #
    # The incremental water-filling engine
    # ------------------------------------------------------------------ #

    def run(
        self, flows: Sequence[Flow], rate_probe: Optional[RateProbe] = None
    ) -> List[FlowRecord]:
        """Simulate until every flow finishes; returns completion records.

        The incremental engine.  Per-event work is proportional to the
        **affected component** -- the flows and links reachable from the
        arriving/completing flow's links through shared active links --
        not to the whole active set:

        - per-link active counts, the rate vector, and each flow's
          remaining volume persist across events;
        - an arrival/departure walks the affected component and re-runs
          progressive filling on it alone (max-min allocations decompose
          exactly over components, so this is bit-identical to the full
          per-event solve of :meth:`run_full_solve`);
        - when the walk exceeds :attr:`incremental_max_frontier` flows
          it falls back to one vectorized full solve for that event;
        - projected completions live in an indexed heap with lazy
          invalidation (absolute finish times are invariant while a
          flow's rate is unchanged); pops re-evaluate an epsilon-window
          of candidates with the oracle's exact arithmetic, so the
          winning flow and its finish time are bit-identical to the
          per-event argmin of :meth:`run_reference`.

        ``rate_probe`` (if given) fires once per event iteration with
        the current allocation; the property suite uses it to pin
        incremental == full-solve == reference at every event boundary.
        """
        _, _, ordered, cols_py, cap_vector = self._prepare(flows)
        num_flows = len(ordered)
        num_links = int(cap_vector.size)
        system = _IncidenceSystem(
            [np.asarray(c, dtype=np.int32) for c in cols_py], cap_vector
        )
        link_start_np, link_len_np, link_owner_np = system.link_csr()
        # Python-side mirrors: the frontier walk and small-component
        # fills run on plain ints/floats -- at typical component sizes
        # (a handful of flows) interpreter ops beat NumPy call overhead.
        link_start_py = link_start_np.tolist()
        link_len_py = link_len_np.tolist()
        link_owner_py = link_owner_np.tolist()
        capacity_py = cap_vector.tolist()
        arrivals_py = [f.arrival_s for f in ordered]

        active_np = np.zeros(num_flows, dtype=bool)
        active_py = bytearray(num_flows)
        remaining = np.zeros(num_flows)
        start = np.zeros(num_flows)
        rates = np.zeros(num_flows)
        version = [0] * num_flows
        heap: List[Tuple[float, int, int]] = []
        link_active = [0] * num_links
        # Compact active-index array (swap-remove) for the sparse drain.
        act_idx = np.empty(num_flows, dtype=np.int32)
        act_pos = [0] * num_flows
        # Scratch for the component walk, reset via touched lists.
        flow_seen = bytearray(num_flows)
        link_seen = bytearray(num_links)

        obs = self._obs
        metrics = obs.metrics
        events_ctr = metrics.counter("flowsim.events")
        fallback_ctr = metrics.counter("flowsim.full_solve_fallbacks")
        stale_ctr = metrics.counter("flowsim.calendar.stale_pops")
        push_ctr = metrics.counter("flowsim.calendar.pushes")
        frontier_hist = metrics.histogram("flowsim.frontier.flows")
        dirty_hist = metrics.histogram("flowsim.dirty_fraction")

        max_frontier = self.incremental_max_frontier
        cursor = 0
        num_active = 0
        now = 0.0
        records: List[FlowRecord] = []
        inf = float("inf")

        def component_from(f: int) -> Optional[Tuple[List[int], List[int]]]:
            """Active flows/links reachable from ``f``'s links, or None
            when the walk exceeds the fallback threshold."""
            comp_links: List[int] = []
            comp_flows: List[int] = []
            stack: List[int] = []
            for l in cols_py[f]:
                if not link_seen[l]:
                    link_seen[l] = 1
                    comp_links.append(l)
                    stack.append(l)
            overflow = False
            while stack:
                l = stack.pop()
                if not link_active[l]:
                    continue
                s = link_start_py[l]
                for k in range(s, s + link_len_py[l]):
                    o = link_owner_py[k]
                    if flow_seen[o] or not active_py[o]:
                        continue
                    flow_seen[o] = 1
                    comp_flows.append(o)
                    if len(comp_flows) > max_frontier:
                        overflow = True
                        stack.clear()
                        break
                    for l2 in cols_py[o]:
                        if not link_seen[l2]:
                            link_seen[l2] = 1
                            comp_links.append(l2)
                            stack.append(l2)
            for l in comp_links:
                link_seen[l] = 0
            for o in comp_flows:
                flow_seen[o] = 0
            if overflow:
                return None
            return comp_flows, comp_links

        def fill_component(
            comp_flows: List[int], comp_links: List[int]
        ) -> Dict[int, float]:
            """Progressive filling restricted to one component, with the
            same float arithmetic as :meth:`_IncidenceSystem.fill_rates`
            (shares as remaining/count, tied bottlenecks frozen together,
            remaining clamped at zero)."""
            rem = {l: capacity_py[l] for l in comp_links}
            alive = dict.fromkeys(comp_flows)
            out: Dict[int, float] = {}
            while alive:
                counts: Dict[int, int] = {}
                for o in alive:
                    for l in cols_py[o]:
                        counts[l] = counts.get(l, 0) + 1
                fair = inf
                for l, cnt in counts.items():
                    s = rem[l] / cnt
                    if s < fair:
                        fair = s
                frozen = [
                    o
                    for o in alive
                    if any(rem[l] / counts[l] == fair for l in cols_py[o])
                ]
                dec: Dict[int, int] = {}
                for o in frozen:
                    for l in cols_py[o]:
                        dec[l] = dec.get(l, 0) + 1
                for l, d in dec.items():
                    r = rem[l] - fair * d
                    rem[l] = r if r > 0.0 else 0.0
                for o in frozen:
                    out[o] = fair
                    del alive[o]
            return out

        def reallocate(f: int) -> None:
            """Refresh rates after ``f`` arrived/departed: solve the
            affected component (or everything, past the threshold) and
            re-key the calendar for flows whose rate changed."""
            comp = component_from(f)
            if comp is None:
                fallback_ctr.inc()
                frontier_hist.observe(float(num_active))
                dirty_hist.observe(1.0)
                new = system.fill_rates(active_np)
                changed = np.flatnonzero(new != rates)
                rates[:] = new
                for ii in changed.tolist():
                    version[ii] += 1
                    r = new[ii]
                    if r > 0.0:
                        push_ctr.inc()
                        heappush(
                            heap,
                            (now + float(remaining[ii]) / float(r), ii, version[ii]),
                        )
                return
            comp_flows, _comp_links = comp
            frontier_hist.observe(float(len(comp_flows)))
            if num_active:
                dirty_hist.observe(len(comp_flows) / num_active)
            if not comp_flows:
                return
            for o, r in fill_component(comp_flows, _comp_links).items():
                if r != rates[o]:
                    rates[o] = r
                    version[o] += 1
                    if r > 0.0:
                        push_ctr.inc()
                        heappush(
                            heap, (now + float(remaining[o]) / r, o, version[o])
                        )

        def next_finish() -> Optional[Tuple[float, int]]:
            """Earliest projected completion, re-evaluated freshly.

            Pops every live entry within the drift window of the top and
            recomputes ``now + remaining/rate`` (the oracle's formula on
            the eagerly-drained state); ties resolve to the lowest flow
            index, matching the reference argmin."""
            while heap and heap[0][2] != version[heap[0][1]]:
                heappop(heap)
                stale_ctr.inc()
            if not heap:
                return None
            k0 = heap[0][0]
            mag = k0 if k0 > 1.0 else 1.0
            limit = k0 + _CALENDAR_REL_WINDOW * mag
            cands: List[int] = []
            while heap and heap[0][0] <= limit:
                k, i, v = heappop(heap)
                if v == version[i]:
                    cands.append(i)
                else:
                    stale_ctr.inc()
            best_t, best_i = inf, -1
            fresh: List[Tuple[float, int]] = []
            for i in cands:
                t = now + float(remaining[i]) / float(rates[i])
                fresh.append((t, i))
                if t < best_t or (t == best_t and i < best_i):
                    best_t, best_i = t, i
            for t, i in fresh:
                heappush(heap, (t, i, version[i]))
            return best_t, best_i

        while cursor < num_flows or num_active > 0:
            events_ctr.inc()
            if rate_probe is not None:
                rate_probe(
                    now,
                    {
                        ordered[int(i)].flow_id: float(rates[int(i)])
                        for i in act_idx[:num_active]
                    },
                )
            next_arrival = arrivals_py[cursor] if cursor < num_flows else inf
            nf = next_finish()
            if nf is None or next_arrival <= nf[0]:
                if cursor >= num_flows:
                    raise ConfigurationError(
                        "deadlock: active flows with zero rate and no arrivals"
                    )
                elapsed = next_arrival - now
                if num_active:
                    sel = act_idx[:num_active]
                    remaining[sel] -= rates[sel] * elapsed
                now = next_arrival
                i = cursor
                cursor += 1
                active_np[i] = True
                active_py[i] = 1
                act_pos[i] = num_active
                act_idx[num_active] = i
                num_active += 1
                remaining[i] = ordered[i].size_gbit
                start[i] = now
                for l in cols_py[i]:
                    link_active[l] += 1
                reallocate(i)
            else:
                finish_t, w = nf
                elapsed = finish_t - now
                sel = act_idx[:num_active]
                remaining[sel] -= rates[sel] * elapsed
                now = finish_t
                active_np[w] = False
                active_py[w] = 0
                p = act_pos[w]
                last = int(act_idx[num_active - 1])
                act_idx[p] = last
                act_pos[last] = p
                num_active -= 1
                for l in cols_py[w]:
                    link_active[l] -= 1
                version[w] += 1
                rates[w] = 0.0
                records.append(
                    FlowRecord(flow=ordered[w], start_s=float(start[w]), finish_s=now)
                )
                reallocate(w)
        return records

    # ------------------------------------------------------------------ #
    # The per-event full-solve path (perf baseline)
    # ------------------------------------------------------------------ #

    def run_full_solve(
        self, flows: Sequence[Flow], rate_probe: Optional[RateProbe] = None
    ) -> List[FlowRecord]:
        """The previous vectorized event loop: one full allocation solve
        per event.

        The link x flow incidence structure is built once and carried
        across events: arrivals and completions only flip bits in the
        active-flow mask, the next arrival is an index cursor into the
        arrival-sorted flow array, and each event's max-min allocation is
        one :meth:`_IncidenceSystem.fill_rates` pass (or the dict kernel
        below :attr:`dict_kernel_crossover` active flows).  Kept as the
        measured baseline the incremental :meth:`run` is compared
        against; property-tested against :meth:`run_reference`.
        """
        capacity, paths, ordered, cols_py, cap_vector = self._prepare(flows)
        num_flows = len(ordered)
        system = _IncidenceSystem(
            [np.asarray(c, dtype=np.int32) for c in cols_py], cap_vector
        )

        links_by_idx = [paths[f.flow_id] for f in ordered]
        active = np.zeros(num_flows, dtype=bool)
        remaining = np.zeros(num_flows)
        start = np.zeros(num_flows)
        arrivals = np.array([f.arrival_s for f in ordered])
        cursor = 0
        num_active = 0
        now = 0.0
        records: List[FlowRecord] = []

        while cursor < num_flows or num_active > 0:
            if 0 < num_active <= self.dict_kernel_crossover:
                indices = np.flatnonzero(active)
                rate_map = max_min_rates_reference(
                    {int(i): links_by_idx[int(i)] for i in indices}, capacity
                )
                rates = np.zeros(num_flows)
                for i, rate in rate_map.items():
                    rates[i] = rate
            else:
                rates = system.fill_rates(active)
            if rate_probe is not None:
                rate_probe(
                    now,
                    {
                        ordered[int(i)].flow_id: float(rates[int(i)])
                        for i in np.flatnonzero(active)
                    },
                )
            next_arrival = arrivals[cursor] if cursor < num_flows else float("inf")
            # Earliest projected completion among active flows with a
            # positive rate; ties resolve to the lowest (earliest-arrived)
            # index, matching the reference loop's insertion order.
            flowing = np.flatnonzero(active & (rates > 0.0))
            finish_idx = -1
            next_finish = float("inf")
            if flowing.size:
                t = now + remaining[flowing] / rates[flowing]
                k = int(np.argmin(t))
                finish_idx = int(flowing[k])
                next_finish = float(t[k])
            # The cursor guard matters when every active flow is starved
            # at rate 0 with no arrivals left: both candidate times are
            # inf, and only the completion branch can raise the deadlock.
            if cursor < num_flows and next_arrival <= next_finish:
                elapsed = next_arrival - now
                # Inactive flows all carry rate 0.0, so the drain is one
                # unmasked vector op.
                remaining -= rates * elapsed
                now = float(next_arrival)
                active[cursor] = True
                remaining[cursor] = ordered[cursor].size_gbit
                start[cursor] = now
                cursor += 1
                num_active += 1
            else:
                if finish_idx < 0:
                    raise ConfigurationError(
                        "deadlock: active flows with zero rate and no arrivals"
                    )
                elapsed = next_finish - now
                remaining -= rates * elapsed
                now = next_finish
                active[finish_idx] = False
                num_active -= 1
                records.append(
                    FlowRecord(
                        flow=ordered[finish_idx],
                        start_s=float(start[finish_idx]),
                        finish_s=now,
                    )
                )
        return records

    def run_reference(
        self, flows: Sequence[Flow], rate_probe: Optional[RateProbe] = None
    ) -> List[FlowRecord]:
        """Scalar oracle for :meth:`run`: the original per-event dict loop.

        Rebuilds the active-flow dict and re-runs the dict-based
        progressive filling from scratch at every arrival/completion,
        with an O(n) ``pending.pop(0)``.  Kept for the property suite and
        the perf-regression harness.
        """
        if not flows:
            raise ConfigurationError("need at least one flow")
        capacity = self._capacities()
        paths = self._routed_paths(flows, capacity)
        pending = sorted(flows, key=lambda f: f.arrival_s)
        remaining: Dict[int, float] = {}
        start: Dict[int, float] = {}
        flows_by_id = {f.flow_id: f for f in flows}
        records: List[FlowRecord] = []
        now = 0.0

        while pending or remaining:
            rates = max_min_rates_reference(
                {fid: paths[fid] for fid in remaining}, capacity
            )
            if rate_probe is not None:
                rate_probe(now, dict(rates))
            next_arrival = pending[0].arrival_s if pending else float("inf")
            next_finish, finish_id = float("inf"), None
            for fid, left in remaining.items():
                rate = rates.get(fid, 0.0)
                if rate > 0:
                    t = now + left / rate
                    if t < next_finish:
                        next_finish, finish_id = t, fid
            # ``pending`` guard: with every active flow starved at rate 0
            # and no arrivals left both times are inf, and the completion
            # branch owns the deadlock raise.
            if pending and next_arrival <= next_finish:
                elapsed = next_arrival - now
                for fid in list(remaining):
                    remaining[fid] -= rates.get(fid, 0.0) * elapsed
                now = next_arrival
                flow = pending.pop(0)
                remaining[flow.flow_id] = flow.size_gbit
                start[flow.flow_id] = now
            else:
                if finish_id is None:
                    raise ConfigurationError(
                        "deadlock: active flows with zero rate and no arrivals"
                    )
                elapsed = next_finish - now
                for fid in list(remaining):
                    remaining[fid] -= rates.get(fid, 0.0) * elapsed
                now = next_finish
                del remaining[finish_id]
                records.append(
                    FlowRecord(
                        flow=flows_by_id[finish_id],
                        start_s=start[finish_id],
                        finish_s=now,
                    )
                )
        return records


def fct_stats(records: Sequence[FlowRecord]) -> Dict[str, float]:
    """Mean / p50 / p99 flow completion times."""
    if not records:
        raise ConfigurationError("no records")
    fcts = np.array([r.fct_s for r in records])
    return {
        "mean_s": float(fcts.mean()),
        "p50_s": float(np.percentile(fcts, 50)),
        "p99_s": float(np.percentile(fcts, 99)),
    }


def generate_flows(
    traffic_demand_gbps: np.ndarray,
    num_flows: int,
    mean_size_gbit: float = 80.0,
    duration_s: float = 60.0,
    seed: int = 0,
) -> List[Flow]:
    """Sample flows whose pair frequencies follow a demand matrix."""
    d = np.asarray(traffic_demand_gbps, dtype=float)
    n = d.shape[0]
    if num_flows <= 0:
        raise ConfigurationError("need at least one flow")
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j and d[i, j] > 0]
    if not pairs:
        raise ConfigurationError("demand matrix has no nonzero pairs")
    weights = np.array([d[i, j] for i, j in pairs])
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(pairs), size=num_flows, p=weights)
    arrivals = np.sort(rng.uniform(0.0, duration_s, num_flows))
    sizes = rng.exponential(mean_size_gbit, num_flows) + 1e-3
    return [
        Flow(
            flow_id=k,
            src=pairs[chosen[k]][0],
            dst=pairs[chosen[k]][1],
            size_gbit=float(sizes[k]),
            arrival_s=float(arrivals[k]),
        )
        for k in range(num_flows)
    ]
