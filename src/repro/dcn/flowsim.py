"""Max-min fair flow-level simulation: flow completion times.

Flows follow the paths the traffic-engineering router picked for their
block pair; link bandwidth is shared max-min fairly (progressive
filling), and rates are recomputed at every arrival/completion -- the
standard fluid approximation for TCP-like sharing.  Comparing FCTs on an
engineered vs a uniform mesh reproduces the §4.2 "10% improvement in
flow completion time" result.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.traffic_engineering import RoutingSolution

Link = Tuple[int, int]


@dataclass(frozen=True)
class Flow:
    """One flow between aggregation blocks."""

    flow_id: int
    src: int
    dst: int
    size_gbit: float
    arrival_s: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError("flow endpoints must differ")
        if self.size_gbit <= 0:
            raise ConfigurationError("flow size must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival must be non-negative")


@dataclass(frozen=True)
class FlowRecord:
    """Completion record."""

    flow: Flow
    start_s: float
    finish_s: float

    @property
    def fct_s(self) -> float:
        return self.finish_s - self.flow.arrival_s


def _links_of(path: Tuple[int, ...]) -> List[Link]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def max_min_rates(
    flow_paths: Dict[int, List[Link]],
    link_capacity: Dict[Link, float],
) -> Dict[int, float]:
    """Progressive-filling max-min fair allocation.

    Repeatedly saturate the bottleneck link with the smallest fair share
    and freeze its flows.
    """
    active = dict(flow_paths)
    remaining = dict(link_capacity)
    rates: Dict[int, float] = {}
    while active:
        counts: Dict[Link, int] = {}
        for links in active.values():
            for link in links:
                counts[link] = counts.get(link, 0) + 1
        bottleneck, share = None, float("inf")
        for link, count in counts.items():
            s = remaining.get(link, 0.0) / count
            if s < share:
                share, bottleneck = s, link
        if bottleneck is None:
            break
        frozen = [
            fid for fid, links in active.items() if bottleneck in links
        ]
        for fid in frozen:
            rates[fid] = share
            for link in active[fid]:
                remaining[link] = max(0.0, remaining[link] - share)
            del active[fid]
    return rates


@dataclass
class FlowSimulator:
    """Fluid flow simulation over a routed spine-free fabric.

    Args:
        path_policy: ``"primary"`` pins every flow of a pair to the
            highest-weight routed path; ``"wcmp"`` hashes each flow onto
            one of the pair's routed paths with probability proportional
            to the routed weight (flow-level weighted-cost multipath).
    """

    fabric: SpineFreeFabric
    routing: RoutingSolution
    path_policy: str = "primary"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.path_policy not in ("primary", "wcmp"):
            raise ConfigurationError(
                f"path policy must be 'primary' or 'wcmp', got {self.path_policy!r}"
            )
        self._path_rng = np.random.default_rng(self.seed)

    def _path_for(self, src: int, dst: int) -> Tuple[int, ...]:
        """Route one flow of the pair per the path policy."""
        options = self.routing.path_for(src, dst)
        if not options:
            return (src, dst)
        if self.path_policy == "primary":
            return max(options, key=lambda pw: pw[1])[0]
        weights = np.array([w for _, w in options], dtype=float)
        total = weights.sum()
        if total <= 0:
            return options[0][0]
        idx = int(self._path_rng.choice(len(options), p=weights / total))
        return options[idx][0]

    def _capacities(self) -> Dict[Link, float]:
        cap = {}
        c = self.routing.link_capacity_gbps
        n = c.shape[0]
        for i in range(n):
            for j in range(n):
                if i != j and c[i, j] > 0:
                    cap[(i, j)] = float(c[i, j])
        return cap

    def run(self, flows: Sequence[Flow]) -> List[FlowRecord]:
        """Simulate until every flow finishes; returns completion records."""
        if not flows:
            raise ConfigurationError("need at least one flow")
        capacity = self._capacities()
        paths = {f.flow_id: _links_of(self._path_for(f.src, f.dst)) for f in flows}
        for f in flows:
            for link in paths[f.flow_id]:
                if link not in capacity:
                    raise ConfigurationError(
                        f"flow {f.flow_id} routed over dark link {link}"
                    )
        pending = sorted(flows, key=lambda f: f.arrival_s)
        remaining: Dict[int, float] = {}
        start: Dict[int, float] = {}
        flows_by_id = {f.flow_id: f for f in flows}
        records: List[FlowRecord] = []
        now = 0.0

        while pending or remaining:
            rates = max_min_rates(
                {fid: paths[fid] for fid in remaining}, capacity
            )
            next_arrival = pending[0].arrival_s if pending else float("inf")
            next_finish, finish_id = float("inf"), None
            for fid, left in remaining.items():
                rate = rates.get(fid, 0.0)
                if rate > 0:
                    t = now + left / rate
                    if t < next_finish:
                        next_finish, finish_id = t, fid
            if not remaining and not pending:
                break
            if next_arrival <= next_finish:
                elapsed = next_arrival - now
                for fid in list(remaining):
                    remaining[fid] -= rates.get(fid, 0.0) * elapsed
                now = next_arrival
                flow = pending.pop(0)
                remaining[flow.flow_id] = flow.size_gbit
                start[flow.flow_id] = now
            else:
                if finish_id is None:
                    raise ConfigurationError(
                        "deadlock: active flows with zero rate and no arrivals"
                    )
                elapsed = next_finish - now
                for fid in list(remaining):
                    remaining[fid] -= rates.get(fid, 0.0) * elapsed
                now = next_finish
                del remaining[finish_id]
                records.append(
                    FlowRecord(
                        flow=flows_by_id[finish_id],
                        start_s=start[finish_id],
                        finish_s=now,
                    )
                )
        return records


def fct_stats(records: Sequence[FlowRecord]) -> Dict[str, float]:
    """Mean / p50 / p99 flow completion times."""
    if not records:
        raise ConfigurationError("no records")
    fcts = np.array([r.fct_s for r in records])
    return {
        "mean_s": float(fcts.mean()),
        "p50_s": float(np.percentile(fcts, 50)),
        "p99_s": float(np.percentile(fcts, 99)),
    }


def generate_flows(
    traffic_demand_gbps: np.ndarray,
    num_flows: int,
    mean_size_gbit: float = 80.0,
    duration_s: float = 60.0,
    seed: int = 0,
) -> List[Flow]:
    """Sample flows whose pair frequencies follow a demand matrix."""
    d = np.asarray(traffic_demand_gbps, dtype=float)
    n = d.shape[0]
    if num_flows <= 0:
        raise ConfigurationError("need at least one flow")
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j and d[i, j] > 0]
    if not pairs:
        raise ConfigurationError("demand matrix has no nonzero pairs")
    weights = np.array([d[i, j] for i, j in pairs])
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(pairs), size=num_flows, p=weights)
    arrivals = np.sort(rng.uniform(0.0, duration_s, num_flows))
    sizes = rng.exponential(mean_size_gbit, num_flows) + 1e-3
    return [
        Flow(
            flow_id=k,
            src=pairs[chosen[k]][0],
            dst=pairs[chosen[k]][1],
            size_gbit=float(sizes[k]),
            arrival_s=float(arrivals[k]),
        )
        for k in range(num_flows)
    ]
