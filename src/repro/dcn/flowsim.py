"""Max-min fair flow-level simulation: flow completion times.

Flows follow the paths the traffic-engineering router picked for their
block pair; link bandwidth is shared max-min fairly (progressive
filling), and rates are recomputed at every arrival/completion -- the
standard fluid approximation for TCP-like sharing.  Comparing FCTs on an
engineered vs a uniform mesh reproduces the §4.2 "10% improvement in
flow completion time" result.

The allocation runs on a link x flow incidence structure with NumPy
array ops (:func:`max_min_rates`); :func:`max_min_rates_reference` is
the original dict-loop oracle the matrix kernel is property-tested
against.  :meth:`FlowSimulator.run` keeps the incidence structure alive
across arrival/completion events instead of rebuilding per-event state;
:meth:`FlowSimulator.run_reference` is its scalar oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.traffic_engineering import RoutingSolution

Link = Tuple[int, int]

#: Below this many concurrently active flows the per-event allocation
#: falls back to the dict kernel: NumPy per-call overhead only pays off
#: once the incidence arrays have some width.  Both kernels produce
#: identical allocations (the property suite pins them together), so the
#: crossover is purely a performance knob.
_DICT_KERNEL_CROSSOVER = 32


@dataclass(frozen=True)
class Flow:
    """One flow between aggregation blocks."""

    flow_id: int
    src: int
    dst: int
    size_gbit: float
    arrival_s: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError("flow endpoints must differ")
        if self.size_gbit <= 0:
            raise ConfigurationError("flow size must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival must be non-negative")


@dataclass(frozen=True)
class FlowRecord:
    """Completion record."""

    flow: Flow
    start_s: float
    finish_s: float

    @property
    def fct_s(self) -> float:
        return self.finish_s - self.flow.arrival_s


def _links_of(path: Tuple[int, ...]) -> List[Link]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


class _IncidenceSystem:
    """A link x flow incidence structure in flat CSR-like arrays.

    ``flat`` holds the link index of every (flow, link) membership and
    ``owner`` the flow index of the same entry.  Entries are indexed both
    ways -- grouped by flow (``flow_start``/``flow_len``) and by link
    (``link_order``/``link_start``) -- so per-link active counts are one
    ``np.bincount`` pass and each filling round touches only the entries
    it actually freezes.  Built once and reused across events by the
    simulator.
    """

    __slots__ = ("flat", "owner", "num_flows", "capacity")

    def __init__(self, cols: Sequence[np.ndarray], capacity: np.ndarray) -> None:
        self.num_flows = len(cols)
        self.capacity = np.asarray(capacity, dtype=float)
        if cols:
            self.flat = np.concatenate(cols).astype(np.intp, copy=False)
            self.owner = np.repeat(
                np.arange(self.num_flows, dtype=np.intp),
                [len(c) for c in cols],
            )
        else:
            self.flat = np.empty(0, dtype=np.intp)
            self.owner = np.empty(0, dtype=np.intp)

    def fill_rates(self, active: np.ndarray) -> np.ndarray:
        """Progressive-filling max-min allocation over the active flows.

        Entries are compacted to the active flows once; every round then
        computes per-link active counts and fair shares as array ops.
        Every link exactly at the minimum share saturates in the same
        round -- freezing tied bottlenecks together matches
        one-at-a-time progressive filling, since removing one tied link's
        flows leaves every other tied link's share unchanged
        ((c - k*s) / (n - k) == s when c/n == s).  Returns a rate per
        flow (0.0 for inactive flows and for flows starved by a
        zero-capacity link).
        """
        num_links = self.capacity.size
        rates = np.zeros(self.num_flows)
        selected = active[self.owner]
        flat = self.flat[selected]
        owner = self.owner[selected]
        if not flat.size:
            return rates
        remaining = self.capacity.copy()
        alive = np.ones(flat.size, dtype=bool)
        while alive.any():
            counts = np.bincount(flat[alive], minlength=num_links)
            used = counts > 0
            share = np.where(used, remaining / np.where(used, counts, 1), np.inf)
            fair = share.min()
            frozen = np.zeros(self.num_flows, dtype=bool)
            frozen[owner[(share == fair)[flat] & alive]] = True
            entries = frozen[owner] & alive
            decrement = np.bincount(flat[entries], minlength=num_links)
            remaining -= fair * decrement
            np.maximum(remaining, 0.0, out=remaining)
            rates[frozen] = fair
            # Frozen entries are a subset of the alive ones, so XOR
            # removes them in place without a temporary.
            alive ^= entries
        return rates


def _index_links(
    flow_paths: Dict[int, List[Link]], link_capacity: Dict[Link, float]
) -> Tuple[Dict[Link, int], np.ndarray]:
    """Index every link any flow touches; absent links get 0 capacity."""
    link_index: Dict[Link, int] = {}
    for links in flow_paths.values():
        for link in links:
            if link not in link_index:
                link_index[link] = len(link_index)
    capacity = np.array(
        [link_capacity.get(link, 0.0) for link in link_index], dtype=float
    )
    return link_index, capacity


def max_min_rates(
    flow_paths: Dict[int, List[Link]],
    link_capacity: Dict[Link, float],
) -> Dict[int, float]:
    """Progressive-filling max-min fair allocation.

    Repeatedly saturate the bottleneck link with the smallest fair share
    and freeze its flows.  Runs on a link x flow incidence matrix with
    per-round counts and shares as NumPy array ops; property-tested
    against the dict-loop oracle :func:`max_min_rates_reference`.
    """
    link_index, capacity = _index_links(flow_paths, link_capacity)
    fids = list(flow_paths)
    cols = [
        np.array([link_index[link] for link in flow_paths[fid]], dtype=np.intp)
        for fid in fids
    ]
    system = _IncidenceSystem(cols, capacity)
    active = np.array([len(c) > 0 for c in cols], dtype=bool)
    rates = system.fill_rates(active)
    return {fid: float(rates[i]) for i, fid in enumerate(fids) if active[i]}


def max_min_rates_reference(
    flow_paths: Dict[int, List[Link]],
    link_capacity: Dict[Link, float],
) -> Dict[int, float]:
    """Dict-loop oracle for :func:`max_min_rates` (original implementation).

    Kept for the property suite and the perf-regression harness.
    """
    active = dict(flow_paths)
    remaining = dict(link_capacity)
    rates: Dict[int, float] = {}
    while active:
        counts: Dict[Link, int] = {}
        for links in active.values():
            for link in links:
                counts[link] = counts.get(link, 0) + 1
        bottleneck, share = None, float("inf")
        for link, count in counts.items():
            s = remaining.get(link, 0.0) / count
            if s < share:
                share, bottleneck = s, link
        if bottleneck is None:
            break
        frozen = [
            fid for fid, links in active.items() if bottleneck in links
        ]
        for fid in frozen:
            rates[fid] = share
            for link in active[fid]:
                remaining[link] = max(0.0, remaining[link] - share)
            del active[fid]
    return rates


@dataclass
class FlowSimulator:
    """Fluid flow simulation over a routed spine-free fabric.

    Args:
        path_policy: ``"primary"`` pins every flow of a pair to the
            highest-weight routed path; ``"wcmp"`` hashes each flow onto
            one of the pair's routed paths with probability proportional
            to the routed weight (flow-level weighted-cost multipath).
    """

    fabric: SpineFreeFabric
    routing: RoutingSolution
    path_policy: str = "primary"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.path_policy not in ("primary", "wcmp"):
            raise ConfigurationError(
                f"path policy must be 'primary' or 'wcmp', got {self.path_policy!r}"
            )
        self._path_rng = np.random.default_rng(self.seed)

    def _path_for(self, src: int, dst: int) -> Tuple[int, ...]:
        """Route one flow of the pair per the path policy."""
        options = self.routing.path_for(src, dst)
        if not options:
            return (src, dst)
        if self.path_policy == "primary":
            return max(options, key=lambda pw: pw[1])[0]
        weights = np.array([w for _, w in options], dtype=float)
        total = weights.sum()
        if total <= 0:
            return options[0][0]
        idx = int(self._path_rng.choice(len(options), p=weights / total))
        return options[idx][0]

    def _capacities(self) -> Dict[Link, float]:
        cap = {}
        c = self.routing.link_capacity_gbps
        n = c.shape[0]
        for i in range(n):
            for j in range(n):
                if i != j and c[i, j] > 0:
                    cap[(i, j)] = float(c[i, j])
        return cap

    def _routed_paths(
        self, flows: Sequence[Flow], capacity: Dict[Link, float]
    ) -> Dict[int, List[Link]]:
        """Route every flow and validate against the lit-link capacities."""
        paths = {f.flow_id: _links_of(self._path_for(f.src, f.dst)) for f in flows}
        for f in flows:
            for link in paths[f.flow_id]:
                if link not in capacity:
                    raise ConfigurationError(
                        f"flow {f.flow_id} routed over dark link {link}"
                    )
        return paths

    def run(self, flows: Sequence[Flow]) -> List[FlowRecord]:
        """Simulate until every flow finishes; returns completion records.

        The link x flow incidence structure is built once and carried
        across events: arrivals and completions only flip bits in the
        active-flow mask, the next arrival is an index cursor into the
        arrival-sorted flow array, and each event's max-min allocation is
        one :meth:`_IncidenceSystem.fill_rates` pass.  Property-tested
        against the per-event dict oracle :meth:`run_reference`.
        """
        if not flows:
            raise ConfigurationError("need at least one flow")
        capacity = self._capacities()
        paths = self._routed_paths(flows, capacity)

        ordered = sorted(flows, key=lambda f: f.arrival_s)
        num_flows = len(ordered)
        link_index, cap_vector = _index_links(
            {f.flow_id: paths[f.flow_id] for f in ordered}, capacity
        )
        cols = [
            np.array(
                [link_index[link] for link in paths[f.flow_id]], dtype=np.intp
            )
            for f in ordered
        ]
        system = _IncidenceSystem(cols, cap_vector)

        links_by_idx = [paths[f.flow_id] for f in ordered]
        active = np.zeros(num_flows, dtype=bool)
        remaining = np.zeros(num_flows)
        start = np.zeros(num_flows)
        arrivals = np.array([f.arrival_s for f in ordered])
        cursor = 0
        num_active = 0
        now = 0.0
        records: List[FlowRecord] = []

        while cursor < num_flows or num_active > 0:
            if 0 < num_active <= _DICT_KERNEL_CROSSOVER:
                indices = np.flatnonzero(active)
                rate_map = max_min_rates_reference(
                    {int(i): links_by_idx[int(i)] for i in indices}, capacity
                )
                rates = np.zeros(num_flows)
                for i, rate in rate_map.items():
                    rates[i] = rate
            else:
                rates = system.fill_rates(active)
            next_arrival = arrivals[cursor] if cursor < num_flows else float("inf")
            # Earliest projected completion among active flows with a
            # positive rate; ties resolve to the lowest (earliest-arrived)
            # index, matching the reference loop's insertion order.
            flowing = np.flatnonzero(active & (rates > 0.0))
            finish_idx = -1
            next_finish = float("inf")
            if flowing.size:
                t = now + remaining[flowing] / rates[flowing]
                k = int(np.argmin(t))
                finish_idx = int(flowing[k])
                next_finish = float(t[k])
            if next_arrival <= next_finish:
                elapsed = next_arrival - now
                # Inactive flows all carry rate 0.0, so the drain is one
                # unmasked vector op.
                remaining -= rates * elapsed
                now = float(next_arrival)
                active[cursor] = True
                remaining[cursor] = ordered[cursor].size_gbit
                start[cursor] = now
                cursor += 1
                num_active += 1
            else:
                if finish_idx < 0:
                    raise ConfigurationError(
                        "deadlock: active flows with zero rate and no arrivals"
                    )
                elapsed = next_finish - now
                remaining -= rates * elapsed
                now = next_finish
                active[finish_idx] = False
                num_active -= 1
                records.append(
                    FlowRecord(
                        flow=ordered[finish_idx],
                        start_s=float(start[finish_idx]),
                        finish_s=now,
                    )
                )
        return records

    def run_reference(self, flows: Sequence[Flow]) -> List[FlowRecord]:
        """Scalar oracle for :meth:`run`: the original per-event dict loop.

        Rebuilds the active-flow dict and re-runs the dict-based
        progressive filling from scratch at every arrival/completion,
        with an O(n) ``pending.pop(0)``.  Kept for the property suite and
        the perf-regression harness.
        """
        if not flows:
            raise ConfigurationError("need at least one flow")
        capacity = self._capacities()
        paths = self._routed_paths(flows, capacity)
        pending = sorted(flows, key=lambda f: f.arrival_s)
        remaining: Dict[int, float] = {}
        start: Dict[int, float] = {}
        flows_by_id = {f.flow_id: f for f in flows}
        records: List[FlowRecord] = []
        now = 0.0

        while pending or remaining:
            rates = max_min_rates_reference(
                {fid: paths[fid] for fid in remaining}, capacity
            )
            next_arrival = pending[0].arrival_s if pending else float("inf")
            next_finish, finish_id = float("inf"), None
            for fid, left in remaining.items():
                rate = rates.get(fid, 0.0)
                if rate > 0:
                    t = now + left / rate
                    if t < next_finish:
                        next_finish, finish_id = t, fid
            if not remaining and not pending:
                break
            if next_arrival <= next_finish:
                elapsed = next_arrival - now
                for fid in list(remaining):
                    remaining[fid] -= rates.get(fid, 0.0) * elapsed
                now = next_arrival
                flow = pending.pop(0)
                remaining[flow.flow_id] = flow.size_gbit
                start[flow.flow_id] = now
            else:
                if finish_id is None:
                    raise ConfigurationError(
                        "deadlock: active flows with zero rate and no arrivals"
                    )
                elapsed = next_finish - now
                for fid in list(remaining):
                    remaining[fid] -= rates.get(fid, 0.0) * elapsed
                now = next_finish
                del remaining[finish_id]
                records.append(
                    FlowRecord(
                        flow=flows_by_id[finish_id],
                        start_s=start[finish_id],
                        finish_s=now,
                    )
                )
        return records


def fct_stats(records: Sequence[FlowRecord]) -> Dict[str, float]:
    """Mean / p50 / p99 flow completion times."""
    if not records:
        raise ConfigurationError("no records")
    fcts = np.array([r.fct_s for r in records])
    return {
        "mean_s": float(fcts.mean()),
        "p50_s": float(np.percentile(fcts, 50)),
        "p99_s": float(np.percentile(fcts, 99)),
    }


def generate_flows(
    traffic_demand_gbps: np.ndarray,
    num_flows: int,
    mean_size_gbit: float = 80.0,
    duration_s: float = 60.0,
    seed: int = 0,
) -> List[Flow]:
    """Sample flows whose pair frequencies follow a demand matrix."""
    d = np.asarray(traffic_demand_gbps, dtype=float)
    n = d.shape[0]
    if num_flows <= 0:
        raise ConfigurationError("need at least one flow")
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j and d[i, j] > 0]
    if not pairs:
        raise ConfigurationError("demand matrix has no nonzero pairs")
    weights = np.array([d[i, j] for i, j in pairs])
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(pairs), size=num_flows, p=weights)
    arrivals = np.sort(rng.uniform(0.0, duration_s, num_flows))
    sizes = rng.exponential(mean_size_gbit, num_flows) + 1e-3
    return [
        Flow(
            flow_id=k,
            src=pairs[chosen[k]][0],
            dst=pairs[chosen[k]][1],
            size_gbit=float(sizes[k]),
            arrival_s=float(arrivals[k]),
        )
        for k in range(num_flows)
    ]
