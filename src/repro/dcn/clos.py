"""The traditional spine-full Clos fabric (Fig 1a).

Aggregation blocks connect to a layer of spine blocks; every AB spreads
its uplinks evenly across the spines, giving full any-to-any bandwidth at
the cost of the spine switches and a second transceiver on every uplink
hop.  This is the CapEx/power baseline that the spine-free design
eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock


@dataclass
class ClosFabric:
    """A two-tier spine-full fabric.

    Args:
        blocks: the aggregation blocks.
        num_spines: spine blocks; each AB splits its uplinks across all.
        spine_radix: ports per spine block.
    """

    blocks: List[AggregationBlock]
    num_spines: int = 16
    spine_radix: int = 512

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ConfigurationError("need at least one aggregation block")
        if self.num_spines <= 0:
            raise ConfigurationError("need at least one spine")
        for ab in self.blocks:
            if ab.uplinks % self.num_spines != 0:
                raise ConfigurationError(
                    f"{ab}: uplinks must divide evenly over {self.num_spines} spines"
                )
        needed = sum(ab.uplinks for ab in self.blocks)
        if needed > self.num_spines * self.spine_radix:
            raise ConfigurationError(
                f"spine layer has {self.num_spines * self.spine_radix} ports, "
                f"fabric needs {needed}"
            )

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def graph(self) -> nx.Graph:
        """AB <-> spine connectivity with per-edge capacity in Gb/s."""
        g = nx.Graph()
        for ab in self.blocks:
            g.add_node(f"ab-{ab.index}", kind="ab")
        for s in range(self.num_spines):
            g.add_node(f"spine-{s}", kind="spine")
        for ab in self.blocks:
            per_spine = ab.uplinks // self.num_spines
            for s in range(self.num_spines):
                g.add_edge(
                    f"ab-{ab.index}",
                    f"spine-{s}",
                    trunks=per_spine,
                    capacity_gbps=per_spine * ab.uplink_rate_gbps,
                )
        return g

    def pair_capacity_gbps(self, a: int, b: int) -> float:
        """Bandwidth available between two ABs through the spine layer.

        Limited by the smaller block's uplink bandwidth (the spine is
        non-blocking by construction here).
        """
        ab_a = self._block(a)
        ab_b = self._block(b)
        return min(ab_a.total_uplink_gbps, ab_b.total_uplink_gbps)

    # ------------------------------------------------------------------ #
    # Inventory for the cost model
    # ------------------------------------------------------------------ #

    def transceiver_count(self) -> int:
        """Optical modules: one at the AB end and one at the spine end of
        every uplink."""
        return 2 * sum(ab.uplinks for ab in self.blocks)

    def spine_switch_count(self) -> int:
        return self.num_spines

    def _block(self, index: int) -> AggregationBlock:
        for ab in self.blocks:
            if ab.index == index:
                return ab
        raise ConfigurationError(f"no block with index {index}")
