"""Lightwave Fabrics reproduction library.

A laptop-scale reproduction of *Lightwave Fabrics: At-Scale Optical Circuit
Switching for Datacenter and Machine Learning Systems* (Liu et al., SIGCOMM
2023).  The package is organized by subsystem:

- :mod:`repro.core` -- shared primitives: units, identifiers, cross-connect
  maps, reconfiguration planning, and the fabric-manager control plane.
- :mod:`repro.ocs` -- the Palomar MEMS optical circuit switch model.
- :mod:`repro.optics` -- WDM transceivers, circulators, link budgets, PAM4
  BER simulation, MPI/OIM, and concatenated FEC.
- :mod:`repro.fabric` -- lightwave fabrics assembled from OCSes, endpoints,
  and fiber plant.
- :mod:`repro.tpu` -- the TPU v4 superpod: cubes, OCS wiring, torus slices.
- :mod:`repro.ml` -- LLM training performance models and slice-shape search.
- :mod:`repro.scheduler` -- cluster-level slice scheduling.
- :mod:`repro.availability` -- fabric availability and goodput models.
- :mod:`repro.dcn` -- spine-free datacenter networks with topology
  engineering and a flow-level simulator.
"""

from repro.core.errors import (
    CapacityError,
    ConfigurationError,
    CrossConnectError,
    LinkBudgetError,
    PortInUseError,
    ReproError,
    SchedulingError,
    TopologyError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "TopologyError",
    "CrossConnectError",
    "PortInUseError",
    "CapacityError",
    "SchedulingError",
    "LinkBudgetError",
    "ConfigurationError",
]
