"""The predictive digital twin: forecasting and what-if SLO planning.

Mission Apollo's deployment experience (PAPERS.md) is blunt about what
operating an OCS fleet at scale actually is: trend-watching and
pre-commit what-if analysis.  This package closes that loop on top of
the streaming time-series layer (:mod:`repro.obs.timeseries`):

- :mod:`repro.twin.timeline` records a **fleet timeline** from a
  serving/failover drill -- time-bucketed offered/ok/shed/latency/
  brownout series plus the replay parameters needed to reconstruct the
  run -- as a JSONL artifact with a byte-stable digest;
- :mod:`repro.twin.forecast` trains lightweight availability/failure
  forecasters (time-weighted EWMA and a seeded logistic model, no heavy
  deps) on chaos-ensemble output and scores them against the naive
  last-value predictor on held-out members;
- :mod:`repro.twin.planner` replays a recorded timeline against a
  proposed :class:`~repro.twin.planner.TwinPolicy` (brownout pin,
  admission scaling, quarantine hold-out, controller replication) and
  reports predicted SLO deltas *before* ``DurableController`` /
  ``ReplicationGroup`` commits the change;
- :mod:`repro.twin.drill` is the end-to-end twin drill behind
  ``python -m repro.tools.noc twin`` and the ``twin-smoke`` CI job.

Everything is sim-clocked and seeded: evaluating the same recorded
timeline against the same policy twice yields byte-identical
predicted-SLO reports (the digest-pinned acceptance test).
"""

from repro.twin.forecast import (
    ForecastEvaluation,
    LogisticForecaster,
    train_availability_forecaster,
)
from repro.twin.planner import PlanReport, TwinPolicy, WhatIfPlanner
from repro.twin.timeline import FleetTimeline, record_fleet_timeline

__all__ = [
    "FleetTimeline",
    "ForecastEvaluation",
    "LogisticForecaster",
    "PlanReport",
    "TwinPolicy",
    "WhatIfPlanner",
    "record_fleet_timeline",
    "train_availability_forecaster",
]
