"""Fleet timelines: the digital twin's recorded ground truth.

A :class:`FleetTimeline` is what an operator would pull out of the
monitoring stack before asking "what happens if we commit this policy":
time-bucketed series from one drill (offered/ok/shed counts, exact
per-bucket p99 latency, the brownout level) **plus** the replay
parameters -- seed, profile, stream length, tenant count -- that let the
what-if planner reconstruct the exact workload and fault storm.  The
JSONL round-trip (:meth:`FleetTimeline.to_records` /
:meth:`FleetTimeline.from_records`) is schema-versioned and tolerant of
unknown future fields, and :meth:`FleetTimeline.digest` pins the whole
artifact byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA_VERSION,
    Sample,
    samples_from_records,
)
from repro.serve.requests import Outcome

#: The drill profiles a timeline can be recorded from (and replayed
#: against): the overload storm and the partition-failover storm.
PROFILES = ("serve", "failover")


def _quantile(values: List[float], q: float) -> float:
    """Exact lower-interpolation quantile (deterministic, no numpy)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[rank]


@dataclass(frozen=True)
class FleetTimeline:
    """One recorded drill, ready for forecasting and what-if replay."""

    name: str
    profile: str
    seed: int
    num_primaries: int
    num_tenants: int
    rate_per_s: float
    horizon_s: float
    sample_every_s: float
    samples: Tuple[Sample, ...]
    baseline: Mapping[str, float]
    schema_version: int = TIMESERIES_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ConfigurationError(
                f"unknown profile {self.profile!r}; have {PROFILES}"
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def series(self, name: str) -> Tuple[Tuple[float, float], ...]:
        """(t_ms, value) points of one recorded series."""
        return tuple(
            (s.t_ms, s.value) for s in self.samples if s.series == name
        )

    def series_names(self) -> Tuple[str, ...]:
        return tuple(sorted({s.series for s in self.samples}))

    # ------------------------------------------------------------------ #
    # JSONL round-trip
    # ------------------------------------------------------------------ #

    def to_records(self) -> List[Dict[str, object]]:
        head: Dict[str, object] = {
            "type": "meta",
            "stream": "timeline",
            "schema_version": self.schema_version,
            "name": self.name,
            "profile": self.profile,
            "seed": self.seed,
            "num_primaries": self.num_primaries,
            "num_tenants": self.num_tenants,
            "rate_per_s": self.rate_per_s,
            "horizon_s": self.horizon_s,
            "sample_every_s": self.sample_every_s,
            "samples": len(self.samples),
            "digest": self.digest(),
        }
        baseline_record: Dict[str, object] = {
            "type": "baseline",
            "slos": dict(sorted(self.baseline.items())),
        }
        return [head, baseline_record, *[s.to_record() for s in self.samples]]

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, object]]
    ) -> "FleetTimeline":
        """Rebuild from JSONL records; unknown fields and unknown record
        types are ignored (forward compatibility)."""
        meta: Optional[Mapping[str, object]] = None
        baseline: Dict[str, float] = {}
        materialized = list(records)
        for record in materialized:
            if record.get("type") == "meta" and record.get("stream") == "timeline":
                meta = record
            elif record.get("type") == "baseline":
                slos = record.get("slos")
                if isinstance(slos, Mapping):
                    baseline = {str(k): float(v) for k, v in slos.items()}
        if meta is None:
            raise ConfigurationError("no timeline meta record in stream")
        return cls(
            name=str(meta.get("name", "recorded")),
            profile=str(meta["profile"]),
            seed=int(meta["seed"]),  # type: ignore[arg-type]
            num_primaries=int(meta["num_primaries"]),  # type: ignore[arg-type]
            num_tenants=int(meta["num_tenants"]),  # type: ignore[arg-type]
            rate_per_s=float(meta["rate_per_s"]),  # type: ignore[arg-type]
            horizon_s=float(meta["horizon_s"]),  # type: ignore[arg-type]
            sample_every_s=float(meta["sample_every_s"]),  # type: ignore[arg-type]
            samples=samples_from_records(materialized),
            baseline=baseline,
            schema_version=int(meta.get("schema_version", 1)),  # type: ignore[arg-type]
        )

    def digest(self) -> str:
        """SHA-256 over identity, replay parameters, baseline SLOs, and
        every sample -- the pin for "same timeline"."""
        h = hashlib.sha256()
        h.update(
            f"{self.name}|{self.profile}|{self.seed}|{self.num_primaries}|"
            f"{self.num_tenants}|{self.rate_per_s!r}|{self.horizon_s!r}|"
            f"{self.sample_every_s!r}|{self.schema_version}\n".encode("utf-8")
        )
        h.update(
            json.dumps(dict(sorted(self.baseline.items())), sort_keys=True,
                       separators=(",", ":")).encode("utf-8")
        )
        for s in self.samples:
            h.update(
                f"{s.t_ms!r}|{s.series}|{s.value!r}|{s.kind}\n".encode("utf-8")
            )
        return h.hexdigest()


def samples_from_serve_report(
    report, horizon_s: float, sample_every_s: float
) -> Tuple[Sample, ...]:
    """Bucket a :class:`~repro.serve.service.ServeReport` into the fleet
    series an operator watches: per-bucket offered/ok/shed counts, exact
    p99 latency over that bucket's completions, and the brownout level
    at bucket close.  Samples are stamped at each bucket's closing edge
    (sim-clock milliseconds), in (time, series) order."""
    if sample_every_s <= 0:
        raise ConfigurationError("sample_every_s must be positive")
    num_buckets = max(1, int(horizon_s / sample_every_s) + 1)
    offered = [0] * num_buckets
    ok = [0] * num_buckets
    shed = [0] * num_buckets
    latencies: List[List[float]] = [[] for _ in range(num_buckets)]
    for record in report.records:
        b = min(num_buckets - 1, int(record.request.arrival_s / sample_every_s))
        offered[b] += 1
        if record.outcome is Outcome.OK:
            ok[b] += 1
            latencies[b].append(record.latency_ms)
        elif record.outcome is Outcome.SHED:
            shed[b] += 1
    transitions = sorted(report.brownout_transitions)
    samples: List[Sample] = []
    level = 0
    t_index = 0
    for b in range(num_buckets):
        close_s = (b + 1) * sample_every_s
        while t_index < len(transitions) and transitions[t_index][0] <= close_s:
            level = transitions[t_index][1]
            t_index += 1
        t_ms = close_s * 1e3
        samples.append(Sample(t_ms, "serve.offered", float(offered[b]), "counter"))
        samples.append(Sample(t_ms, "serve.ok", float(ok[b]), "counter"))
        samples.append(Sample(t_ms, "serve.shed", float(shed[b]), "counter"))
        samples.append(
            Sample(t_ms, "serve.latency_p99_ms", _quantile(latencies[b], 0.99))
        )
        samples.append(Sample(t_ms, "serve.brownout_level", float(level)))
    return tuple(samples)


def baseline_slos(summary: Mapping[str, object]) -> Dict[str, float]:
    """The twin-facing SLO vector off one drill summary.

    ``availability`` counts every non-OK terminal against the service
    (shed, timeout, error -- rejected excluded: admission refusals are
    policy, not failure); ``unavailability`` is its complement so the
    vector gates cleanly against upper-bound thresholds."""
    offered = float(summary["offered"])  # type: ignore[arg-type]
    bad = sum(
        float(summary.get(key, 0) or 0)  # type: ignore[arg-type]
        for key in ("shed", "timeout", "error")
    )
    unavailability = bad / offered if offered else 0.0
    return {
        "serve_p99_ms": float(summary["serve_p99_ms"]),  # type: ignore[arg-type]
        "serve_shed_rate": float(summary["serve_shed_rate"]),  # type: ignore[arg-type]
        "failover_p99_s": float(summary.get("failover_p99_s", 0.0) or 0.0),  # type: ignore[arg-type]
        "availability": 1.0 - unavailability,
        "unavailability": unavailability,
    }


def record_fleet_timeline(
    seed: int = 0,
    profile: str = "serve",
    num_primaries: int = 600,
    num_tenants: Optional[int] = None,
    sample_every_s: float = 0.1,
    name: str = "recorded",
    obs: Optional[Observability] = None,
) -> FleetTimeline:
    """Run one drill and record its fleet timeline.

    The returned timeline carries everything the planner needs to replay
    the identical workload + fault storm under a different policy; two
    calls with equal arguments produce equal digests."""
    if profile not in PROFILES:
        raise ConfigurationError(f"unknown profile {profile!r}; have {PROFILES}")
    if obs is None:
        obs = NULL_OBS
    from repro.serve.drill import run_failover_drill, run_serve_drill

    with obs.tracer.span(
        "twin.timeline.record", profile=profile, seed=seed,
        num_primaries=num_primaries,
    ):
        drill_obs = Observability.sim()
        if profile == "serve":
            out = run_serve_drill(
                seed=seed, smoke=True, obs=drill_obs,
                num_primaries=num_primaries, num_tenants=num_tenants,
            )
        else:
            out = run_failover_drill(
                seed=seed, smoke=True, obs=drill_obs,
                num_primaries=num_primaries, num_tenants=num_tenants,
            )
        report = out["report"]
        summary = out["summary"]
        horizon_s = float(summary["horizon_s"])  # type: ignore[arg-type]
        samples = samples_from_serve_report(report, horizon_s, sample_every_s)
        obs.metrics.counter("twin.timeline.samples").inc(len(samples))
    return FleetTimeline(
        name=name,
        profile=profile,
        seed=seed,
        num_primaries=num_primaries,
        num_tenants=report.config.num_tenants,
        rate_per_s=1_200.0,
        horizon_s=horizon_s,
        sample_every_s=sample_every_s,
        samples=samples,
        baseline=baseline_slos(summary),
    )


__all__ = [
    "FleetTimeline",
    "PROFILES",
    "baseline_slos",
    "record_fleet_timeline",
    "samples_from_serve_report",
]
