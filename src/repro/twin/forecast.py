"""Lightweight availability/failure forecasters for the digital twin.

The training corpus is chaos-ensemble output
(:func:`repro.faults.ensemble.chaos_ensemble`): each member is one
seeded scenario run with a goodput timeline.  The forecasting task is
the one an operator faces mid-incident -- given the first part of a
run's timeline, predict the availability (time-weighted mean goodput)
over the rest of it.  Three predictors, all deterministic and
dependency-light:

- **naive last-value** (the bar to beat): the goodput reading at the end
  of the observed prefix;
- **time-weighted EWMA**: exponential smoothing over the prefix's
  goodput steps, weighted by how long each level held;
- **seeded logistic**: a tiny logistic regressor over prefix features
  (last value, time-weighted mean, min, degraded-time fraction,
  transition rate) trained by fixed-step gradient descent from a seeded
  init -- same seed, same weights, same predictions.

:func:`train_availability_forecaster` fits on a deterministic train
split, picks the better trained candidate *on the training set*, and
scores it against the naive predictor on the held-out members; the
acceptance test pins ``model_mae < naive_mae``.  ``coverage`` (fraction
of held-out predictions within an absolute band of the truth) feeds the
``twin_forecast_miss_rate`` SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.faults.chaos import ChaosReport

#: Feature order produced by :func:`prefix_features`.
FEATURE_NAMES = (
    "last",
    "time_weighted_mean",
    "min",
    "degraded_fraction",
    "transition_rate",
)


def _step_integral(
    timeline: Sequence[Tuple[float, float]], t0: float, t1: float
) -> Tuple[float, float, float]:
    """(integral of goodput, degraded time, final level) over [t0, t1]
    of a right-continuous step timeline."""
    if t1 <= t0:
        raise ConfigurationError("need a non-empty integration window")
    area = 0.0
    degraded = 0.0
    level = timeline[0][1] if timeline else 1.0
    t_prev = t0
    for t, g in timeline:
        if t <= t0:
            level = g
            continue
        if t >= t1:
            break
        span = t - t_prev
        area += level * span
        if level < 1.0:
            degraded += span
        level, t_prev = g, t
    span = t1 - t_prev
    area += level * span
    if level < 1.0:
        degraded += span
    return area, degraded, level


def prefix_features(
    timeline: Sequence[Tuple[float, float]], horizon_s: float,
    prefix_fraction: float,
) -> Tuple[float, ...]:
    """The feature vector of one run's observed prefix (see
    :data:`FEATURE_NAMES`)."""
    if not 0.0 < prefix_fraction < 1.0:
        raise ConfigurationError("prefix_fraction must be in (0, 1)")
    split = horizon_s * prefix_fraction
    area, degraded, last = _step_integral(timeline, 0.0, split)
    prefix_points = [t for t, _ in timeline if 0.0 < t <= split]
    lows = [g for t, g in timeline if t <= split] or [1.0]
    return (
        last,
        area / split,
        min(lows),
        degraded / split,
        len(prefix_points) / split,
    )


def suffix_availability(
    timeline: Sequence[Tuple[float, float]], horizon_s: float,
    prefix_fraction: float,
) -> float:
    """Ground truth: time-weighted mean goodput after the split."""
    split = horizon_s * prefix_fraction
    area, _, _ = _step_integral(timeline, split, horizon_s)
    return area / (horizon_s - split)


def naive_last_value(features: Sequence[float]) -> float:
    """The bar: predict the suffix equals the last observed level."""
    return float(features[0])


def ewma_prediction(features: Sequence[float], weight: float = 0.7) -> float:
    """Blend of the time-weighted prefix mean and the last level.

    This is the closed form of time-weighted exponential smoothing on a
    step timeline: the smoothed level is a convex combination of the
    long-run mean and the most recent reading."""
    return weight * float(features[1]) + (1.0 - weight) * float(features[0])


class LogisticForecaster:
    """A seeded logistic regressor over prefix features.

    ``fit`` runs fixed-iteration full-batch gradient descent on the
    log-loss of the availability target squashed into (0, 1); every
    arithmetic step is a pure function of (features, targets, seed)."""

    def __init__(self, seed: int = 0, lr: float = 0.5, iters: int = 400):
        self.seed = seed
        self.lr = lr
        self.iters = iters
        self.weights: Optional[np.ndarray] = None

    def _design(self, features: np.ndarray) -> np.ndarray:
        return np.hstack([np.ones((features.shape[0], 1)), features])

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LogisticForecaster":
        X = self._design(np.asarray(features, dtype=np.float64))
        y = np.clip(np.asarray(targets, dtype=np.float64), 1e-6, 1.0 - 1e-6)
        rng = np.random.default_rng(self.seed)
        w = rng.normal(0.0, 0.01, size=X.shape[1])
        for _ in range(self.iters):
            p = 1.0 / (1.0 + np.exp(-(X @ w)))
            w -= self.lr * (X.T @ (p - y)) / X.shape[0]
        self.weights = w
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ConfigurationError("fit the forecaster before predicting")
        X = self._design(np.asarray(features, dtype=np.float64))
        return 1.0 / (1.0 + np.exp(-(X @ self.weights)))


@dataclass(frozen=True)
class ForecastEvaluation:
    """Held-out scorecard of the trained forecaster vs the naive bar."""

    model_name: str
    n_train: int
    n_heldout: int
    band: float
    model_mae: float
    naive_mae: float
    coverage: float
    predictions: Tuple[Tuple[float, float, float], ...]  # (truth, model, naive)

    @property
    def beats_naive(self) -> bool:
        return self.model_mae < self.naive_mae

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.coverage

    @property
    def mae_excess(self) -> float:
        """model MAE minus naive MAE: negative means the model wins
        (gated as an upper bound of 0.0)."""
        return self.model_mae - self.naive_mae

    def summary(self) -> Dict[str, float]:
        return {
            "n_train": float(self.n_train),
            "n_heldout": float(self.n_heldout),
            "band": self.band,
            "model_mae": self.model_mae,
            "naive_mae": self.naive_mae,
            "mae_excess": self.mae_excess,
            "coverage": self.coverage,
            "miss_rate": self.miss_rate,
            "beats_naive": float(self.beats_naive),
        }


def train_availability_forecaster(
    reports: Sequence[ChaosReport],
    prefix_fraction: float = 0.5,
    seed: int = 0,
    band: float = 0.05,
    heldout_every: int = 3,
) -> ForecastEvaluation:
    """Fit on a deterministic split of ensemble members, score held-out.

    Members whose index satisfies ``i % heldout_every ==
    heldout_every - 1`` are held out; the rest train.  The trained
    candidate (logistic vs EWMA) is chosen by *training* MAE only, then
    scored against the naive last-value predictor on the held-out set.
    """
    if len(reports) < 2 * heldout_every:
        raise ConfigurationError(
            f"need >= {2 * heldout_every} ensemble members to train and hold out"
        )
    rows: List[Tuple[Tuple[float, ...], float]] = []
    for report in reports:
        horizon_s = report.timeline[-1][0]
        rows.append(
            (
                prefix_features(report.timeline, horizon_s, prefix_fraction),
                suffix_availability(report.timeline, horizon_s, prefix_fraction),
            )
        )
    train = [r for i, r in enumerate(rows) if i % heldout_every != heldout_every - 1]
    heldout = [r for i, r in enumerate(rows) if i % heldout_every == heldout_every - 1]

    X_train = np.array([f for f, _ in train])
    y_train = np.array([t for _, t in train])
    logistic = LogisticForecaster(seed=seed).fit(X_train, y_train)
    logistic_train_mae = float(np.mean(np.abs(logistic.predict(X_train) - y_train)))
    ewma_train_mae = float(
        np.mean([abs(ewma_prediction(f) - t) for f, t in train])
    )
    if logistic_train_mae <= ewma_train_mae:
        model_name = "logistic"
        predict = lambda f: float(logistic.predict(np.array([f]))[0])  # noqa: E731
    else:
        model_name = "ewma"
        predict = ewma_prediction

    predictions: List[Tuple[float, float, float]] = []
    for features, truth in heldout:
        predictions.append(
            (truth, predict(features), naive_last_value(features))
        )
    model_mae = float(np.mean([abs(m - t) for t, m, _ in predictions]))
    naive_mae = float(np.mean([abs(n - t) for t, _, n in predictions]))
    coverage = float(
        np.mean([1.0 if abs(m - t) <= band else 0.0 for t, m, _ in predictions])
    )
    return ForecastEvaluation(
        model_name=model_name,
        n_train=len(train),
        n_heldout=len(heldout),
        band=band,
        model_mae=model_mae,
        naive_mae=naive_mae,
        coverage=coverage,
        predictions=tuple(predictions),
    )


__all__ = [
    "FEATURE_NAMES",
    "ForecastEvaluation",
    "LogisticForecaster",
    "ewma_prediction",
    "naive_last_value",
    "prefix_features",
    "suffix_availability",
    "train_availability_forecaster",
]
