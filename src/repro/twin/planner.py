"""The what-if planner: predicted SLO deltas before the commit.

The pre-commit question an OCS fleet operator actually asks (Mission
Apollo, PAPERS.md) is "if I push this policy now, what happens to the
SLOs?".  :class:`WhatIfPlanner` answers it in the twin: take a recorded
:class:`~repro.twin.timeline.FleetTimeline`, rebuild the *identical*
workload and fault storm from its replay parameters, run the serving
stack under a proposed :class:`TwinPolicy`, and report predicted SLOs
and their deltas against the recorded baseline.  Everything downstream
is sim-clocked and seeded, so the same timeline + the same policy yields
a byte-identical :class:`PlanReport` -- :meth:`PlanReport.digest` is the
acceptance pin.

:meth:`WhatIfPlanner.approve` is the gate the control plane consults
before ``DurableController.reconfigure`` / ``ReplicationGroup`` commits
a policy-shaped change: it returns the predicted report plus the list of
SLO thresholds the policy would violate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS
from repro.serve.service import FabricService, ServeConfig
from repro.serve.workload import ServeWorkload
from repro.twin.timeline import FleetTimeline, baseline_slos

#: Predicted-SLO keys a planner report always carries.
PREDICTED_KEYS = (
    "serve_p99_ms",
    "serve_shed_rate",
    "failover_p99_s",
    "availability",
    "unavailability",
)


@dataclass(frozen=True)
class TwinPolicy:
    """A proposed control-plane change, expressed as serving knobs.

    Attributes:
        name: operator-facing label (lands in reports and artifacts).
        pinned_brownout: freeze the brownout ladder at this level
            (``None`` keeps it adaptive).
        global_rate_scale / tenant_rate_scale: admission-rate multipliers
            (a reconfiguration that adds/removes capacity).
        queue_capacity / retry_ratio: queueing/retry overrides.
        num_controller_replicas: propose replicated-controller mode.
        quarantine_fraction: capacity held out by a proposed quarantine;
            priced as a uniform admission-capacity reduction.
    """

    name: str = "proposed"
    pinned_brownout: Optional[int] = None
    global_rate_scale: float = 1.0
    tenant_rate_scale: float = 1.0
    queue_capacity: Optional[int] = None
    retry_ratio: Optional[float] = None
    num_controller_replicas: Optional[int] = None
    quarantine_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.quarantine_fraction < 1.0:
            raise ConfigurationError("quarantine_fraction must be in [0, 1)")
        if self.global_rate_scale <= 0 or self.tenant_rate_scale <= 0:
            raise ConfigurationError("rate scales must be positive")

    def apply(self, config: ServeConfig) -> ServeConfig:
        """The proposed :class:`ServeConfig`, derived not mutated."""
        capacity = 1.0 - self.quarantine_fraction
        overrides: Dict[str, object] = {
            "global_rate_per_s": config.global_rate_per_s
            * self.global_rate_scale * capacity,
            "global_burst": config.global_burst * self.global_rate_scale
            * capacity,
            "tenant_rate_per_s": config.tenant_rate_per_s
            * self.tenant_rate_scale * capacity,
            "tenant_burst": config.tenant_burst * self.tenant_rate_scale
            * capacity,
        }
        if self.pinned_brownout is not None:
            overrides["pinned_brownout"] = self.pinned_brownout
        if self.queue_capacity is not None:
            overrides["queue_capacity"] = self.queue_capacity
        if self.retry_ratio is not None:
            overrides["retry_ratio"] = self.retry_ratio
        if self.num_controller_replicas is not None:
            overrides["num_controller_replicas"] = self.num_controller_replicas
        return dataclasses.replace(config, **overrides)

    def canonical(self) -> str:
        """Sorted-JSON identity (digested into plan reports)."""
        return json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        )


@dataclass(frozen=True)
class PlanReport:
    """Predicted SLOs for one (timeline, policy) evaluation."""

    policy: TwinPolicy
    timeline_name: str
    timeline_digest: str
    baseline: Mapping[str, float]
    predicted: Mapping[str, float]

    @property
    def deltas(self) -> Dict[str, float]:
        """predicted - baseline, per SLO present in both."""
        return {
            key: self.predicted[key] - self.baseline[key]
            for key in PREDICTED_KEYS
            if key in self.predicted and key in self.baseline
        }

    def violations(
        self, thresholds: Mapping[str, float]
    ) -> List[Tuple[str, float, float]]:
        """(slo, predicted, max allowed) for every threshold the
        prediction exceeds.  Threshold keys may carry a ``twin_plan_``
        prefix (the ``slo_thresholds.json`` namespace)."""
        out: List[Tuple[str, float, float]] = []
        for key in sorted(thresholds):
            slo = key[len("twin_plan_"):] if key.startswith("twin_plan_") else key
            if slo not in self.predicted:
                continue
            limit = float(thresholds[key])
            value = float(self.predicted[slo])
            if value > limit:
                out.append((slo, value, limit))
        return out

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "plan",
            "policy": json.loads(self.policy.canonical()),
            "timeline_name": self.timeline_name,
            "timeline_digest": self.timeline_digest,
            "baseline": dict(sorted(self.baseline.items())),
            "predicted": dict(sorted(self.predicted.items())),
            "deltas": dict(sorted(self.deltas.items())),
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """SHA-256 over policy identity, timeline identity, and the full
        predicted-SLO vector -- byte-identical across replays."""
        payload = json.dumps(
            {
                "policy": self.policy.canonical(),
                "timeline": self.timeline_digest,
                "baseline": dict(sorted(self.baseline.items())),
                "predicted": dict(sorted(self.predicted.items())),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class WhatIfPlanner:
    """Replays a recorded fleet timeline under proposed policies."""

    def __init__(self, timeline: FleetTimeline, obs: Optional[object] = None):
        self.timeline = timeline
        self.obs = obs if obs is not None else NULL_OBS
        self._timeline_digest = timeline.digest()

    def _base_config(self) -> ServeConfig:
        kwargs: Dict[str, object] = {"seed": self.timeline.seed}
        if self.timeline.num_tenants != ServeConfig.num_tenants:
            kwargs["num_tenants"] = self.timeline.num_tenants
        if self.timeline.profile == "failover":
            # Match run_failover_drill's recorded configuration so a
            # no-op policy reproduces the baseline.
            kwargs["num_controller_replicas"] = 3
            kwargs["replica_lease_s"] = 0.15
        return ServeConfig(**kwargs)  # type: ignore[arg-type]

    def evaluate(self, policy: TwinPolicy) -> PlanReport:
        """Predicted SLOs for one policy, from a full twin replay."""
        from repro.faults.injector import FaultInjector
        from repro.serve.drill import (
            build_failover_timeline,
            build_fault_timeline,
        )

        timeline = self.timeline
        config = policy.apply(self._base_config())
        with self.obs.tracer.span(
            "twin.plan.replay", policy=policy.name,
            profile=timeline.profile, timeline=timeline.name,
        ):
            workload = ServeWorkload(
                seed=timeline.seed,
                rate_per_s=timeline.rate_per_s,
                num_tenants=timeline.num_tenants,
            )
            requests = workload.generate(timeline.num_primaries)
            horizon_s = requests[-1].arrival_s
            injector = FaultInjector(seed=timeline.seed)
            if timeline.profile == "failover":
                build_failover_timeline(injector, horizon_s)
            else:
                build_fault_timeline(injector, horizon_s)
            service = FabricService(config, obs=NULL_OBS)
            report = service.run(requests, faults=injector)
            self.obs.metrics.counter("twin.plan.replays").inc()
        predicted = baseline_slos(report.summary())
        return PlanReport(
            policy=policy,
            timeline_name=timeline.name,
            timeline_digest=self._timeline_digest,
            baseline=dict(timeline.baseline),
            predicted=predicted,
        )

    def approve(
        self, policy: TwinPolicy, thresholds: Mapping[str, float]
    ) -> Tuple[bool, List[Tuple[str, float, float]], PlanReport]:
        """The pre-commit gate: (ok, violations, report).

        ``ok`` is False when any predicted SLO exceeds its threshold --
        the control plane should hold the change and page a human
        instead of committing."""
        report = self.evaluate(policy)
        violations = report.violations(thresholds)
        self.obs.metrics.counter(
            "twin.plan.gated", verdict="ok" if not violations else "hold"
        ).inc()
        return (not violations, violations, report)


__all__ = [
    "PREDICTED_KEYS",
    "PlanReport",
    "TwinPolicy",
    "WhatIfPlanner",
]
