"""The end-to-end twin drill: record, aggregate, forecast, plan, gate.

One call walks the whole predictive-operations loop the ROADMAP's
digital-twin item describes:

1. **record** a fleet timeline from the overload serving drill
   (:func:`repro.twin.timeline.record_fleet_timeline`);
2. **aggregate** it through the streaming time-series pipeline
   (tumbling windows, EWMA/rate derived series, emission digest);
3. **forecast** availability from a chaos ensemble
   (:func:`repro.twin.forecast.train_availability_forecaster`) and score
   it against the naive last-value bar on held-out members;
4. **plan**: evaluate candidate policies against the recorded timeline
   (:class:`repro.twin.planner.WhatIfPlanner`) and re-evaluate the first
   one to prove replay determinism (byte-equal report digests);
5. **gate**: publish the twin SLO gauges (``twin.forecast.miss_rate``,
   ``twin.forecast.mae_excess``, ``twin.plan.divergence``) on the shared
   registry for the NOC / CI thresholds.

``python -m repro.tools.noc twin`` renders the result; the ``twin``
phase of :func:`repro.obs.drill.run_fabric_drill` republishes the
gauges into the fleet NOC gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.faults.ensemble import chaos_ensemble_serial
from repro.obs import NULL_OBS, Observability
from repro.obs.timeseries import TimeSeriesPipeline, WindowSpec
from repro.twin.forecast import train_availability_forecaster
from repro.twin.planner import PlanReport, TwinPolicy, WhatIfPlanner
from repro.twin.timeline import record_fleet_timeline

#: The chaos-ensemble parameterization the forecaster trains on: enough
#: injected OCS failures that the last-value predictor is genuinely
#: wrong about the suffix (see tests/twin/test_forecast.py).
ENSEMBLE_SCENARIO = "single_ocs_loss"
ENSEMBLE_KWARGS: Dict[str, float] = {
    "horizon_hours": 2000.0,
    "ocs_availability": 0.995,
    "mttr_hours": 8.0,
}

#: Candidate policies the drill evaluates (the operator's usual asks:
#: pin deep brownout, quarantine an eighth of capacity, go replicated).
DEFAULT_POLICIES = (
    TwinPolicy(name="pin_brownout_2", pinned_brownout=2),
    TwinPolicy(name="quarantine_eighth", quarantine_fraction=0.125),
    TwinPolicy(name="replicate_3", num_controller_replicas=3),
)


def run_twin_drill(
    seed: int = 0,
    smoke: bool = True,
    obs: Optional[Observability] = None,
    num_primaries: Optional[int] = None,
    ensemble_members: Optional[int] = None,
    policies: Optional[Sequence[TwinPolicy]] = None,
) -> Dict[str, object]:
    """Run the full twin loop; returns the JSON-able result bundle.

    Keys: ``summary`` (flat SLO-facing numbers), ``timeline`` (the
    recorded :class:`~repro.twin.timeline.FleetTimeline`), ``plans``
    (one :class:`~repro.twin.planner.PlanReport` per policy),
    ``forecast`` (the held-out evaluation), and ``aggregates`` (the
    pipeline's emitted records, JSONL-ready).
    """
    if obs is None:
        obs = NULL_OBS
    if num_primaries is None:
        # 1,500 primaries puts the first crash/timeout cycle of the
        # overload storm (t = 0.35..1.2 s) inside the recorded horizon.
        num_primaries = 1_500 if smoke else 5_000
    if ensemble_members is None:
        ensemble_members = 24 if smoke else 64
    policies = list(policies) if policies is not None else list(DEFAULT_POLICIES)

    with obs.tracer.span("twin.drill", seed=seed, smoke=smoke):
        # 1. Record the fleet timeline from the overload drill.
        timeline = record_fleet_timeline(
            seed=seed, profile="serve", num_primaries=num_primaries,
            sample_every_s=0.1, name=f"serve-s{seed}", obs=obs,
        )

        # 2. Stream it through the windowed-aggregation pipeline.
        with obs.tracer.span("twin.aggregate"):
            pipeline = TimeSeriesPipeline(
                WindowSpec(width_ms=200.0), obs=obs
            )
            replayed = pipeline.replay(timeline.to_records())
            pipeline.flush()
            p99_ewma = pipeline.ewma("serve.latency_p99_ms", alpha=0.4)
            shed_rate = pipeline.rate("serve.shed")
            aggregates_digest = pipeline.digest()

        # 3. Train + score the availability forecaster on a chaos
        # ensemble (serial: members are milliseconds each).
        with obs.tracer.span("twin.forecast", members=ensemble_members):
            reports = chaos_ensemble_serial(
                ENSEMBLE_SCENARIO,
                [seed * 1_000 + i for i in range(ensemble_members)],
                dict(ENSEMBLE_KWARGS),
            )
            evaluation = train_availability_forecaster(reports, seed=seed)

        # 4. What-if planning, plus the determinism re-evaluation.
        planner = WhatIfPlanner(timeline, obs=obs)
        plans: List[PlanReport] = [planner.evaluate(p) for p in policies]
        replayed_first = planner.evaluate(policies[0])
        divergence = 0.0 if replayed_first.digest() == plans[0].digest() else 1.0

        # 5. Publish the twin SLO gauges.
        obs.metrics.gauge("twin.forecast.miss_rate").set(evaluation.miss_rate)
        obs.metrics.gauge("twin.forecast.mae_excess").set(evaluation.mae_excess)
        obs.metrics.gauge("twin.plan.divergence").set(divergence)

    summary: Dict[str, object] = {
        "seed": seed,
        "smoke": smoke,
        "num_primaries": num_primaries,
        "timeline_digest": timeline.digest(),
        "timeline_samples": len(timeline.samples),
        "aggregates": len(pipeline.aggregates()),
        "aggregates_digest": aggregates_digest,
        "replayed_samples": replayed,
        "ensemble_members": ensemble_members,
        "forecast_model": evaluation.model_name,
        "twin_forecast_miss_rate": evaluation.miss_rate,
        "twin_forecast_mae_excess": evaluation.mae_excess,
        "twin_plan_divergence": divergence,
        "forecast": evaluation.summary(),
        "baseline_slos": dict(sorted(timeline.baseline.items())),
        "policies": [p.name for p in policies],
        "p99_ewma_final_ms": p99_ewma[-1][1] if p99_ewma else 0.0,
        "shed_rate_final_per_s": shed_rate[-1][1] if shed_rate else 0.0,
    }
    return {
        "summary": summary,
        "timeline": timeline,
        "plans": plans,
        "forecast": evaluation,
        "aggregates": pipeline.to_records(),
    }


def twin_slos(summary: Dict[str, object]) -> Dict[str, float]:
    """The twin SLOs in the shape the NOC / CI gate consumes."""
    return {
        "twin_forecast_miss_rate": float(summary["twin_forecast_miss_rate"]),  # type: ignore[arg-type]
        "twin_forecast_mae_excess": float(summary["twin_forecast_mae_excess"]),  # type: ignore[arg-type]
        "twin_plan_divergence": float(summary["twin_plan_divergence"]),  # type: ignore[arg-type]
    }


__all__ = [
    "DEFAULT_POLICIES",
    "ENSEMBLE_KWARGS",
    "ENSEMBLE_SCENARIO",
    "run_twin_drill",
    "twin_slos",
]
