"""Optical circulators: the bidirectional-link enabler (Appendix B).

A circulator is a three-port non-reciprocal device with cyclic
connectivity: light entering port 1 exits port 2, light entering port 2
exits port 3 (port 3 to port 1 is unused in our links).  Placing one at
each end of a fiber converts a duplex two-strand link into a bidirectional
single-strand link, halving the OCS ports needed -- the paper's key
cost-at-scale lever.

The model tracks the three impairments the paper re-engineered the
telecom-grade parts for: per-pass insertion loss, port-to-port crosstalk
(stray light equivalent to an in-link reflection), and return loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError

#: Valid (input, output) port pairs for the cyclic flow.
_CYCLE = {1: 2, 2: 3, 3: 1}


@dataclass(frozen=True)
class Circulator:
    """One three-port optical circulator.

    Args:
        insertion_loss_db: loss of one pass through the device (positive dB).
        isolation_db: suppression of the reverse path (e.g. 2 -> 1), positive.
        crosstalk_db: leakage from port 1 directly to port 3 relative to the
            input, negative dB.  This is the in-band crosstalk term that the
            MPI analysis treats as an equivalent reflection.
        return_loss_db: reflection back out of an input port, negative dB.
    """

    insertion_loss_db: float = 0.8
    isolation_db: float = 40.0
    crosstalk_db: float = -50.0
    return_loss_db: float = -50.0

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ConfigurationError("insertion loss must be non-negative dB")
        if self.isolation_db <= 0:
            raise ConfigurationError("isolation must be positive dB")
        if self.crosstalk_db >= 0:
            raise ConfigurationError("crosstalk must be negative dB (below carrier)")
        if self.return_loss_db >= 0:
            raise ConfigurationError("return loss must be negative dB")

    def output_port(self, input_port: int) -> int:
        """The port light entering ``input_port`` exits from (cyclic)."""
        try:
            return _CYCLE[input_port]
        except KeyError:
            raise ConfigurationError(
                f"circulator ports are 1..3, got {input_port}"
            ) from None

    def transmission_db(self, input_port: int, output_port: int) -> float:
        """Power transfer from ``input_port`` to ``output_port`` in dB.

        The cyclic path sees ``-insertion_loss_db``; the skip path (1 -> 3)
        sees the crosstalk level; reverse paths see ``-isolation_db``.
        """
        if input_port not in _CYCLE or output_port not in _CYCLE:
            raise ConfigurationError("circulator ports are 1..3")
        if input_port == output_port:
            return self.return_loss_db
        if _CYCLE[input_port] == output_port:
            return -self.insertion_loss_db
        if input_port == 1 and output_port == 3:
            return self.crosstalk_db
        return -self.isolation_db

    @property
    def tx_to_fiber_db(self) -> float:
        """Loss from the laser (port 1) to the fiber (port 2)."""
        return self.insertion_loss_db

    @property
    def fiber_to_rx_db(self) -> float:
        """Loss from the fiber (port 2) to the receiver (port 3)."""
        return self.insertion_loss_db

    def equivalent_reflection_db(self) -> float:
        """The crosstalk expressed as an equivalent in-link reflection level.

        §3.3.1: circulator crosstalk is "effectively equivalent to having a
        reflection in the link" -- local transmit light leaking directly into
        the local receiver at ``crosstalk_db`` below the transmit carrier.
        """
        return self.crosstalk_db


def bidi_ports_saved(num_links: int) -> int:
    """OCS ports saved by using bidi links instead of duplex for ``num_links``.

    Each duplex link consumes two OCS circuits (one per direction/strand);
    a circulator-based bidi link consumes one.  Appendix B: "saving 50% of
    the OCS ports required".
    """
    if num_links < 0:
        raise ConfigurationError("link count must be non-negative")
    return num_links
