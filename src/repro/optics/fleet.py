"""Fleet-scale BER sampling: the production distribution of Fig 13.

Fig 13 plots per-lane pre-FEC BER (with OIM and SFEC active) across the
~6144 receiving ports of a TPU v4 superpod (16 ports per cube face x 6
faces x 64 cubes).  Every lane sits below the KP4 threshold of 2e-4 with
roughly two orders of magnitude of margin.

The sampler draws per-port variations -- received power (manufacturing +
link-budget spread), aggregate MPI level, and thermal-noise spread -- and
evaluates the analytic PAM4 BER for each port with OIM enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.obs import Observability
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.oim import OimDsp
from repro.optics.pam4 import DEFAULT_THERMAL_NOISE_W, Pam4LinkModel, ber_batch

#: Fig 13 port count: 16 ports/face x 6 faces x 64 cubes.
SUPERPOD_RX_PORTS = 16 * 6 * 64


@dataclass
class FleetBerSampler:
    """Samples the production per-port BER distribution.

    Args:
        num_ports: receiving ports to sample (default: the superpod's 6144).
        rx_power_mean_dbm / rx_power_sigma_db: received-power spread across
            the fleet (link budgets are engineered for margin above
            sensitivity, hence the mean well above the ~-11 dBm threshold).
        mpi_mean_db / mpi_sigma_db: per-port aggregate MPI spread.
        thermal_sigma_fraction: lognormal spread of receiver noise.
    """

    num_ports: int = SUPERPOD_RX_PORTS
    rx_power_mean_dbm: float = -9.0
    rx_power_sigma_db: float = 0.25
    mpi_mean_db: float = -35.0
    mpi_sigma_db: float = 1.0
    mpi_worst_db: float = -30.0
    thermal_sigma_fraction: float = 0.05
    oim: Optional[OimDsp] = None
    seed: int = 0
    #: Optional observability bundle; the vectorized sweep is a perf-tested
    #: hot path, so instrumentation is fully skipped when this is None.
    obs: Optional[Observability] = None

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ConfigurationError("need at least one port")
        if self.oim is None:
            self.oim = OimDsp()

    def _draw_port_variations(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Seeded per-port (rx power dBm, MPI dB, thermal noise W) draws."""
        rng = np.random.default_rng(self.seed)
        rx_powers = rng.normal(self.rx_power_mean_dbm, self.rx_power_sigma_db, self.num_ports)
        mpi = np.minimum(
            rng.normal(self.mpi_mean_db, self.mpi_sigma_db, self.num_ports),
            self.mpi_worst_db,
        )
        thermal = DEFAULT_THERMAL_NOISE_W * rng.lognormal(
            0.0, self.thermal_sigma_fraction, self.num_ports
        )
        return rx_powers, mpi, thermal

    def sample(self) -> np.ndarray:
        """Per-port pre-FEC BER (OIM on), shape ``(num_ports,)``.

        All 6,144 superpod ports are evaluated in one :func:`ber_batch`
        pass -- no per-port model construction.  :meth:`sample_reference`
        is the scalar oracle this path is property-tested against.
        """
        assert self.oim is not None
        if self.obs is None:
            rx_powers, mpi, thermal = self._draw_port_variations()
            return ber_batch(
                rx_powers,
                mpi_db=mpi,
                thermal_noise_w=thermal,
                oim_suppression_db=self.oim.effective_suppression_db,
            )
        with self.obs.tracer.span("optics.ber_sweep", ports=self.num_ports):
            rx_powers, mpi, thermal = self._draw_port_variations()
            bers = ber_batch(
                rx_powers,
                mpi_db=mpi,
                thermal_noise_w=thermal,
                oim_suppression_db=self.oim.effective_suppression_db,
            )
            self.obs.metrics.counter("optics.ber.sweeps").inc()
            self.obs.metrics.counter("optics.ber.ports_sampled").inc(
                self.num_ports
            )
            floored = np.maximum(bers, 1e-30)
            self.obs.metrics.gauge("optics.ber.worst_margin_decades").set(
                float(np.log10(KP4_BER_THRESHOLD) - np.log10(floored.max()))
            )
        return bers

    def sample_reference(self) -> np.ndarray:
        """Scalar oracle for :meth:`sample`: one ``Pam4LinkModel`` per port.

        Kept for the property suite and the perf-regression harness; same
        seeded draws, same analytic expression, evaluated port by port.
        """
        assert self.oim is not None
        rx_powers, mpi, thermal = self._draw_port_variations()
        bers = np.empty(self.num_ports)
        for i in range(self.num_ports):
            model = Pam4LinkModel(
                mpi_db=float(mpi[i]),
                oim_suppression_db=self.oim.effective_suppression_db,
                thermal_noise_w=float(thermal[i]),
            )
            bers[i] = model.ber(float(rx_powers[i]))
        return bers

    def summarize(self, bers: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Fleet statistics: medians, worst case, and margin to KP4."""
        if bers is None:
            bers = self.sample()
        bers = np.asarray(bers)
        floored = np.maximum(bers, 1e-30)
        worst = float(floored.max())
        return {
            "ports": int(bers.size),
            "median_ber": float(np.median(floored)),
            "p99_ber": float(np.percentile(floored, 99)),
            "worst_ber": worst,
            "all_below_threshold": bool(np.all(bers < KP4_BER_THRESHOLD)),
            "worst_margin_decades": float(
                np.log10(KP4_BER_THRESHOLD) - np.log10(worst)
            ),
            "median_margin_decades": float(
                np.log10(KP4_BER_THRESHOLD) - np.log10(np.median(floored))
            ),
        }
