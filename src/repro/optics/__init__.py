"""The optical layer: transceivers, circulators, link budgets, and DSP.

Reproduces §3.3 and §4.1.2 of the paper: bidirectional WDM transceivers
(CWDM4 and CWDM8 grids), integrated optical circulators, link-budget
accounting through OCSes, PAM4 bit-error-rate modelling with multi-path
interference (MPI), the optical-interference-mitigation (OIM) notch-filter
DSP, and the concatenated soft-decision + KP4 forward error correction.
"""

from repro.optics.wavelength import (
    CWDM4_GRID,
    CWDM8_GRID,
    WavelengthChannel,
    WdmGrid,
)
from repro.optics.circulator import Circulator
from repro.optics.fiber import FiberSpan
from repro.optics.transceiver import (
    TRANSCEIVER_GENERATIONS,
    TransceiverSpec,
    interoperable,
    transceiver,
)
from repro.optics.link_budget import LinkBudget, LossElement
from repro.optics.mpi import MpiSource, aggregate_mpi_db, beat_noise_sigma_w
from repro.optics.oim import OimDsp
from repro.optics.mc_sweep import (
    McBerTask,
    monte_carlo_ber_grid,
    monte_carlo_ber_grid_serial,
)
from repro.optics.pam4 import Pam4LinkModel, ber_batch
from repro.optics.fec import ConcatenatedFec, InnerSoftFec, KP4_BER_THRESHOLD, Kp4OuterCode
from repro.optics.ber import (
    BerCurve,
    LinkBerSimulator,
    receiver_sensitivity_batch,
    receiver_sensitivity_dbm,
    receiver_sensitivity_reference,
)
from repro.optics.fleet import FleetBerSampler
from repro.optics.wdm_link import LaneResult, WdmLinkModel
from repro.optics.eye import EyeReport, eye_margin_db, eye_report

__all__ = [
    "CWDM4_GRID",
    "CWDM8_GRID",
    "WavelengthChannel",
    "WdmGrid",
    "Circulator",
    "FiberSpan",
    "TRANSCEIVER_GENERATIONS",
    "TransceiverSpec",
    "transceiver",
    "interoperable",
    "LinkBudget",
    "LossElement",
    "MpiSource",
    "aggregate_mpi_db",
    "beat_noise_sigma_w",
    "OimDsp",
    "Pam4LinkModel",
    "ber_batch",
    "McBerTask",
    "monte_carlo_ber_grid",
    "monte_carlo_ber_grid_serial",
    "ConcatenatedFec",
    "InnerSoftFec",
    "Kp4OuterCode",
    "KP4_BER_THRESHOLD",
    "BerCurve",
    "LinkBerSimulator",
    "receiver_sensitivity_dbm",
    "receiver_sensitivity_batch",
    "receiver_sensitivity_reference",
    "FleetBerSampler",
    "WdmLinkModel",
    "LaneResult",
    "EyeReport",
    "eye_report",
    "eye_margin_db",
]
