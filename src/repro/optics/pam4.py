"""PAM4 receiver model: analytic and Monte-Carlo bit error ratio.

The 50 Gb/s-per-lane links of Fig 11 use 4-level pulse-amplitude
modulation.  The model works in the optical-power domain at the decision
slicer:

- The four levels are equally spaced, ``L_i = 2*P_avg*i/3``, so the
  average equals the received average optical power ``P_avg``.
- Receiver (thermal + TIA) noise is a level-independent Gaussian with RMS
  ``sigma_thermal_w`` (optical-power-equivalent).
- MPI adds a beat term: an aggregate interferer of power ``P_i``
  (specified relative to the modulated optical amplitude, OMA) beating
  with the signal.  Because many reflection paths contribute, the
  aggregate interferer field is complex-Gaussian and the beat on level
  ``L`` is Gaussian with variance ``2*L*P_i``.  Since the beat variance
  grows with power just like the eye opening, high MPI produces the
  BER *floors* of Fig 11.  OIM suppresses the beat amplitude by
  ``oim_suppression_db`` (power dB).

Gray mapping makes BER = SER/2 for adjacent-level errors, the dominant
mechanism at realistic SNR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.special import erfc

from repro.core.errors import ConfigurationError
from repro.core.units import db_to_linear, dbm_to_w
from repro.optics.mpi import sample_beat_noise_w

#: Default receiver thermal-noise RMS, optical-power-equivalent watts.
#: Calibrated for ~-11 dBm sensitivity at the KP4 threshold for 50G PAM4.
DEFAULT_THERMAL_NOISE_W = 7.5e-6

#: Gray-coded bits per PAM4 symbol.
BITS_PER_SYMBOL = 2

#: Gray code for levels 0..3 (adjacent levels differ in one bit).
_GRAY = (0b00, 0b01, 0b11, 0b10)


def _q_function(x: np.ndarray) -> np.ndarray:
    """Tail probability of the standard normal."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / math.sqrt(2.0))


def ber_batch(
    rx_power_dbm: "np.typing.ArrayLike",
    mpi_db: "Optional[np.typing.ArrayLike]" = None,
    thermal_noise_w: "np.typing.ArrayLike" = DEFAULT_THERMAL_NOISE_W,
    oim_suppression_db: "np.typing.ArrayLike" = 0.0,
    equalizer_enhancement: "np.typing.ArrayLike" = 1.2,
) -> np.ndarray:
    """Analytic PAM4 pre-FEC BER over arbitrary broadcastable arrays.

    Evaluates the exact expression of :meth:`Pam4LinkModel.ber` -- four
    equally spaced levels, level-dependent Gaussian noise (thermal plus
    MPI beat), Gray mapping -- in a single NumPy pass over the broadcast
    of all five parameter arrays.  The arithmetic mirrors the scalar
    oracle operation-for-operation, so results agree to the last ulp;
    the property suite pins the two paths together at 1e-12 relative
    tolerance.

    Args:
        rx_power_dbm: received average power(s), dBm.
        mpi_db: aggregate interferer level(s) relative to OMA.  ``None``
            or non-finite entries (``nan``/``-inf``) mean no MPI, matching
            the scalar model's ``mpi_db=None`` convention.
        thermal_noise_w: receiver noise RMS, optical-equivalent watts.
        oim_suppression_db: beat-power suppression(s), dB (0 = OIM off).
        equalizer_enhancement: FFE narrow-band beat enhancement factor(s).

    Returns:
        Array of BERs with the broadcast shape of the inputs.
    """
    rx = np.asarray(rx_power_dbm, dtype=float)
    thermal = np.asarray(thermal_noise_w, dtype=float)
    suppression_db = np.asarray(oim_suppression_db, dtype=float)
    eq = np.asarray(equalizer_enhancement, dtype=float)
    if mpi_db is None:
        mpi = np.full((), -np.inf)
    else:
        mpi = np.where(
            np.isfinite(np.asarray(mpi_db, dtype=float)),
            np.asarray(mpi_db, dtype=float),
            -np.inf,
        )

    shape = np.broadcast_shapes(
        rx.shape, mpi.shape, thermal.shape, suppression_db.shape, eq.shape
    )
    rx, mpi, thermal, suppression_db, eq = (
        np.broadcast_to(a, shape)[..., np.newaxis]
        for a in (rx, mpi, thermal, suppression_db, eq)
    )

    p_avg = dbm_to_w(rx)
    # Same op order as Pam4LinkModel.levels_w / oma_w / _interferer_w.
    levels = np.array([0.0, 1.0, 2.0, 3.0]) * (2.0 * p_avg / 3.0)
    oma = 2.0 * p_avg
    p_i = np.where(np.isfinite(mpi), oma * db_to_linear(mpi) * eq, 0.0)
    beat_var = 2.0 * levels * p_i * db_to_linear(-suppression_db)
    sigmas = np.sqrt(thermal ** 2 + beat_var)

    thresholds = (levels[..., :-1] + levels[..., 1:]) / 2.0
    q_up = _q_function((thresholds - levels[..., :-1]) / sigmas[..., :-1])
    q_down = _q_function((levels[..., 1:] - thresholds) / sigmas[..., 1:])
    # Accumulate in the scalar loop's order (u0, u1, d1, u2, d2, d3) so
    # the sum is bit-identical to the oracle.
    symbol_error = (
        q_up[..., 0]
        + q_up[..., 1]
        + q_down[..., 0]
        + q_up[..., 2]
        + q_down[..., 1]
        + q_down[..., 2]
    )
    ser = symbol_error / 4.0
    return np.minimum(0.5, ser / BITS_PER_SYMBOL)


@dataclass(frozen=True)
class Pam4LinkModel:
    """One PAM4 lane with thermal noise and optional MPI.

    Args:
        mpi_db: aggregate interferer level relative to the signal OMA
            (negative dB), or ``None`` / ``-inf`` for no MPI.
        oim_suppression_db: beat-power suppression applied by the OIM
            DSP (0 = OIM off).
        thermal_noise_w: receiver noise RMS in optical-equivalent watts.
        equalizer_enhancement: power factor by which the receiver's
            feed-forward equalizer enhances the narrow-band beat (an FFE
            flattening the channel boosts low-frequency interference).
    """

    mpi_db: Optional[float] = None
    oim_suppression_db: float = 0.0
    thermal_noise_w: float = DEFAULT_THERMAL_NOISE_W
    equalizer_enhancement: float = 1.2

    def __post_init__(self) -> None:
        if self.thermal_noise_w <= 0:
            raise ConfigurationError("thermal noise must be positive")
        if self.oim_suppression_db < 0:
            raise ConfigurationError("OIM suppression must be non-negative dB")
        if self.mpi_db is not None and math.isfinite(self.mpi_db) and self.mpi_db >= 0:
            raise ConfigurationError("MPI level must be below the carrier")
        if self.equalizer_enhancement < 1.0:
            raise ConfigurationError("equalizer enhancement must be >= 1")

    # ------------------------------------------------------------------ #
    # Level geometry
    # ------------------------------------------------------------------ #

    def levels_w(self, rx_power_dbm: float) -> np.ndarray:
        """The four optical levels for a given received average power."""
        p_avg = dbm_to_w(rx_power_dbm)
        return np.array([0.0, 1.0, 2.0, 3.0]) * (2.0 * p_avg / 3.0)

    def oma_w(self, rx_power_dbm: float) -> float:
        """Outer modulation amplitude: L3 - L0 = 2 * P_avg."""
        return 2.0 * dbm_to_w(rx_power_dbm)

    def _interferer_w(self, rx_power_dbm: float) -> float:
        """Effective interferer power at the slicer: ``mpi_db`` below the
        OMA, boosted by the equalizer's narrow-band enhancement."""
        if self.mpi_db is None or not math.isfinite(self.mpi_db):
            return 0.0
        return (
            self.oma_w(rx_power_dbm)
            * db_to_linear(self.mpi_db)
            * self.equalizer_enhancement
        )

    def level_sigmas_w(self, rx_power_dbm: float) -> np.ndarray:
        """Per-level total noise RMS: thermal plus residual MPI beat."""
        levels = self.levels_w(rx_power_dbm)
        p_i = self._interferer_w(rx_power_dbm)
        suppression = db_to_linear(-self.oim_suppression_db)  # power ratio
        beat_var = 2.0 * levels * p_i * suppression
        return np.sqrt(self.thermal_noise_w ** 2 + beat_var)

    # ------------------------------------------------------------------ #
    # Analytic BER
    # ------------------------------------------------------------------ #

    def ber(self, rx_power_dbm: float) -> float:
        """Pre-FEC BER at the slicer for the given received power.

        Each of the four equiprobable symbols sees level-dependent Gaussian
        noise (thermal + beat) and can cross its upper and/or lower decision
        threshold (midpoints between adjacent levels).  With Gray mapping
        each adjacent-level symbol error costs one bit of the two.
        """
        levels = self.levels_w(rx_power_dbm)
        sigmas = self.level_sigmas_w(rx_power_dbm)
        thresholds = (levels[:-1] + levels[1:]) / 2.0
        symbol_error = 0.0
        for i in range(4):
            if i < 3:  # can cross upward
                symbol_error += float(
                    _q_function((thresholds[i] - levels[i]) / sigmas[i])
                )
            if i > 0:  # can cross downward
                symbol_error += float(
                    _q_function((levels[i] - thresholds[i - 1]) / sigmas[i])
                )
        ser = symbol_error / 4.0
        return min(0.5, ser / BITS_PER_SYMBOL)

    def ber_curve(self, rx_powers_dbm: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ber` over an array of received powers.

        One :func:`ber_batch` pass -- no per-power Python loop.
        """
        return self.ber_batch(
            np.asarray(rx_powers_dbm, dtype=float),
            mpi_db=self.mpi_db,
            thermal_noise_w=self.thermal_noise_w,
            oim_suppression_db=self.oim_suppression_db,
            equalizer_enhancement=self.equalizer_enhancement,
        )

    #: Batched BER kernel, exposed on the class for discoverability:
    #: ``Pam4LinkModel.ber_batch(rx_powers, mpi_db=mpi_array, ...)``.
    ber_batch = staticmethod(ber_batch)

    # ------------------------------------------------------------------ #
    # Monte Carlo
    # ------------------------------------------------------------------ #

    def monte_carlo_ber(
        self,
        rx_power_dbm: float,
        num_symbols: int = 200_000,
        seed: int = 0,
    ) -> float:
        """Estimate BER by simulating symbols through the noisy slicer.

        Validates the analytic expression (Fig 11a "BER: Monte Carlo").
        """
        tx_symbols, received = self.simulate_symbols(rx_power_dbm, num_symbols, seed)
        levels = self.levels_w(rx_power_dbm)
        thresholds = (levels[:-1] + levels[1:]) / 2.0
        rx_symbols = np.digitize(received, thresholds)
        bit_errors = _gray_bit_errors(tx_symbols, rx_symbols)
        return float(bit_errors) / (num_symbols * BITS_PER_SYMBOL)

    def simulate_symbols(
        self, rx_power_dbm: float, num_symbols: int, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (transmitted symbols, received analog samples) for DSP tests."""
        if num_symbols <= 0:
            raise ConfigurationError("need at least one symbol")
        rng = np.random.default_rng(seed)
        levels = self.levels_w(rx_power_dbm)
        tx_symbols = rng.integers(0, 4, size=num_symbols)
        received = levels[tx_symbols].astype(float)
        received += rng.normal(0.0, self.thermal_noise_w, size=num_symbols)
        p_i = self._interferer_w(rx_power_dbm)
        if p_i > 0.0:
            received += sample_beat_noise_w(
                rng, levels[tx_symbols], p_i, self.oim_suppression_db
            )
        return tx_symbols, received


def _gray_bit_errors(tx_symbols: np.ndarray, rx_symbols: np.ndarray) -> int:
    """Count differing bits between Gray-coded symbol streams."""
    gray = np.array(_GRAY)
    xor = gray[tx_symbols] ^ gray[rx_symbols]
    return int(np.sum((xor & 1) + ((xor >> 1) & 1)))
