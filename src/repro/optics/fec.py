"""Forward error correction: KP4 outer code and the soft-decision inner code.

§3.3.2/§4.1.2: the transceiver DSP implements a proprietary ultra-low-
latency (<20 ns at 200 Gb/s) soft-decision FEC used as an *inner* code,
concatenated with the standard KP4 outer code (RS(544, 514) over 10-bit
symbols, IEEE 802.3cd).  A variant was adopted by IEEE 802.3dj.

Models:

- :class:`Kp4OuterCode` -- analytic hard-decision Reed-Solomon transfer
  function: input BER -> post-FEC BER via the binomial symbol-error tail.
- :class:`InnerSoftFec` -- Chase-style soft decoding of a short block code,
  modelled as correcting up to ``t_eff`` bit errors per ``block_bits``
  block.  The default (t_eff=3 over 128 bits) reproduces the ~1.5 dB
  receiver-sensitivity gain of Fig 12.
- :class:`ConcatenatedFec` -- the composition, with threshold solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.stats import binom

from repro.core.errors import ConfigurationError

#: Pre-FEC BER threshold of the standalone KP4 code (paper: 2e-4).
KP4_BER_THRESHOLD = 2e-4

#: Post-FEC output BER regarded as error-free operation.
ERROR_FREE_BER = 1e-13


@dataclass(frozen=True)
class Kp4OuterCode:
    """RS(n=544, k=514) over GF(2^10): corrects t=15 symbol errors."""

    n_symbols: int = 544
    k_symbols: int = 514
    bits_per_symbol: int = 10

    def __post_init__(self) -> None:
        if self.k_symbols >= self.n_symbols:
            raise ConfigurationError("k must be smaller than n")
        if self.bits_per_symbol <= 0:
            raise ConfigurationError("symbol size must be positive")

    @property
    def t_symbols(self) -> int:
        """Correctable symbol errors per codeword."""
        return (self.n_symbols - self.k_symbols) // 2

    @property
    def rate(self) -> float:
        return self.k_symbols / self.n_symbols

    def symbol_error_rate(self, input_ber: float) -> float:
        """Probability a 10-bit symbol contains at least one bit error."""
        _check_ber(input_ber)
        if input_ber == 0.0:
            return 0.0
        # -expm1(m*log1p(-b)) keeps precision for tiny BERs.
        return -math.expm1(self.bits_per_symbol * math.log1p(-input_ber))

    def codeword_failure_rate(self, input_ber: float) -> float:
        """Probability a codeword has more than t symbol errors."""
        p = self.symbol_error_rate(input_ber)
        return float(binom.sf(self.t_symbols, self.n_symbols, p))

    def output_ber(self, input_ber: float) -> float:
        """Post-FEC BER under the standard bounded-distance analysis.

        When decoding fails (more than t symbol errors) the errored symbols
        pass through; the post-FEC symbol error rate is
        ``E[j * 1(j > t)] / n`` and each errored symbol carries on average
        ``bits_per_symbol * input_ber / p_symbol`` errored bits.
        """
        _check_ber(input_ber)
        if input_ber == 0.0:
            return 0.0
        p = self.symbol_error_rate(input_ber)
        if p == 0.0:
            return 0.0
        n, t = self.n_symbols, self.t_symbols
        # E[j * 1(j > t)] via the binomial identity E[j 1(j>t)] = n p P(X' >= t)
        # where X' ~ Binom(n-1, p).
        expected_bad = n * p * float(binom.sf(t - 1, n - 1, p))
        post_ser = expected_bad / n
        bits_per_bad_symbol = self.bits_per_symbol * input_ber / p
        return post_ser * bits_per_bad_symbol / self.bits_per_symbol


@dataclass(frozen=True)
class InnerSoftFec:
    """The proprietary low-latency soft-decision inner code.

    Modelled as an extended-Hamming-class block code of ``block_bits`` with
    Chase soft decoding whose net behaviour corrects up to ``t_eff`` bit
    errors per block.  Latency is the paper's <20 ns at 200 Gb/s.
    """

    block_bits: int = 128
    payload_bits: int = 120
    t_eff: int = 2
    latency_ns: float = 18.0

    def __post_init__(self) -> None:
        if self.payload_bits >= self.block_bits:
            raise ConfigurationError("payload must be smaller than the block")
        if self.t_eff < 1:
            raise ConfigurationError("t_eff must be at least 1")
        if self.latency_ns < 0:
            raise ConfigurationError("latency must be non-negative")

    @property
    def rate(self) -> float:
        return self.payload_bits / self.block_bits

    @property
    def overhead_percent(self) -> float:
        return (self.block_bits / self.payload_bits - 1.0) * 100.0

    def block_failure_rate(self, input_ber: float) -> float:
        """Probability a block exceeds the soft-decoding radius."""
        _check_ber(input_ber)
        return float(binom.sf(self.t_eff, self.block_bits, input_ber))

    def output_ber(self, input_ber: float) -> float:
        """BER delivered to the outer code.

        Failed blocks pass their errors through:
        ``BER_out = E[j * 1(j > t_eff)] / block_bits``.
        """
        _check_ber(input_ber)
        if input_ber == 0.0:
            return 0.0
        n, t = self.block_bits, self.t_eff
        expected_bad = n * input_ber * float(binom.sf(t - 1, n - 1, input_ber))
        return expected_bad / n

    def output_ber_batch(self, input_bers: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`output_ber` over an array of channel BERs.

        One ``binom.sf`` pass for a whole waterfall; matches the scalar
        transfer function elementwise (zeros map to zeros).
        """
        bers = np.asarray(input_bers, dtype=float)
        if np.any((bers < 0.0) | (bers > 1.0)):
            raise ConfigurationError("BER must lie in [0, 1]")
        n, t = self.block_bits, self.t_eff
        expected_bad = n * bers * binom.sf(t - 1, n - 1, bers)
        return np.where(bers == 0.0, 0.0, expected_bad / n)


@dataclass(frozen=True)
class ConcatenatedFec:
    """Inner soft-decision code concatenated with the KP4 outer code."""

    inner: InnerSoftFec = InnerSoftFec()
    outer: Kp4OuterCode = Kp4OuterCode()

    def post_fec_ber(self, channel_ber: float) -> float:
        """End-to-end output BER for a given slicer (channel) BER."""
        return self.outer.output_ber(self.inner.output_ber(channel_ber))

    def channel_threshold(self, target_output_ber: float = ERROR_FREE_BER) -> float:
        """Largest channel BER for which the concatenation still delivers
        ``target_output_ber`` -- solved by bisection.

        This is the number that turns into receiver-sensitivity gain: the
        slicer may run at a much higher BER than KP4's 2e-4 alone.
        """
        return _bisect_threshold(self.post_fec_ber, target_output_ber)

    def inner_input_threshold(self) -> float:
        """Channel BER at which the inner code outputs the KP4 threshold."""
        return _bisect_threshold(self.inner.output_ber, KP4_BER_THRESHOLD)

    @property
    def total_rate(self) -> float:
        return self.inner.rate * self.outer.rate

    @property
    def latency_ns(self) -> float:
        """Added latency of the inner code (the outer KP4 is always present)."""
        return self.inner.latency_ns


def kp4_channel_threshold(
    outer: Optional[Kp4OuterCode] = None, target_output_ber: float = ERROR_FREE_BER
) -> float:
    """Channel BER threshold for the standalone KP4 code (~2e-4)."""
    code = outer or Kp4OuterCode()
    return _bisect_threshold(code.output_ber, target_output_ber)


def _bisect_threshold(transfer, target: float, lo: float = 1e-8, hi: float = 0.2) -> float:
    """Find the input BER where a monotone transfer function hits ``target``."""
    if transfer(lo) > target:
        raise ConfigurationError("transfer already above target at the lower bracket")
    if transfer(hi) < target:
        return hi
    for _ in range(80):
        mid = math.sqrt(lo * hi)  # geometric bisection suits BER scales
        if transfer(mid) > target:
            hi = mid
        else:
            lo = mid
    return math.sqrt(lo * hi)


def _check_ber(ber: float) -> None:
    if not 0.0 <= ber <= 0.5:
        raise ConfigurationError(f"BER must be in [0, 0.5], got {ber}")
