"""Multi-lane WDM links: per-lane margins across the 80 nm window.

§3.3.1: operating 4x20 nm (CWDM4) or 8x10 nm (CWDM8) lanes across an
80 nm spectral range makes chromatic dispersion a per-lane impairment --
the outer lanes sit tens of nm from the 1310 nm zero-dispersion point
and pay a real penalty at 100 Gb/s line rates, mitigated by laser chirp
management and MLSE equalization.

:class:`WdmLinkModel` evaluates each lane of a transceiver pair over a
fiber span: received power minus the lane's dispersion penalty, the lane
BER through the common MPI/OIM machinery, and the worst-lane margin that
sets the link's health (a WDM link is only as good as its worst lane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.optics.fiber import FiberSpan
from repro.optics.pam4 import Pam4LinkModel
from repro.optics.transceiver import TransceiverSpec
from repro.optics.wavelength import WavelengthChannel

#: Symbol rate for a 50G PAM4 lane, GBaud.
SYMBOL_RATE_50G_GBAUD = 26.5625

#: Symbol rate for a 100G PAM4 lane, GBaud.
SYMBOL_RATE_100G_GBAUD = 53.125

#: Effective source spectral width after chirp management, nm.
MANAGED_LINEWIDTH_NM = 0.25

#: Dispersion-penalty reduction from MLSE equalization (fraction of the
#: raw penalty that remains).
MLSE_RESIDUAL = 0.5


@dataclass(frozen=True)
class LaneResult:
    """One lane's link-level outcome."""

    channel: WavelengthChannel
    line_rate_gbps: float
    rx_power_dbm: float
    dispersion_penalty_db: float
    ber: float

    @property
    def effective_rx_dbm(self) -> float:
        return self.rx_power_dbm - self.dispersion_penalty_db


@dataclass
class WdmLinkModel:
    """Evaluates every lane of a WDM link.

    Args:
        spec: the transceiver (its grid defines the lane wavelengths).
        fiber: the span between the modules.
        path_loss_db: lumped non-fiber loss (OCS, circulators, connectors).
        mpi_db / oim_suppression_db: the bidi impairment machinery.
        use_mlse: apply the MLSE residual factor to dispersion penalties.
    """

    spec: TransceiverSpec
    fiber: FiberSpan
    path_loss_db: float = 4.0
    mpi_db: Optional[float] = -35.0
    oim_suppression_db: float = 12.0
    use_mlse: bool = True

    def __post_init__(self) -> None:
        if self.path_loss_db < 0:
            raise ConfigurationError("path loss must be non-negative")

    def _lane_channels(self) -> List[WavelengthChannel]:
        grid = self.spec.grid
        # Modules with more lanes than grid channels run two engines on
        # the same grid (2xCWDM4): lanes reuse the channel list.
        return [grid.channel(i % grid.num_channels) for i in range(self.spec.lanes)]

    def _symbol_rate(self, line_rate_gbps: float) -> float:
        return (
            SYMBOL_RATE_100G_GBAUD if line_rate_gbps > 60 else SYMBOL_RATE_50G_GBAUD
        )

    def lane_results(self, line_rate_gbps: Optional[float] = None) -> List[LaneResult]:
        """Per-lane outcomes at a line rate (default: the module's top rate)."""
        rate = line_rate_gbps or max(self.spec.line_rates_gbps)
        if rate not in self.spec.line_rates_gbps:
            raise ConfigurationError(
                f"{self.spec.name} does not support {rate} Gb/s lanes"
            )
        rx = self.spec.tx_power_dbm - self.path_loss_db - self.fiber.total_loss_db
        out: List[LaneResult] = []
        for channel in self._lane_channels():
            raw_penalty = self.fiber.dispersion_penalty_db(
                channel.center_nm,
                self._symbol_rate(rate),
                laser_linewidth_nm=MANAGED_LINEWIDTH_NM,
            )
            penalty = raw_penalty * (MLSE_RESIDUAL if self.use_mlse else 1.0)
            model = Pam4LinkModel(
                mpi_db=self.mpi_db, oim_suppression_db=self.oim_suppression_db
            )
            ber = model.ber(rx - penalty)
            out.append(
                LaneResult(
                    channel=channel,
                    line_rate_gbps=rate,
                    rx_power_dbm=rx,
                    dispersion_penalty_db=penalty,
                    ber=ber,
                )
            )
        return out

    def worst_lane(self, line_rate_gbps: Optional[float] = None) -> LaneResult:
        """The margin-setting lane (highest BER)."""
        return max(self.lane_results(line_rate_gbps), key=lambda l: l.ber)

    def lane_ber_spread(self, line_rate_gbps: Optional[float] = None) -> float:
        """Worst-to-best lane BER ratio: the outer-lane dispersion tax."""
        results = self.lane_results(line_rate_gbps)
        bers = [max(r.ber, 1e-300) for r in results]
        return max(bers) / min(bers)

    def link_ok(
        self, target_ber: float = 2e-4, line_rate_gbps: Optional[float] = None
    ) -> bool:
        """True when every lane clears the pre-FEC threshold."""
        return self.worst_lane(line_rate_gbps).ber < target_ber
