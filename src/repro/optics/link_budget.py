"""Link-budget accounting for lightwave-fabric optical paths.

§3.2.1: "Optical link budget is a precious commodity for lightwave
fabrics".  A bidi path through the fabric accumulates loss from the
transmit circulator, fiber spans, the OCS (insertion loss below 3 dB by
specification), and the receive circulator; the budget closes when the
arriving power exceeds the receiver sensitivity with margin to spare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, LinkBudgetError
from repro.optics.circulator import Circulator
from repro.optics.fiber import FiberSpan
from repro.optics.transceiver import TransceiverSpec

#: Default engineering margin required on top of sensitivity, dB.
DEFAULT_REQUIRED_MARGIN_DB = 1.5


@dataclass(frozen=True)
class LossElement:
    """One named loss contribution along a path."""

    name: str
    loss_db: float

    def __post_init__(self) -> None:
        if self.loss_db < 0:
            raise ConfigurationError(f"{self.name}: loss must be non-negative dB")


@dataclass
class LinkBudget:
    """Accumulates losses along one optical path and closes the budget.

    Typical construction uses :meth:`for_fabric_path`, which assembles the
    canonical bidi-through-OCS path: TX circulator -> fiber -> OCS ->
    fiber -> RX circulator.
    """

    tx_power_dbm: float
    rx_sensitivity_dbm: float
    elements: List[LossElement] = field(default_factory=list)
    required_margin_db: float = DEFAULT_REQUIRED_MARGIN_DB

    def add(self, name: str, loss_db: float) -> "LinkBudget":
        """Append a loss element; returns self for chaining."""
        self.elements.append(LossElement(name, loss_db))
        return self

    @property
    def total_loss_db(self) -> float:
        return sum(e.loss_db for e in self.elements)

    @property
    def received_power_dbm(self) -> float:
        return self.tx_power_dbm - self.total_loss_db

    @property
    def margin_db(self) -> float:
        """Power above the receiver sensitivity."""
        return self.received_power_dbm - self.rx_sensitivity_dbm

    @property
    def closes(self) -> bool:
        """True when margin meets the required engineering margin."""
        return self.margin_db >= self.required_margin_db

    def require_closed(self) -> None:
        """Raise :class:`LinkBudgetError` if the budget does not close."""
        if not self.closes:
            raise LinkBudgetError(
                f"budget short by {self.required_margin_db - self.margin_db:.2f} dB: "
                f"rx {self.received_power_dbm:.2f} dBm vs sensitivity "
                f"{self.rx_sensitivity_dbm:.2f} dBm "
                f"(+{self.required_margin_db:.1f} dB margin)"
            )

    def breakdown(self) -> Tuple[Tuple[str, float], ...]:
        """Loss contributions as (name, dB) pairs, insertion order."""
        return tuple((e.name, e.loss_db) for e in self.elements)

    # ------------------------------------------------------------------ #
    # Canonical paths
    # ------------------------------------------------------------------ #

    @classmethod
    def for_fabric_path(
        cls,
        spec: TransceiverSpec,
        ocs_insertion_loss_db: float,
        fiber_spans: Sequence[FiberSpan] = (),
        circulator: Optional[Circulator] = None,
        num_ocs_hops: int = 1,
        required_margin_db: float = DEFAULT_REQUIRED_MARGIN_DB,
    ) -> "LinkBudget":
        """Build the budget for a transceiver pair linked through OCS hops.

        For a bidi module the path includes one circulator pass at each end
        (TX into the fiber, fiber into the RX); duplex modules skip them.
        """
        if num_ocs_hops < 0:
            raise ConfigurationError("OCS hop count must be non-negative")
        budget = cls(
            tx_power_dbm=spec.tx_power_dbm,
            rx_sensitivity_dbm=spec.rx_sensitivity_dbm,
            required_margin_db=required_margin_db,
        )
        if spec.bidi:
            circ = circulator or Circulator()
            budget.add("tx-circulator", circ.tx_to_fiber_db)
        for i, span in enumerate(fiber_spans):
            budget.add(f"fiber-{i}", span.total_loss_db)
        for hop in range(num_ocs_hops):
            budget.add(f"ocs-{hop}", ocs_insertion_loss_db)
        if spec.bidi:
            circ = circulator or Circulator()
            budget.add("rx-circulator", circ.fiber_to_rx_db)
        return budget

    def max_ocs_hops(self, ocs_insertion_loss_db: float) -> int:
        """How many additional OCS hops the remaining margin could absorb."""
        if ocs_insertion_loss_db <= 0:
            raise ConfigurationError("OCS loss must be positive")
        spare = self.margin_db - self.required_margin_db
        return max(0, int(spare // ocs_insertion_loss_db))
