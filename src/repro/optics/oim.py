"""Optical interference mitigation (OIM): the notch-filter DSP of §4.1.2.

The dominant MPI impairment on a bidi link is the carrier-to-carrier beat
between the signal and a delayed interferer copy.  Because the two carriers
are nearly co-frequency, the beat concentrates in a *narrow spectral band*
at their frequency offset.  The patented algorithm [Zhou et al., US10084547]
(1) estimates that offset by monitoring the received spectrum, (2)
reconstructs the beat tone digitally, and (3) removes it with a notch
filter centered on the offset.

Two views are provided:

- :class:`OimDsp` -- a behavioural model exposing the effective
  beat-amplitude suppression used by the BER engine, plus a working
  signal-path demonstration (:meth:`mitigate`) that runs an actual IIR
  notch filter over a synthetic sampled waveform.
- :func:`estimate_interferer_frequency` -- FFT-peak offset estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.signal import iirnotch, lfilter

from repro.core.errors import ConfigurationError

#: Default beat-power suppression achieved by the notch, dB.
DEFAULT_SUPPRESSION_DB = 12.0


def estimate_interferer_frequency(
    samples: np.ndarray, sample_rate_hz: float, min_offset_hz: float = 0.0
) -> float:
    """Locate the dominant narrow-band tone in a sampled waveform.

    Returns the frequency (Hz) of the largest FFT bin above ``min_offset_hz``
    after removing the DC/baseband bulk -- the digital-domain frequency-
    offset monitor of the OIM algorithm.
    """
    if samples.ndim != 1 or samples.size < 16:
        raise ConfigurationError("need a 1-D waveform of at least 16 samples")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    spectrum = np.abs(np.fft.rfft(samples - samples.mean()))
    freqs = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate_hz)
    mask = freqs >= max(min_offset_hz, freqs[1])
    if not mask.any():
        raise ConfigurationError("no spectral bins above the minimum offset")
    idx = int(np.argmax(np.where(mask, spectrum, 0.0)))
    return float(freqs[idx])


@dataclass(frozen=True)
class OimDsp:
    """The OIM block: notch-based beat removal.

    Args:
        suppression_db: beat-power suppression delivered to the slicer when
            enabled.  The BER engine converts this to an amplitude factor.
        notch_q: quality factor of the demonstration IIR notch.
        enabled: master switch (disabled = legacy receiver).
    """

    suppression_db: float = DEFAULT_SUPPRESSION_DB
    notch_q: float = 30.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.suppression_db < 0:
            raise ConfigurationError("suppression must be non-negative dB")
        if self.notch_q <= 0:
            raise ConfigurationError("notch Q must be positive")

    @property
    def effective_suppression_db(self) -> float:
        """Suppression seen by the BER model (0 when disabled)."""
        return self.suppression_db if self.enabled else 0.0

    def mitigate(
        self, samples: np.ndarray, sample_rate_hz: float
    ) -> Tuple[np.ndarray, float]:
        """Run the full signal-path algorithm on a sampled waveform.

        Estimates the interferer offset, centers an IIR notch there, and
        filters.  Returns ``(filtered_samples, estimated_offset_hz)``.
        When disabled the waveform passes through untouched.
        """
        if not self.enabled:
            return samples.copy(), 0.0
        offset_hz = estimate_interferer_frequency(samples, sample_rate_hz)
        nyquist = sample_rate_hz / 2.0
        if not 0.0 < offset_hz < nyquist:
            return samples.copy(), offset_hz
        b, a = iirnotch(offset_hz / nyquist, Q=self.notch_q)
        return lfilter(b, a, samples), offset_hz


def beat_tone_waveform(
    rng: np.random.Generator,
    num_samples: int,
    sample_rate_hz: float,
    tone_hz: float,
    tone_amplitude: float,
    noise_rms: float,
) -> np.ndarray:
    """Synthesize a received waveform: Gaussian noise plus a beat tone.

    Utility for OIM demonstrations and tests: the narrow-band beat rides on
    the broadband receiver noise exactly as in Fig 11's model.
    """
    if num_samples <= 0:
        raise ConfigurationError("need at least one sample")
    if tone_hz >= sample_rate_hz / 2.0:
        raise ConfigurationError("tone must sit below Nyquist")
    t = np.arange(num_samples) / sample_rate_hz
    phase = rng.uniform(0.0, 2.0 * math.pi)
    tone = tone_amplitude * np.cos(2.0 * math.pi * tone_hz * t + phase)
    return tone + rng.normal(0.0, noise_rms, size=num_samples)
