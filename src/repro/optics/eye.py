"""PAM4 eye-opening diagnostics.

Transceiver qualification (§4.1.2: "all corner cases in a high-
dimensional parameter space ... must be effectively resolved") screens
modules on eye margins, not just BER.  This module computes the three
PAM4 eye openings analytically from the same level/noise model the BER
engine uses, so an eye report and a BER number always agree.

The *eye height at confidence Q* between adjacent levels i and i+1 is::

    H_i = (L_{i+1} - L_i) - Q * (sigma_i + sigma_{i+1})

i.e. the vertical opening left after carving Q-sigma noise bands off
both rails.  ``Q = 3.54`` corresponds to the KP4 threshold of 2e-4: a
link whose smallest eye height is positive at that Q clears the
threshold, and the smallest-eye margin in dB tracks the receiver's
sensitivity margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.units import q_from_ber
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.pam4 import Pam4LinkModel


@dataclass(frozen=True)
class EyeReport:
    """The three PAM4 eye openings at one operating point."""

    rx_power_dbm: float
    q: float
    heights_w: Tuple[float, float, float]
    spacings_w: Tuple[float, float, float]

    @property
    def worst_eye_w(self) -> float:
        return min(self.heights_w)

    @property
    def open(self) -> bool:
        """All three eyes open at the report's confidence."""
        return self.worst_eye_w > 0.0

    @property
    def worst_closure_fraction(self) -> float:
        """Fraction of the worst eye's spacing consumed by noise."""
        idx = int(np.argmin(self.heights_w))
        spacing = self.spacings_w[idx]
        return 1.0 - self.heights_w[idx] / spacing if spacing > 0 else 1.0


def eye_report(
    model: Pam4LinkModel,
    rx_power_dbm: float,
    target_ber: float = KP4_BER_THRESHOLD,
) -> EyeReport:
    """Eye openings of ``model`` at ``rx_power_dbm`` and a BER-derived Q."""
    if not 0 < target_ber < 0.5:
        raise ConfigurationError("target BER must be in (0, 0.5)")
    q = q_from_ber(target_ber)
    levels = model.levels_w(rx_power_dbm)
    sigmas = model.level_sigmas_w(rx_power_dbm)
    heights: List[float] = []
    spacings: List[float] = []
    for i in range(3):
        spacing = float(levels[i + 1] - levels[i])
        height = spacing - q * float(sigmas[i] + sigmas[i + 1])
        spacings.append(spacing)
        heights.append(height)
    return EyeReport(
        rx_power_dbm=rx_power_dbm,
        q=q,
        heights_w=tuple(heights),  # type: ignore[arg-type]
        spacings_w=tuple(spacings),  # type: ignore[arg-type]
    )


def worst_eye_is_top(model: Pam4LinkModel, rx_power_dbm: float) -> bool:
    """With MPI, beat noise grows with level: the top eye closes first."""
    report = eye_report(model, rx_power_dbm)
    return int(np.argmin(report.heights_w)) == 2


def eye_margin_db(
    model: Pam4LinkModel,
    rx_power_dbm: float,
    target_ber: float = KP4_BER_THRESHOLD,
) -> float:
    """Optical margin until the worst eye closes, in dB.

    Found by bisecting the received power down to the eye-closure point;
    matches the sensitivity margin of the BER engine within the accuracy
    of the Q approximation.
    """
    report = eye_report(model, rx_power_dbm, target_ber)
    if not report.open:
        return 0.0
    lo, hi = rx_power_dbm - 30.0, rx_power_dbm
    for _ in range(50):
        mid = (lo + hi) / 2.0
        if eye_report(model, mid, target_ber).open:
            hi = mid
        else:
            lo = mid
    return rx_power_dbm - (lo + hi) / 2.0
