"""WDM wavelength grids: CWDM4 (20 nm) and CWDM8 (10 nm).

§3.3.1: within the same 80 nm spectral width as a standard CWDM4
transceiver, the ML-use-case transceiver increases the number of lanes from
4 to 8 by tightening the channel spacing from 20 nm to 10 nm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.errors import ConfigurationError
from repro.core.units import wavelength_nm_to_freq_thz


@dataclass(frozen=True)
class WavelengthChannel:
    """One WDM channel: center wavelength and allocated width."""

    center_nm: float
    width_nm: float

    def __post_init__(self) -> None:
        if self.center_nm <= 0 or self.width_nm <= 0:
            raise ConfigurationError("wavelength and width must be positive")

    @property
    def low_nm(self) -> float:
        return self.center_nm - self.width_nm / 2.0

    @property
    def high_nm(self) -> float:
        return self.center_nm + self.width_nm / 2.0

    @property
    def center_thz(self) -> float:
        return wavelength_nm_to_freq_thz(self.center_nm)

    def overlaps(self, other: "WavelengthChannel") -> bool:
        """True when the two channel bands intersect."""
        return self.low_nm < other.high_nm and other.low_nm < self.high_nm

    def __str__(self) -> str:
        return f"{self.center_nm:g}nm(±{self.width_nm / 2:g})"


@dataclass(frozen=True)
class WdmGrid:
    """A set of equally spaced WDM channels."""

    name: str
    first_center_nm: float
    spacing_nm: float
    num_channels: int

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ConfigurationError("grid needs at least one channel")
        if self.spacing_nm <= 0:
            raise ConfigurationError("spacing must be positive")

    def channel(self, index: int) -> WavelengthChannel:
        """The ``index``-th channel (0-based)."""
        if not 0 <= index < self.num_channels:
            raise ConfigurationError(
                f"{self.name}: channel {index} out of range [0, {self.num_channels})"
            )
        return WavelengthChannel(
            center_nm=self.first_center_nm + index * self.spacing_nm,
            width_nm=self.spacing_nm,
        )

    @property
    def channels(self) -> Tuple[WavelengthChannel, ...]:
        return tuple(self.channel(i) for i in range(self.num_channels))

    @property
    def span_nm(self) -> float:
        """Total spectral width from the lowest band edge to the highest."""
        return self.num_channels * self.spacing_nm

    def grid_compatible(self, other: "WdmGrid") -> bool:
        """True when every channel of the narrower grid sits inside one of ours.

        CWDM8's 10 nm channels nest on the CWDM4 grid: odd CWDM8 channels
        share CWDM4 centers.  Used for backward-compatibility checks.
        """
        fine, coarse = (self, other) if self.spacing_nm <= other.spacing_nm else (other, self)
        for ch in fine.channels:
            if not any(c.low_nm <= ch.center_nm <= c.high_nm for c in coarse.channels):
                return False
        return True

    def __iter__(self) -> Iterator[WavelengthChannel]:
        return iter(self.channels)


#: Standard CWDM4 grid: 1271/1291/1311/1331 nm on 20 nm spacing.
CWDM4_GRID = WdmGrid(name="CWDM4", first_center_nm=1271.0, spacing_nm=20.0, num_channels=4)

#: Custom CWDM8 grid: eight lanes on 10 nm spacing within the same 80 nm span.
CWDM8_GRID = WdmGrid(name="CWDM8", first_center_nm=1271.0, spacing_nm=10.0, num_channels=8)
