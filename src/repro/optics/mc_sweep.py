"""Monte-Carlo PAM4 BER grids over the sweep engine (Fig 11a).

The Fig 11a validation runs :meth:`Pam4LinkModel.monte_carlo_ber` at
every received-power point -- hundreds of thousands of simulated symbols
per point, embarrassingly parallel across the grid.  This module fans
the grid out through :class:`~repro.parallel.SweepEngine`:

- each grid point is one task carrying the full model spec (so results
  are content-addressable -- rerunning a grid after a parameter tweak
  recomputes only what changed);
- per-point RNG streams come from the engine's positional seed
  splitting, so the grid is bit-identical for any worker count;
- :func:`monte_carlo_ber_grid_serial` is the plain-loop oracle using the
  same :meth:`~repro.parallel.SweepEngine.task_seeds` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.optics.pam4 import Pam4LinkModel
from repro.parallel import SweepEngine


@dataclass(frozen=True)
class McBerTask:
    """One Monte-Carlo grid point: a model spec plus a power and budget."""

    rx_power_dbm: float
    num_symbols: int
    mpi_db: Optional[float]
    oim_suppression_db: float
    thermal_noise_w: float
    equalizer_enhancement: float


def _mc_ber_point(task: McBerTask, seed: np.random.SeedSequence) -> float:
    """Worker: rebuild the model and run one Monte-Carlo BER estimate."""
    model = Pam4LinkModel(
        mpi_db=task.mpi_db,
        oim_suppression_db=task.oim_suppression_db,
        thermal_noise_w=task.thermal_noise_w,
        equalizer_enhancement=task.equalizer_enhancement,
    )
    # ``monte_carlo_ber`` feeds its seed straight to ``default_rng``,
    # which accepts a SeedSequence -- the stream is the child's.
    return model.monte_carlo_ber(
        task.rx_power_dbm, num_symbols=task.num_symbols, seed=seed
    )


def _grid_tasks(
    model: Pam4LinkModel, rx_powers_dbm, num_symbols: int
) -> list:
    return [
        McBerTask(
            rx_power_dbm=float(p),
            num_symbols=int(num_symbols),
            mpi_db=model.mpi_db,
            oim_suppression_db=model.oim_suppression_db,
            thermal_noise_w=model.thermal_noise_w,
            equalizer_enhancement=model.equalizer_enhancement,
        )
        for p in np.asarray(rx_powers_dbm, dtype=float)
    ]


def monte_carlo_ber_grid(
    model: Pam4LinkModel,
    rx_powers_dbm,
    num_symbols: int = 200_000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
    cache_tag: Optional[str] = "optics.mc_ber",
) -> np.ndarray:
    """Monte-Carlo BER at every power point, fanned out over the engine.

    Returns an array aligned with ``rx_powers_dbm``.  Bit-identical to
    :func:`monte_carlo_ber_grid_serial` for any engine configuration.
    """
    engine = engine if engine is not None else SweepEngine(workers=1)
    tasks = _grid_tasks(model, rx_powers_dbm, num_symbols)
    tag = cache_tag if engine.cache is not None else None
    return np.array(engine.pmap(_mc_ber_point, tasks, seed=seed, cache_tag=tag))


def monte_carlo_ber_grid_serial(
    model: Pam4LinkModel,
    rx_powers_dbm,
    num_symbols: int = 200_000,
    seed: int = 0,
) -> np.ndarray:
    """The plain-loop oracle: same seed-splitting, no engine, no cache."""
    tasks = _grid_tasks(model, rx_powers_dbm, num_symbols)
    seeds = SweepEngine.task_seeds(seed, len(tasks))
    return np.array([_mc_ber_point(t, s) for t, s in zip(tasks, seeds)])
