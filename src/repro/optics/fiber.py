"""Fiber plant: attenuation, connectors/splices, and chromatic dispersion.

Intra-datacenter reaches are short (tens to hundreds of meters), so fiber
attenuation is small, but §3.3.1 notes that operating CWDM4/CWDM8 lanes
across an 80 nm window makes *chromatic dispersion* an issue above
100 Gb/s: the outer lanes sit tens of nm from the G.652 zero-dispersion
wavelength.  The model computes dispersion at a wavelength from the
standard Sellmeier-slope form and converts it into a power penalty for a
given symbol rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.units import fiber_latency_ns

#: Attenuation of standard single-mode fiber near 1310 nm, dB/km.
ATTENUATION_DB_PER_KM = 0.35

#: Zero-dispersion wavelength of G.652 fiber, nm.
ZERO_DISPERSION_NM = 1310.0

#: Dispersion slope at the zero-dispersion wavelength, ps/(nm^2*km).
DISPERSION_SLOPE_PS_NM2_KM = 0.092

#: Loss per mated connector pair, dB.
CONNECTOR_LOSS_DB = 0.3

#: Loss per fusion splice, dB.
SPLICE_LOSS_DB = 0.05


def dispersion_ps_per_nm_km(wavelength_nm: float) -> float:
    """Chromatic dispersion D(λ) for G.652 fiber, ps/(nm*km).

    Uses the standard approximation
    ``D(λ) = S0/4 * (λ - λ0^4/λ^3)`` with S0 the zero-dispersion slope.
    """
    if wavelength_nm <= 0:
        raise ConfigurationError("wavelength must be positive")
    lam = wavelength_nm
    lam0 = ZERO_DISPERSION_NM
    return DISPERSION_SLOPE_PS_NM2_KM / 4.0 * (lam - lam0 ** 4 / lam ** 3)


@dataclass(frozen=True)
class FiberSpan:
    """One fiber span with its terminations.

    Args:
        length_m: span length in meters.
        connectors: mated connector pairs along the span (>= 2 for a
            patched link).
        splices: fusion splices along the span.
    """

    length_m: float
    connectors: int = 2
    splices: int = 0

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ConfigurationError("length must be non-negative")
        if self.connectors < 0 or self.splices < 0:
            raise ConfigurationError("connector/splice counts must be non-negative")

    @property
    def attenuation_db(self) -> float:
        """Distributed fiber attenuation over the span."""
        return ATTENUATION_DB_PER_KM * self.length_m / 1000.0

    @property
    def termination_loss_db(self) -> float:
        """Lumped connector and splice losses."""
        return self.connectors * CONNECTOR_LOSS_DB + self.splices * SPLICE_LOSS_DB

    @property
    def total_loss_db(self) -> float:
        return self.attenuation_db + self.termination_loss_db

    @property
    def latency_ns(self) -> float:
        """One-way propagation latency."""
        return fiber_latency_ns(self.length_m)

    def accumulated_dispersion_ps_per_nm(self, wavelength_nm: float) -> float:
        """Total dispersion over the span at ``wavelength_nm``, ps/nm."""
        return dispersion_ps_per_nm_km(wavelength_nm) * self.length_m / 1000.0

    def dispersion_penalty_db(
        self,
        wavelength_nm: float,
        symbol_rate_gbaud: float,
        laser_linewidth_nm: float = 0.4,
    ) -> float:
        """Chromatic-dispersion power penalty, dB.

        The pulse spread is ``Δt = |D|·L·Δλ`` with Δλ the modulated source
        spectral width.  The penalty follows the standard intersymbol-
        interference form ``-5*log10(1 - (2·Δt/T)^2)`` for spread below half
        a symbol period ``T``, and is treated as a link-closing failure
        (large penalty) beyond that.  MLSE equalization (§3.3.1) can be
        modelled by the caller reducing the effective spread.
        """
        if symbol_rate_gbaud <= 0:
            raise ConfigurationError("symbol rate must be positive")
        spread_ps = abs(self.accumulated_dispersion_ps_per_nm(wavelength_nm)) * laser_linewidth_nm
        period_ps = 1000.0 / symbol_rate_gbaud
        x = 2.0 * spread_ps / period_ps
        if x >= 1.0:
            return float("inf")
        return -5.0 * math.log10(1.0 - x * x)
