"""The link BER engine: sensitivity solving and Fig 11/12 curve generation.

Ties together the PAM4 slicer model, the OIM DSP, and the FEC chain:

- :func:`receiver_sensitivity_dbm` -- minimum received power achieving a
  target slicer BER (vectorized bisection over the analytic PAM4 model,
  LRU-cached for the repeated solves in fleet/qualification paths).
- :func:`receiver_sensitivity_batch` -- the same solve over many
  (model, target) pairs simultaneously.
- :class:`BerCurve` -- a sampled BER-vs-power waterfall with
  interpolation helpers.
- :class:`LinkBerSimulator` -- produces the paper's evaluation curves:
  Fig 11 (MPI sweep with and without OIM) and Fig 12 (sensitivity gain
  from the concatenated soft FEC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.optics.fec import (
    KP4_BER_THRESHOLD,
    ConcatenatedFec,
    kp4_channel_threshold,
)
from repro.optics.oim import OimDsp
from repro.optics.pam4 import DEFAULT_THERMAL_NOISE_W, Pam4LinkModel, ber_batch

#: Bisection steps used by every sensitivity solve (scalar and batch).
_BISECTION_STEPS = 60

#: Cached (model, target, bracket) -> sensitivity solves.  Fleet
#: qualification sweeps re-solve identical pairs thousands of times;
#: ``Pam4LinkModel`` is frozen/hashable so the pair is a perfect key.
_SENSITIVITY_CACHE_SIZE = 4096


def _model_params(
    models: Sequence[Pam4LinkModel],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack model parameters into arrays (``nan`` marks no-MPI)."""
    mpi = np.array(
        [float("nan") if m.mpi_db is None else m.mpi_db for m in models], dtype=float
    )
    thermal = np.array([m.thermal_noise_w for m in models], dtype=float)
    suppression = np.array([m.oim_suppression_db for m in models], dtype=float)
    eq = np.array([m.equalizer_enhancement for m in models], dtype=float)
    return mpi, thermal, suppression, eq


def receiver_sensitivity_batch(
    models: Sequence[Pam4LinkModel],
    target_bers: "np.typing.ArrayLike" = KP4_BER_THRESHOLD,
    lo_dbm: float = -25.0,
    hi_dbm: float = 5.0,
) -> np.ndarray:
    """Solve many (model, target) sensitivity pairs in one bisection.

    All pairs advance through the same :data:`_BISECTION_STEPS` bisection
    iterations simultaneously, each BER evaluation a single
    :func:`~repro.optics.pam4.ber_batch` pass over every still-open
    bracket.  Semantics match :func:`receiver_sensitivity_dbm` pairwise:
    unreachable targets (MPI-induced BER floor above the target) raise,
    and targets already met at ``lo_dbm`` return ``lo_dbm``.

    Args:
        models: the PAM4 link models to solve.
        target_bers: scalar or per-model array of target slicer BERs.

    Returns:
        Sensitivities in dBm, shape ``(len(models),)``.
    """
    if len(models) == 0:
        return np.empty(0)
    targets = np.broadcast_to(
        np.asarray(target_bers, dtype=float), (len(models),)
    ).copy()
    if np.any((targets <= 0.0) | (targets >= 0.5)):
        raise ConfigurationError("target BER must be in (0, 0.5)")
    mpi, thermal, suppression, eq = _model_params(models)

    floor = ber_batch(hi_dbm, mpi, thermal, suppression, eq)
    bad = floor > targets
    if np.any(bad):
        i = int(np.argmax(bad))
        raise ConfigurationError(
            f"BER floor {floor[i]:.2e} above target {targets[i]:.2e}: "
            "link cannot reach the target at any power"
        )
    at_lo = ber_batch(lo_dbm, mpi, thermal, suppression, eq) < targets

    lo = np.full(len(models), lo_dbm)
    hi = np.full(len(models), hi_dbm)
    for _ in range(_BISECTION_STEPS):
        mid = (lo + hi) / 2.0
        too_high = ber_batch(mid, mpi, thermal, suppression, eq) > targets
        lo = np.where(too_high, mid, lo)
        hi = np.where(too_high, hi, mid)
    return np.where(at_lo, lo_dbm, (lo + hi) / 2.0)


def receiver_sensitivity_reference(
    model: Pam4LinkModel,
    target_ber: float = KP4_BER_THRESHOLD,
    lo_dbm: float = -25.0,
    hi_dbm: float = 5.0,
) -> float:
    """Scalar-oracle sensitivity solve: one :meth:`Pam4LinkModel.ber` call
    per bisection step.

    This is the original implementation, kept as the reference the
    vectorized/cached :func:`receiver_sensitivity_dbm` is property-tested
    and benchmarked against.
    """
    if not 0.0 < target_ber < 0.5:
        raise ConfigurationError("target BER must be in (0, 0.5)")
    if model.ber(hi_dbm) > target_ber:
        raise ConfigurationError(
            f"BER floor {model.ber(hi_dbm):.2e} above target {target_ber:.2e}: "
            "link cannot reach the target at any power"
        )
    if model.ber(lo_dbm) < target_ber:
        return lo_dbm
    lo, hi = lo_dbm, hi_dbm
    for _ in range(_BISECTION_STEPS):
        mid = (lo + hi) / 2.0
        if model.ber(mid) > target_ber:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@lru_cache(maxsize=_SENSITIVITY_CACHE_SIZE)
def _sensitivity_cached(
    model: Pam4LinkModel, target_ber: float, lo_dbm: float, hi_dbm: float
) -> float:
    return float(
        receiver_sensitivity_batch([model], target_ber, lo_dbm, hi_dbm)[0]
    )


def receiver_sensitivity_dbm(
    model: Pam4LinkModel,
    target_ber: float = KP4_BER_THRESHOLD,
    lo_dbm: float = -25.0,
    hi_dbm: float = 5.0,
) -> float:
    """Received power at which the slicer BER equals ``target_ber``.

    BER decreases monotonically with power; solved by bisection on the
    vectorized kernel and LRU-cached on the (frozen, hashable) model and
    target -- fleet and qualification paths re-solve the same pairs
    constantly.  Raises when the target is unreachable inside the bracket
    (e.g. an MPI-induced BER floor above the target).
    """
    return _sensitivity_cached(model, float(target_ber), float(lo_dbm), float(hi_dbm))


@dataclass(frozen=True)
class BerCurve:
    """A sampled BER-vs-received-power waterfall."""

    label: str
    rx_powers_dbm: np.ndarray
    bers: np.ndarray

    def __post_init__(self) -> None:
        if self.rx_powers_dbm.shape != self.bers.shape:
            raise ConfigurationError("power and BER arrays must match in shape")
        if self.rx_powers_dbm.size < 2:
            raise ConfigurationError("curve needs at least two samples")

    def power_at_ber(self, target_ber: float) -> float:
        """Interpolate the received power where the curve crosses a BER.

        Interpolates log10(BER) against power; raises when the curve never
        reaches the target.
        """
        logs = np.log10(np.maximum(self.bers, 1e-30))
        target = np.log10(target_ber)
        if logs.min() > target:
            raise ConfigurationError(
                f"{self.label}: curve floor {10 ** logs.min():.2e} above target"
            )
        # BER is non-increasing in power, so log-BER sorted by power is
        # monotone non-increasing: the first sample at or below the target
        # is found by searchsorted on the negated (non-decreasing) samples.
        order = np.argsort(self.rx_powers_dbm)
        powers, logs = self.rx_powers_dbm[order], logs[order]
        k = int(np.searchsorted(-logs, -target, side="left"))
        if k == 0:
            return float(powers[0])
        if k == len(logs):
            # Non-monotone data can leave the floor check satisfied while
            # no sorted sample sits below the target; mirror the old
            # scan's fallback.
            return float(powers[0] if logs[0] <= target else powers[-1])
        i = k - 1
        frac = (logs[i] - target) / (logs[i] - logs[i + 1])
        return float(powers[i] + frac * (powers[i + 1] - powers[i]))


@dataclass
class LinkBerSimulator:
    """Generates the Fig 11 / Fig 12 evaluation curves for one PAM4 lane."""

    oim: OimDsp = field(default_factory=OimDsp)
    fec: ConcatenatedFec = field(default_factory=ConcatenatedFec)
    thermal_noise_w: float = DEFAULT_THERMAL_NOISE_W

    def _model(self, mpi_db: Optional[float], oim_on: bool) -> Pam4LinkModel:
        return Pam4LinkModel(
            mpi_db=mpi_db,
            oim_suppression_db=self.oim.effective_suppression_db if oim_on else 0.0,
            thermal_noise_w=self.thermal_noise_w,
        )

    # ------------------------------------------------------------------ #
    # Fig 11: MPI sweep with / without OIM
    # ------------------------------------------------------------------ #

    def mpi_sweep(
        self,
        mpi_levels_db: Sequence[Optional[float]] = (None, -35.0, -32.0, -29.0),
        rx_powers_dbm: Optional[np.ndarray] = None,
        monte_carlo: bool = False,
        num_symbols: int = 100_000,
    ) -> Dict[Tuple[Optional[float], bool], BerCurve]:
        """BER waterfalls for each MPI level, with OIM off and on.

        Returns ``{(mpi_db, oim_on): BerCurve}``.  ``monte_carlo=True``
        samples symbols instead of using the analytic expression
        (Fig 11a's "BER: Monte Carlo").
        """
        powers = (
            np.linspace(-14.0, -6.0, 17) if rx_powers_dbm is None else rx_powers_dbm
        )
        curves: Dict[Tuple[Optional[float], bool], BerCurve] = {}
        if not monte_carlo:
            # The whole (mpi level, oim state, power) grid is one
            # broadcastable ber_batch evaluation: shape (n_mpi, 2, n_pow).
            mpi_grid = np.array(
                [float("nan") if m is None else m for m in mpi_levels_db], dtype=float
            )
            suppression = np.array([0.0, self.oim.effective_suppression_db])
            grid = ber_batch(
                np.asarray(powers, dtype=float)[np.newaxis, np.newaxis, :],
                mpi_db=mpi_grid[:, np.newaxis, np.newaxis],
                thermal_noise_w=self.thermal_noise_w,
                oim_suppression_db=suppression[np.newaxis, :, np.newaxis],
            )
        for mi, mpi_db in enumerate(mpi_levels_db):
            for oi, oim_on in enumerate((False, True)):
                if monte_carlo:
                    model = self._model(mpi_db, oim_on)
                    bers = np.array(
                        [
                            model.monte_carlo_ber(float(p), num_symbols, seed=17)
                            for p in powers
                        ]
                    )
                else:
                    bers = grid[mi, oi]
                label = (
                    f"MPI={'off' if mpi_db is None else f'{mpi_db:g}dB'}, "
                    f"OIM={'on' if oim_on else 'off'}"
                )
                curves[(mpi_db, oim_on)] = BerCurve(label, powers, bers)
        return curves

    def oim_sensitivity_gain_db(
        self, mpi_db: float = -32.0, target_ber: float = KP4_BER_THRESHOLD
    ) -> float:
        """Receiver-sensitivity improvement from enabling OIM (Fig 11).

        Paper: >1 dB at MPI = -32 dB and BER 2e-4.
        """
        without = receiver_sensitivity_dbm(self._model(mpi_db, False), target_ber)
        with_oim = receiver_sensitivity_dbm(self._model(mpi_db, True), target_ber)
        return without - with_oim

    # ------------------------------------------------------------------ #
    # Fig 12: concatenated soft FEC gain (no OIM)
    # ------------------------------------------------------------------ #

    def sfec_sensitivity_gain_db(
        self, mpi_db: Optional[float] = -32.0
    ) -> float:
        """Sensitivity gain from the inner soft FEC at the KP4 threshold.

        Without the inner code the slicer must reach BER 2e-4; with it the
        slicer only needs the (much higher) inner-input threshold.  The
        difference in required received power is the Fig 12 gain
        (paper: 1.6 dB at MPI = -32 dB).
        """
        model = self._model(mpi_db, oim_on=False)
        plain = receiver_sensitivity_dbm(model, KP4_BER_THRESHOLD)
        relaxed_threshold = self.fec.inner_input_threshold()
        concatenated = receiver_sensitivity_dbm(model, relaxed_threshold)
        return plain - concatenated

    def sfec_curves(
        self,
        mpi_levels_db: Sequence[Optional[float]] = (-36.0, -32.0),
        rx_powers_dbm: Optional[np.ndarray] = None,
    ) -> Dict[Tuple[Optional[float], bool], BerCurve]:
        """Fig 12's curves: slicer BER vs power, ± inner SFEC (post-inner).

        For the "with SFEC" curves the plotted quantity is the BER
        presented to the KP4 outer code after inner decoding.
        """
        powers = (
            np.linspace(-15.0, -7.0, 17) if rx_powers_dbm is None else rx_powers_dbm
        )
        out: Dict[Tuple[Optional[float], bool], BerCurve] = {}
        for mpi_db in mpi_levels_db:
            model = self._model(mpi_db, oim_on=False)
            raw = model.ber_curve(powers)
            out[(mpi_db, False)] = BerCurve(f"MPI={mpi_db}, no SFEC", powers, raw)
            inner = self.fec.inner.output_ber_batch(np.minimum(raw, 0.5))
            out[(mpi_db, True)] = BerCurve(f"MPI={mpi_db}, SFEC", powers, inner)
        return out

    # ------------------------------------------------------------------ #
    # End-to-end margin
    # ------------------------------------------------------------------ #

    def ber_margin_decades(
        self, rx_power_dbm: float, mpi_db: Optional[float]
    ) -> float:
        """Orders of magnitude between the operating pre-FEC BER (OIM on)
        and the KP4 threshold.  Fig 13 shows ~2 decades in production."""
        ber = self._model(mpi_db, oim_on=True).ber(rx_power_dbm)
        if ber <= 0.0:
            return float("inf")
        return float(np.log10(KP4_BER_THRESHOLD) - np.log10(ber))
