"""The link BER engine: sensitivity solving and Fig 11/12 curve generation.

Ties together the PAM4 slicer model, the OIM DSP, and the FEC chain:

- :func:`receiver_sensitivity_dbm` -- minimum received power achieving a
  target slicer BER (bisection over the analytic PAM4 model).
- :class:`BerCurve` -- a sampled BER-vs-power waterfall with
  interpolation helpers.
- :class:`LinkBerSimulator` -- produces the paper's evaluation curves:
  Fig 11 (MPI sweep with and without OIM) and Fig 12 (sensitivity gain
  from the concatenated soft FEC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.optics.fec import (
    KP4_BER_THRESHOLD,
    ConcatenatedFec,
    kp4_channel_threshold,
)
from repro.optics.oim import OimDsp
from repro.optics.pam4 import DEFAULT_THERMAL_NOISE_W, Pam4LinkModel


def receiver_sensitivity_dbm(
    model: Pam4LinkModel,
    target_ber: float = KP4_BER_THRESHOLD,
    lo_dbm: float = -25.0,
    hi_dbm: float = 5.0,
) -> float:
    """Received power at which the slicer BER equals ``target_ber``.

    BER decreases monotonically with power; solved by bisection.  Raises
    when the target is unreachable inside the bracket (e.g. an MPI-induced
    BER floor above the target).
    """
    if not 0.0 < target_ber < 0.5:
        raise ConfigurationError("target BER must be in (0, 0.5)")
    if model.ber(hi_dbm) > target_ber:
        raise ConfigurationError(
            f"BER floor {model.ber(hi_dbm):.2e} above target {target_ber:.2e}: "
            "link cannot reach the target at any power"
        )
    if model.ber(lo_dbm) < target_ber:
        return lo_dbm
    lo, hi = lo_dbm, hi_dbm
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if model.ber(mid) > target_ber:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class BerCurve:
    """A sampled BER-vs-received-power waterfall."""

    label: str
    rx_powers_dbm: np.ndarray
    bers: np.ndarray

    def __post_init__(self) -> None:
        if self.rx_powers_dbm.shape != self.bers.shape:
            raise ConfigurationError("power and BER arrays must match in shape")
        if self.rx_powers_dbm.size < 2:
            raise ConfigurationError("curve needs at least two samples")

    def power_at_ber(self, target_ber: float) -> float:
        """Interpolate the received power where the curve crosses a BER.

        Interpolates log10(BER) against power; raises when the curve never
        reaches the target.
        """
        logs = np.log10(np.maximum(self.bers, 1e-30))
        target = np.log10(target_ber)
        if logs.min() > target:
            raise ConfigurationError(
                f"{self.label}: curve floor {10 ** logs.min():.2e} above target"
            )
        # BER is non-increasing in power; find the first crossing.
        order = np.argsort(self.rx_powers_dbm)
        powers, logs = self.rx_powers_dbm[order], logs[order]
        for i in range(len(powers) - 1):
            if logs[i] >= target >= logs[i + 1]:
                frac = (logs[i] - target) / (logs[i] - logs[i + 1])
                return float(powers[i] + frac * (powers[i + 1] - powers[i]))
        return float(powers[0] if logs[0] <= target else powers[-1])


@dataclass
class LinkBerSimulator:
    """Generates the Fig 11 / Fig 12 evaluation curves for one PAM4 lane."""

    oim: OimDsp = field(default_factory=OimDsp)
    fec: ConcatenatedFec = field(default_factory=ConcatenatedFec)
    thermal_noise_w: float = DEFAULT_THERMAL_NOISE_W

    def _model(self, mpi_db: Optional[float], oim_on: bool) -> Pam4LinkModel:
        return Pam4LinkModel(
            mpi_db=mpi_db,
            oim_suppression_db=self.oim.effective_suppression_db if oim_on else 0.0,
            thermal_noise_w=self.thermal_noise_w,
        )

    # ------------------------------------------------------------------ #
    # Fig 11: MPI sweep with / without OIM
    # ------------------------------------------------------------------ #

    def mpi_sweep(
        self,
        mpi_levels_db: Sequence[Optional[float]] = (None, -35.0, -32.0, -29.0),
        rx_powers_dbm: Optional[np.ndarray] = None,
        monte_carlo: bool = False,
        num_symbols: int = 100_000,
    ) -> Dict[Tuple[Optional[float], bool], BerCurve]:
        """BER waterfalls for each MPI level, with OIM off and on.

        Returns ``{(mpi_db, oim_on): BerCurve}``.  ``monte_carlo=True``
        samples symbols instead of using the analytic expression
        (Fig 11a's "BER: Monte Carlo").
        """
        powers = (
            np.linspace(-14.0, -6.0, 17) if rx_powers_dbm is None else rx_powers_dbm
        )
        curves: Dict[Tuple[Optional[float], bool], BerCurve] = {}
        for mpi_db in mpi_levels_db:
            for oim_on in (False, True):
                model = self._model(mpi_db, oim_on)
                if monte_carlo:
                    bers = np.array(
                        [
                            model.monte_carlo_ber(float(p), num_symbols, seed=17)
                            for p in powers
                        ]
                    )
                else:
                    bers = model.ber_curve(powers)
                label = (
                    f"MPI={'off' if mpi_db is None else f'{mpi_db:g}dB'}, "
                    f"OIM={'on' if oim_on else 'off'}"
                )
                curves[(mpi_db, oim_on)] = BerCurve(label, powers, bers)
        return curves

    def oim_sensitivity_gain_db(
        self, mpi_db: float = -32.0, target_ber: float = KP4_BER_THRESHOLD
    ) -> float:
        """Receiver-sensitivity improvement from enabling OIM (Fig 11).

        Paper: >1 dB at MPI = -32 dB and BER 2e-4.
        """
        without = receiver_sensitivity_dbm(self._model(mpi_db, False), target_ber)
        with_oim = receiver_sensitivity_dbm(self._model(mpi_db, True), target_ber)
        return without - with_oim

    # ------------------------------------------------------------------ #
    # Fig 12: concatenated soft FEC gain (no OIM)
    # ------------------------------------------------------------------ #

    def sfec_sensitivity_gain_db(
        self, mpi_db: Optional[float] = -32.0
    ) -> float:
        """Sensitivity gain from the inner soft FEC at the KP4 threshold.

        Without the inner code the slicer must reach BER 2e-4; with it the
        slicer only needs the (much higher) inner-input threshold.  The
        difference in required received power is the Fig 12 gain
        (paper: 1.6 dB at MPI = -32 dB).
        """
        model = self._model(mpi_db, oim_on=False)
        plain = receiver_sensitivity_dbm(model, KP4_BER_THRESHOLD)
        relaxed_threshold = self.fec.inner_input_threshold()
        concatenated = receiver_sensitivity_dbm(model, relaxed_threshold)
        return plain - concatenated

    def sfec_curves(
        self,
        mpi_levels_db: Sequence[Optional[float]] = (-36.0, -32.0),
        rx_powers_dbm: Optional[np.ndarray] = None,
    ) -> Dict[Tuple[Optional[float], bool], BerCurve]:
        """Fig 12's curves: slicer BER vs power, ± inner SFEC (post-inner).

        For the "with SFEC" curves the plotted quantity is the BER
        presented to the KP4 outer code after inner decoding.
        """
        powers = (
            np.linspace(-15.0, -7.0, 17) if rx_powers_dbm is None else rx_powers_dbm
        )
        out: Dict[Tuple[Optional[float], bool], BerCurve] = {}
        for mpi_db in mpi_levels_db:
            model = self._model(mpi_db, oim_on=False)
            raw = model.ber_curve(powers)
            out[(mpi_db, False)] = BerCurve(f"MPI={mpi_db}, no SFEC", powers, raw)
            inner = np.array([self.fec.inner.output_ber(min(b, 0.5)) for b in raw])
            out[(mpi_db, True)] = BerCurve(f"MPI={mpi_db}, SFEC", powers, inner)
        return out

    # ------------------------------------------------------------------ #
    # End-to-end margin
    # ------------------------------------------------------------------ #

    def ber_margin_decades(
        self, rx_power_dbm: float, mpi_db: Optional[float]
    ) -> float:
        """Orders of magnitude between the operating pre-FEC BER (OIM on)
        and the KP4 threshold.  Fig 13 shows ~2 decades in production."""
        ber = self._model(mpi_db, oim_on=True).ber(rx_power_dbm)
        if ber <= 0.0:
            return float("inf")
        return float(np.log10(KP4_BER_THRESHOLD) - np.log10(ber))
