"""Transceiver generations: the WDM interconnect roadmap (Fig 8, Fig 9).

Encodes the datacenter WDM roadmap from 40 Gb/s QSFP+ to 800 Gb/s OSFP and
the custom bidirectional modules built for the lightwave fabrics:

- DCN bidi: CWDM4, 20 nm spacing, duplex->bidi via circulators.
- ML bidi 2x400G: two CWDM4 transceiver pairs with two integrated
  circulators (Fig 9 top).
- ML bidi 800G: one CWDM8 engine (8 lanes x 10 nm) behind a single
  integrated circulator (Fig 9 bottom).

Backward compatibility (§3.3.1) is modelled through per-module supported
line rates: a new-generation module must interoperate with older ones by
dropping to a common rate on a compatible wavelength grid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.optics.wavelength import CWDM4_GRID, CWDM8_GRID, WdmGrid


class FormFactor(enum.Enum):
    QSFP_PLUS = "QSFP+"
    QSFP28 = "QSFP28"
    QSFP56 = "QSFP56"
    OSFP = "OSFP"


class Modulation(enum.Enum):
    NRZ = "NRZ"
    PAM4 = "PAM4"


@dataclass(frozen=True)
class TransceiverSpec:
    """One transceiver product generation.

    ``line_rates_gbps`` lists the per-lane rates the module's programmable
    DSP supports (newest first); backward compatibility comes from the
    intersection of these lists.  ``bidi`` modules integrate
    ``num_circulators`` circulators and use one fiber strand per link.
    """

    name: str
    form_factor: FormFactor
    grid: WdmGrid
    lanes: int
    line_rates_gbps: Tuple[float, ...]
    modulation: Modulation
    bidi: bool = False
    num_circulators: int = 0
    tx_power_dbm: float = 1.0
    rx_sensitivity_dbm: float = -11.0
    power_w: float = 3.5
    year: int = 2015

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ConfigurationError("lanes must be positive")
        if not self.line_rates_gbps:
            raise ConfigurationError("at least one line rate required")
        if any(r <= 0 for r in self.line_rates_gbps):
            raise ConfigurationError("line rates must be positive")
        if self.bidi and self.num_circulators <= 0:
            raise ConfigurationError("bidi module needs at least one circulator")
        if not self.bidi and self.num_circulators:
            raise ConfigurationError("duplex module cannot have circulators")
        if self.lanes > self.grid.num_channels * (2 if not self.bidi else 2):
            # Each WDM channel can carry one lane per direction per strand.
            raise ConfigurationError(
                f"{self.name}: {self.lanes} lanes exceed grid capacity"
            )

    @property
    def max_rate_gbps(self) -> float:
        """Aggregate module bandwidth at the top line rate."""
        return self.lanes * max(self.line_rates_gbps)

    @property
    def fibers_per_module(self) -> int:
        """Fiber strands the module drives.

        A duplex module needs a TX and an RX strand per engine; a bidi
        module needs one strand per engine (both directions share it).
        """
        engines = max(1, self.lanes // self.grid.num_channels)
        return engines if self.bidi else 2 * engines

    @property
    def ocs_ports_per_module(self) -> int:
        """OCS duplex circuits consumed when routed through a lightwave fabric."""
        return self.fibers_per_module

    @property
    def energy_pj_per_bit(self) -> float:
        """Energy efficiency at the top rate, picojoules/bit."""
        return self.power_w / (self.max_rate_gbps * 1e9) * 1e12

    def common_rate_gbps(self, other: "TransceiverSpec") -> Optional[float]:
        """Highest per-lane rate both modules support, or None."""
        common = set(self.line_rates_gbps) & set(other.line_rates_gbps)
        return max(common) if common else None


def interoperable(a: TransceiverSpec, b: TransceiverSpec) -> bool:
    """Can the two modules form a link (§3.3.1 backward compatibility)?

    They must share a line rate, have nesting wavelength grids, and agree
    on strand topology (bidi to bidi, duplex to duplex).
    """
    if a.common_rate_gbps(b) is None:
        return False
    if not a.grid.grid_compatible(b.grid):
        return False
    return a.bidi == b.bidi


#: The roadmap of Fig 8 plus the custom bidi modules of Fig 9.
TRANSCEIVER_GENERATIONS: Dict[str, TransceiverSpec] = {
    "qsfp_40g": TransceiverSpec(
        name="40G QSFP+ CWDM4",
        form_factor=FormFactor.QSFP_PLUS,
        grid=CWDM4_GRID,
        lanes=4,
        line_rates_gbps=(10.0,),
        modulation=Modulation.NRZ,
        tx_power_dbm=2.0,
        rx_sensitivity_dbm=-14.0,
        power_w=3.5,
        year=2014,
    ),
    "qsfp28_100g": TransceiverSpec(
        name="100G QSFP28 CWDM4",
        form_factor=FormFactor.QSFP28,
        grid=CWDM4_GRID,
        lanes=4,
        line_rates_gbps=(25.0, 10.0),
        modulation=Modulation.NRZ,
        tx_power_dbm=1.5,
        rx_sensitivity_dbm=-12.5,
        power_w=3.5,
        year=2016,
    ),
    "qsfp56_200g": TransceiverSpec(
        name="200G QSFP56 CWDM4",
        form_factor=FormFactor.QSFP56,
        grid=CWDM4_GRID,
        lanes=4,
        line_rates_gbps=(50.0, 25.0),
        modulation=Modulation.PAM4,
        tx_power_dbm=1.5,
        rx_sensitivity_dbm=-11.5,
        power_w=4.5,
        year=2018,
    ),
    "osfp_400g": TransceiverSpec(
        name="400G OSFP CWDM4",
        form_factor=FormFactor.OSFP,
        grid=CWDM4_GRID,
        lanes=4,
        line_rates_gbps=(100.0, 50.0, 25.0),
        modulation=Modulation.PAM4,
        tx_power_dbm=2.0,
        rx_sensitivity_dbm=-10.5,
        power_w=9.0,
        year=2020,
    ),
    "osfp_800g": TransceiverSpec(
        name="800G OSFP 2xCWDM4",
        form_factor=FormFactor.OSFP,
        grid=CWDM4_GRID,
        lanes=8,
        line_rates_gbps=(100.0, 50.0, 25.0),
        modulation=Modulation.PAM4,
        tx_power_dbm=2.0,
        rx_sensitivity_dbm=-10.5,
        power_w=14.0,
        year=2022,
    ),
    # --- custom bidi modules ------------------------------------------- #
    "bidi_dcn_cwdm4": TransceiverSpec(
        name="bidi 400G OSFP CWDM4 (DCN)",
        form_factor=FormFactor.OSFP,
        grid=CWDM4_GRID,
        lanes=4,
        line_rates_gbps=(100.0, 50.0, 25.0),
        modulation=Modulation.PAM4,
        bidi=True,
        num_circulators=1,
        tx_power_dbm=2.5,
        rx_sensitivity_dbm=-10.0,
        power_w=10.0,
        year=2021,
    ),
    "bidi_2x400g_cwdm4": TransceiverSpec(
        name="bidi 2x400G OSFP CWDM4 (ML)",
        form_factor=FormFactor.OSFP,
        grid=CWDM4_GRID,
        lanes=8,
        line_rates_gbps=(100.0, 50.0),
        modulation=Modulation.PAM4,
        bidi=True,
        num_circulators=2,
        tx_power_dbm=2.5,
        rx_sensitivity_dbm=-10.0,
        power_w=15.0,
        year=2021,
    ),
    "bidi_800g_cwdm8": TransceiverSpec(
        name="bidi 800G OSFP CWDM8 (ML)",
        form_factor=FormFactor.OSFP,
        grid=CWDM8_GRID,
        lanes=8,
        line_rates_gbps=(100.0, 50.0),
        modulation=Modulation.PAM4,
        bidi=True,
        num_circulators=1,
        tx_power_dbm=3.0,
        rx_sensitivity_dbm=-9.5,
        power_w=16.0,
        year=2023,
    ),
}


def transceiver(key: str) -> TransceiverSpec:
    """Look up a generation by registry key."""
    try:
        return TRANSCEIVER_GENERATIONS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown transceiver {key!r}; known: {sorted(TRANSCEIVER_GENERATIONS)}"
        ) from None


def bandwidth_growth_factor() -> float:
    """Aggregate-bandwidth growth across the roadmap (paper: 20x)."""
    specs = TRANSCEIVER_GENERATIONS
    return specs["osfp_800g"].max_rate_gbps / specs["qsfp_40g"].max_rate_gbps
