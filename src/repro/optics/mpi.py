"""Multi-path interference (MPI) modelling for bidirectional links.

Circulator-based bidi links suffer impairments absent from duplex links
(§4.1.2): the remote transmitter's light shares the fiber with the local
receiver's signal, so any *pair of reflections* (connector, collimator,
circulator crosstalk) creates a delayed, in-band copy of the carrier.  At
the receiver the interferer beats coherently with the signal, producing a
narrow-band noise term whose RMS amplitude on photocurrent is
``sqrt(2 * P_signal * P_interferer)``.

An MPI level of -32 dB means the aggregate interferer power sits 32 dB
below the signal carrier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.units import db_to_linear, linear_to_db


@dataclass(frozen=True)
class MpiSource:
    """One interference contribution, identified and quantified.

    ``level_db`` is the interferer power relative to the signal carrier
    (negative dB).
    """

    name: str
    level_db: float

    def __post_init__(self) -> None:
        if self.level_db >= 0:
            raise ConfigurationError(
                f"{self.name}: MPI level must be below the carrier (negative dB)"
            )


def double_reflection_mpi_db(return_loss_a_db: float, return_loss_b_db: float) -> float:
    """MPI level created by a pair of reflectors along the path.

    Light reflects off B (seeing ``RL_b``), travels back, reflects off A
    (seeing ``RL_a``), and arrives delayed: the interferer level is the sum
    of the two return losses (both negative dB).
    """
    if return_loss_a_db >= 0 or return_loss_b_db >= 0:
        raise ConfigurationError("return losses must be negative dB")
    return return_loss_a_db + return_loss_b_db


def crosstalk_mpi_db(
    crosstalk_db: float, remote_tx_dbm: float, local_rx_dbm: float
) -> float:
    """MPI level from circulator crosstalk leaking local TX into local RX.

    The leaked light sits ``crosstalk_db`` below the local transmit power;
    relative to the *received* signal it is stronger by the link loss:
    ``crosstalk_db + (remote_tx_dbm - local_rx_dbm)`` assuming symmetric
    transmit powers.
    """
    if crosstalk_db >= 0:
        raise ConfigurationError("crosstalk must be negative dB")
    link_loss_db = remote_tx_dbm - local_rx_dbm
    if link_loss_db < 0:
        raise ConfigurationError("received power cannot exceed remote TX power")
    return crosstalk_db + link_loss_db


def aggregate_mpi_db(sources: Iterable[MpiSource]) -> float:
    """Combine independent interferers: powers add linearly.

    Returns ``-inf`` for an empty collection (no interference).
    """
    total = sum(db_to_linear(s.level_db) for s in sources)
    if total == 0.0:
        return float("-inf")
    return float(linear_to_db(total))


def beat_noise_sigma_w(signal_level_w: float, interferer_w: float) -> float:
    """RMS of the signal-interferer beat term on the photocurrent, in
    optical-power-equivalent watts.

    The instantaneous beat is ``2*sqrt(P_s * P_i)*cos(phi)``; averaging the
    random phase gives RMS ``sqrt(2 * P_s * P_i)``.
    """
    if signal_level_w < 0 or interferer_w < 0:
        raise ConfigurationError("powers must be non-negative")
    return math.sqrt(2.0 * signal_level_w * interferer_w)


def sample_beat_noise_w(
    rng: np.random.Generator,
    signal_levels_w: np.ndarray,
    interferer_w: float,
    suppression_db: float = 0.0,
) -> np.ndarray:
    """Monte-Carlo beat-noise samples for an array of symbol levels.

    The aggregate of many reflection paths is a complex-Gaussian optical
    field, so the in-phase beat against the signal is Gaussian with
    variance ``2 * P_s * P_i`` (the single-tone RMS squared).  A DSP
    suppression (OIM) attenuates the beat amplitude by
    ``10^(-suppression_db/20)``.
    """
    if suppression_db < 0:
        raise ConfigurationError("suppression must be non-negative dB")
    sigma = np.sqrt(2.0 * np.maximum(signal_levels_w, 0.0) * interferer_w)
    return rng.normal(0.0, 1.0, size=signal_levels_w.shape) * sigma * 10.0 ** (
        -suppression_db / 20.0
    )
