"""Fabric availability and goodput models (§4.2.2, Fig 15).

- :mod:`repro.availability.model` -- fabric availability vs OCS count for
  the three transceiver technologies (Fig 15a).
- :mod:`repro.availability.goodput` -- goodput vs slice size under server
  availability for static and reconfigurable fabrics (Fig 15b).
- :mod:`repro.availability.montecarlo` -- Monte-Carlo validation of the
  analytic goodput model.
"""

from repro.availability.model import (
    TRANSCEIVER_TECHS,
    TransceiverTech,
    fabric_availability,
    ocses_required,
)
from repro.availability.goodput import (
    GoodputModel,
    cube_availability,
    reconfigurable_goodput,
    static_goodput,
)
from repro.availability.montecarlo import (
    AvailabilityTask,
    GoodputMonteCarlo,
    availability_grid,
    availability_grid_serial,
)

__all__ = [
    "TransceiverTech",
    "TRANSCEIVER_TECHS",
    "fabric_availability",
    "ocses_required",
    "GoodputModel",
    "cube_availability",
    "reconfigurable_goodput",
    "static_goodput",
    "GoodputMonteCarlo",
    "AvailabilityTask",
    "availability_grid",
    "availability_grid_serial",
]
