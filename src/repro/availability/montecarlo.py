"""Monte-Carlo validation of the Fig 15b goodput model.

Samples pod states (each cube up iff its 16 hosts are up) and measures
the empirical availability of the slice configurations the analytic model
composes, confirming the configurations meet the 97% target and that the
static fixed-partition survival probabilities match the binomial math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.availability.goodput import (
    DEFAULT_TARGET,
    POD_CUBES,
    cube_availability,
    spares_for_slice,
)
from repro.tpu.cube import HOSTS_PER_CUBE


@dataclass
class GoodputMonteCarlo:
    """Samples cube-up states and evaluates slice survival."""

    server_availability: float
    seed: int = 0
    trials: int = 20_000

    def __post_init__(self) -> None:
        if not 0.0 < self.server_availability <= 1.0:
            raise ConfigurationError("server availability must be in (0, 1]")
        if self.trials <= 0:
            raise ConfigurationError("need at least one trial")

    def _cube_states(self, rng: np.random.Generator, num_cubes: int) -> np.ndarray:
        """(trials, num_cubes) booleans: cube up iff all 16 hosts up."""
        hosts = rng.random((self.trials, num_cubes, HOSTS_PER_CUBE))
        return np.all(hosts < self.server_availability, axis=2)

    def empirical_cube_availability(self) -> float:
        """Check the host->cube availability composition."""
        rng = np.random.default_rng(self.seed)
        states = self._cube_states(rng, 256)
        return float(states.mean())

    def reconfigurable_slice_availability(
        self, cubes_per_slice: int, target: float = DEFAULT_TARGET
    ) -> Tuple[float, int]:
        """(empirical availability of one spared slice, spares used).

        A slice with its dedicated spare pool survives a trial when the
        number of failed cubes in the pool is at most the spare count --
        the reconfigurable fabric swaps failures for spares.
        """
        a_cube = cube_availability(self.server_availability)
        spares = spares_for_slice(cubes_per_slice, a_cube, target)
        rng = np.random.default_rng(self.seed)
        states = self._cube_states(rng, cubes_per_slice + spares)
        failures = (~states).sum(axis=1)
        return float((failures <= spares).mean()), spares

    def static_partition_survival(
        self, cubes_per_slice: int, k: int
    ) -> float:
        """Empirical P(at least k of the fixed slices are fully up)."""
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        num_slices = POD_CUBES // cubes_per_slice
        rng = np.random.default_rng(self.seed)
        states = self._cube_states(rng, num_slices * cubes_per_slice)
        per_slice = states.reshape(self.trials, num_slices, cubes_per_slice)
        slices_up = np.all(per_slice, axis=2).sum(axis=1)
        return float((slices_up >= k).mean())
