"""Monte-Carlo validation of the Fig 15b goodput model.

Samples pod states (each cube up iff its 16 hosts are up) and measures
the empirical availability of the slice configurations the analytic model
composes, confirming the configurations meet the 97% target and that the
static fixed-partition survival probabilities match the binomial math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.availability.goodput import (
    DEFAULT_TARGET,
    POD_CUBES,
    cube_availability,
    spares_for_slice,
)
from repro.parallel import SweepEngine
from repro.tpu.cube import HOSTS_PER_CUBE

#: Upper bound on the transient host-sample buffer.  The naive draw is
#: trials x cubes x 16 doubles (~650 MB at 256 cubes, 20k trials); the
#: chunked sampler below holds at most this many bytes of uniforms at a
#: time while producing the identical RNG stream.
SAMPLE_BUDGET_BYTES = 32 * 2**20


@dataclass
class GoodputMonteCarlo:
    """Samples cube-up states and evaluates slice survival."""

    server_availability: float
    seed: int = 0
    trials: int = 20_000

    def __post_init__(self) -> None:
        if not 0.0 < self.server_availability <= 1.0:
            raise ConfigurationError("server availability must be in (0, 1]")
        if self.trials <= 0:
            raise ConfigurationError("need at least one trial")

    def _cube_states(self, rng: np.random.Generator, num_cubes: int) -> np.ndarray:
        """(trials, num_cubes) booleans: cube up iff all 16 hosts up.

        Samples in bounded trial chunks: ``Generator.random`` fills its
        output sequentially in C order, so drawing consecutive slices
        along the trial axis consumes exactly the stream the one-shot
        draw would -- :meth:`_cube_states_reference` stays the oracle and
        the results are bit-identical, at ~20x less peak memory.
        """
        row_bytes = num_cubes * HOSTS_PER_CUBE * 8
        chunk = max(1, SAMPLE_BUDGET_BYTES // row_bytes)
        if chunk >= self.trials:
            return self._cube_states_reference(rng, num_cubes)
        states = np.empty((self.trials, num_cubes), dtype=bool)
        for start in range(0, self.trials, chunk):
            stop = min(start + chunk, self.trials)
            # Single expression: holding the chunk in a local would keep
            # it alive across the next draw and double the peak.
            states[start:stop] = np.all(
                rng.random((stop - start, num_cubes, HOSTS_PER_CUBE))
                < self.server_availability,
                axis=2,
            )
        return states

    def _cube_states_reference(
        self, rng: np.random.Generator, num_cubes: int
    ) -> np.ndarray:
        """The original one-shot sampler, kept as the RNG-stream oracle."""
        hosts = rng.random((self.trials, num_cubes, HOSTS_PER_CUBE))
        return np.all(hosts < self.server_availability, axis=2)

    def empirical_cube_availability(self) -> float:
        """Check the host->cube availability composition."""
        rng = np.random.default_rng(self.seed)
        states = self._cube_states(rng, 256)
        return float(states.mean())

    def reconfigurable_slice_availability(
        self, cubes_per_slice: int, target: float = DEFAULT_TARGET
    ) -> Tuple[float, int]:
        """(empirical availability of one spared slice, spares used).

        A slice with its dedicated spare pool survives a trial when the
        number of failed cubes in the pool is at most the spare count --
        the reconfigurable fabric swaps failures for spares.
        """
        a_cube = cube_availability(self.server_availability)
        spares = spares_for_slice(cubes_per_slice, a_cube, target)
        rng = np.random.default_rng(self.seed)
        states = self._cube_states(rng, cubes_per_slice + spares)
        failures = (~states).sum(axis=1)
        return float((failures <= spares).mean()), spares

    def static_partition_survival(
        self, cubes_per_slice: int, k: int
    ) -> float:
        """Empirical P(at least k of the fixed slices are fully up)."""
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        num_slices = POD_CUBES // cubes_per_slice
        rng = np.random.default_rng(self.seed)
        states = self._cube_states(rng, num_slices * cubes_per_slice)
        per_slice = states.reshape(self.trials, num_slices, cubes_per_slice)
        slices_up = np.all(per_slice, axis=2).sum(axis=1)
        return float((slices_up >= k).mean())


# ---------------------------------------------------------------------- #
# Availability x shape grids over the sweep engine (Fig 15b)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class AvailabilityTask:
    """One grid point: a (server availability, slice shape) evaluation.

    Each point carries its own explicit seed, so the grid's values do
    not depend on the engine's seed splitting -- adding rows or columns
    never changes existing cells, and cached cells survive grid growth.
    """

    server_availability: float
    cubes_per_slice: int
    trials: int
    seed: int
    target: float = DEFAULT_TARGET


def _availability_point(task: AvailabilityTask) -> Tuple[float, int]:
    """Worker: empirical availability and spare count for one point."""
    mc = GoodputMonteCarlo(
        server_availability=task.server_availability,
        seed=task.seed,
        trials=task.trials,
    )
    return mc.reconfigurable_slice_availability(task.cubes_per_slice, task.target)


def _grid_tasks(
    server_availabilities: Sequence[float],
    cubes_per_slice: Sequence[int],
    trials: int,
    seed: int,
    target: float,
) -> List[AvailabilityTask]:
    return [
        AvailabilityTask(float(sa), int(cps), int(trials), int(seed), float(target))
        for sa in server_availabilities
        for cps in cubes_per_slice
    ]


def availability_grid(
    server_availabilities: Sequence[float],
    cubes_per_slice: Sequence[int],
    trials: int = 20_000,
    seed: int = 0,
    target: float = DEFAULT_TARGET,
    engine: Optional[SweepEngine] = None,
    cache_tag: Optional[str] = "availability.grid",
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical (availability, spares) over an availability x shape grid.

    Returns two arrays of shape ``(len(server_availabilities),
    len(cubes_per_slice))`` -- the Fig 15b validation surface, fanned out
    through the engine.  Bit-identical to :func:`availability_grid_serial`
    for any worker count or chunk size.
    """
    engine = engine if engine is not None else SweepEngine(workers=1)
    tasks = _grid_tasks(server_availabilities, cubes_per_slice, trials, seed, target)
    tag = cache_tag if engine.cache is not None else None
    results = engine.pmap(_availability_point, tasks, cache_tag=tag)
    shape = (len(server_availabilities), len(cubes_per_slice))
    availability = np.array([a for a, _ in results]).reshape(shape)
    spares = np.array([s for _, s in results], dtype=int).reshape(shape)
    return availability, spares


def availability_grid_serial(
    server_availabilities: Sequence[float],
    cubes_per_slice: Sequence[int],
    trials: int = 20_000,
    seed: int = 0,
    target: float = DEFAULT_TARGET,
) -> Tuple[np.ndarray, np.ndarray]:
    """The plain-loop oracle for :func:`availability_grid`."""
    tasks = _grid_tasks(server_availabilities, cubes_per_slice, trials, seed, target)
    results = [_availability_point(t) for t in tasks]
    shape = (len(server_availabilities), len(cubes_per_slice))
    availability = np.array([a for a, _ in results]).reshape(shape)
    spares = np.array([s for _, s in results], dtype=int).reshape(shape)
    return availability, spares
