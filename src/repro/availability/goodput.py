"""Goodput vs slice size under server availability (Fig 15b).

Setup (§4.2.2): a 64-cube pod, 16 hosts per cube (a cube works only when
all 16 are up), a 97% system-availability target, and slices of ``c``
cubes (64c TPUs).  Goodput is the fraction of the pod's TPUs inside
slices that meet the availability target.

**Reconfigurable fabric.**  Multi-cube slices reserve *dedicated* spare
cubes -- the fabric swaps a failed cube for a spare without touching
other jobs (job isolation), so each slice's pool must cover its own
failures: the smallest ``s`` with
``P(Binom(c + s, 1 - A_cube) <= s) >= target``.  Single-cube slices draw
from one shared pool instead (any spare substitutes directly), i.e. a
pod-level holdback ``h`` with ``P(failures <= h) >= target``.

**Static fabric.**  The pod is hard-wired into ``64 // c`` fixed slices;
a slice is up only when *its own* ``c`` cubes are all up, and no swap is
possible.  The countable slices are the largest ``k`` with
``P(at least k fixed slices up) >= target``.

These definitions reproduce the paper's anchor points: at 99.9% server
availability a 1024-TPU slice achieves 75% goodput reconfigurable vs 25%
static, and any 2048-TPU slice tops out at 50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from scipy.stats import binom

from repro.core.errors import ConfigurationError
from repro.tpu.cube import HOSTS_PER_CUBE

#: Paper's overall system availability target.
DEFAULT_TARGET = 0.97

#: Cubes per pod.
POD_CUBES = 64


def cube_availability(server_availability: float) -> float:
    """A cube is up iff all 16 of its hosts are up."""
    if not 0.0 < server_availability <= 1.0:
        raise ConfigurationError("server availability must be in (0, 1]")
    return server_availability ** HOSTS_PER_CUBE


def _check_slice(cubes_per_slice: int, pod_cubes: int) -> None:
    if cubes_per_slice <= 0 or cubes_per_slice > pod_cubes:
        raise ConfigurationError(
            f"slice size {cubes_per_slice} out of range [1, {pod_cubes}]"
        )


def spares_for_slice(
    cubes_per_slice: int, cube_avail: float, target: float = DEFAULT_TARGET
) -> int:
    """Smallest dedicated spare count meeting the slice availability target."""
    _check_slice(cubes_per_slice, POD_CUBES)
    p_fail = 1.0 - cube_avail
    for spares in range(0, POD_CUBES + 1):
        n = cubes_per_slice + spares
        if float(binom.cdf(spares, n, p_fail)) >= target:
            return spares
    raise ConfigurationError(
        f"no spare count within the pod meets target {target} at "
        f"cube availability {cube_avail:.4f}"
    )


def pooled_holdback(
    pod_cubes: int, cube_avail: float, target: float = DEFAULT_TARGET
) -> int:
    """Smallest pod-level holdback covering failures with the target
    confidence (used for single-cube slices on either fabric)."""
    p_fail = 1.0 - cube_avail
    for h in range(0, pod_cubes + 1):
        if float(binom.cdf(h, pod_cubes, p_fail)) >= target:
            return h
    return pod_cubes


def reconfigurable_goodput(
    cubes_per_slice: int,
    server_availability: float,
    target: float = DEFAULT_TARGET,
    pod_cubes: int = POD_CUBES,
) -> float:
    """Goodput of the reconfigurable lightwave fabric (Fig 15b solid)."""
    _check_slice(cubes_per_slice, pod_cubes)
    a_cube = cube_availability(server_availability)
    if cubes_per_slice == 1:
        usable = pod_cubes - pooled_holdback(pod_cubes, a_cube, target)
        return usable / pod_cubes
    spares = spares_for_slice(cubes_per_slice, a_cube, target)
    slices = pod_cubes // (cubes_per_slice + spares)
    return slices * cubes_per_slice / pod_cubes


def static_goodput(
    cubes_per_slice: int,
    server_availability: float,
    target: float = DEFAULT_TARGET,
    pod_cubes: int = POD_CUBES,
) -> float:
    """Goodput of the static fabric (Fig 15b dashed)."""
    _check_slice(cubes_per_slice, pod_cubes)
    a_cube = cube_availability(server_availability)
    if cubes_per_slice == 1:
        usable = pod_cubes - pooled_holdback(pod_cubes, a_cube, target)
        return usable / pod_cubes
    num_slices = pod_cubes // cubes_per_slice
    q = a_cube ** cubes_per_slice  # one fixed slice fully up
    best_k = 0
    for k in range(1, num_slices + 1):
        if float(binom.sf(k - 1, num_slices, q)) >= target:
            best_k = k
    return best_k * cubes_per_slice / pod_cubes


@dataclass(frozen=True)
class GoodputModel:
    """Convenience wrapper sweeping Fig 15b's axes."""

    target: float = DEFAULT_TARGET
    pod_cubes: int = POD_CUBES

    def curve(
        self,
        server_availability: float,
        slice_cubes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    ) -> Dict[int, Tuple[float, float]]:
        """{cubes_per_slice: (reconfigurable, static)} goodputs."""
        out = {}
        for c in slice_cubes:
            out[c] = (
                reconfigurable_goodput(c, server_availability, self.target, self.pod_cubes),
                static_goodput(c, server_availability, self.target, self.pod_cubes),
            )
        return out

    def advantage(self, cubes_per_slice: int, server_availability: float) -> float:
        """Reconfigurable-to-static goodput ratio (abstract: up to 3x)."""
        static = static_goodput(
            cubes_per_slice, server_availability, self.target, self.pod_cubes
        )
        reconf = reconfigurable_goodput(
            cubes_per_slice, server_availability, self.target, self.pod_cubes
        )
        if static == 0.0:
            return float("inf") if reconf > 0 else 1.0
        return reconf / static
