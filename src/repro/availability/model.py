"""Fabric availability vs transceiver technology (Fig 15a).

Every OCS in the set providing full inter-cube connectivity is needed for
an undegraded fabric, so fabric availability is ``A_ocs ** N``.  The
transceiver technology sets N through the fiber strands each 800G face
connection needs:

- standard CWDM4 duplex: 4 strands -> 96 OCSes -> ~90% at A_ocs = 99.9%
- custom CWDM4 bidi:     2 strands -> 48 OCSes -> ~95%
- custom CWDM8 bidi:     1 strand  -> 24 OCSes -> ~98%
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.tpu.cube import FACE_PORTS, DIMS

#: OCS duplex connections per cube at one strand per connection-pair
#: (6 faces x 16 positions / 2, cf. Appendix A).
BASE_OCS_COUNT = len(DIMS) * FACE_PORTS  # 48


@dataclass(frozen=True)
class TransceiverTech:
    """One Fig 15a technology option."""

    name: str
    strands_per_connection: int

    def __post_init__(self) -> None:
        if self.strands_per_connection <= 0:
            raise ConfigurationError("strand count must be positive")

    @property
    def num_ocses(self) -> int:
        """OCSes needed for the full superpod fabric."""
        return BASE_OCS_COUNT * self.strands_per_connection // 2


#: The three technologies of Fig 15a.
TRANSCEIVER_TECHS: Dict[str, TransceiverTech] = {
    "cwdm4_duplex": TransceiverTech("standard CWDM4 duplex", strands_per_connection=4),
    "cwdm4_bidi": TransceiverTech("CWDM4 bidi", strands_per_connection=2),
    "cwdm8_bidi": TransceiverTech("CWDM8 bidi", strands_per_connection=1),
}


def ocses_required(tech: TransceiverTech) -> int:
    """OCS count for a technology (96 / 48 / 24 across the three options)."""
    return tech.num_ocses


def fabric_availability(num_ocses: int, single_ocs_availability: float) -> float:
    """Probability every OCS of the fabric is up."""
    if num_ocses <= 0:
        raise ConfigurationError("OCS count must be positive")
    if not 0.0 < single_ocs_availability <= 1.0:
        raise ConfigurationError("availability must be in (0, 1]")
    return single_ocs_availability ** num_ocses


def fig15a_curves(
    ocs_availabilities: Sequence[float],
) -> Dict[str, np.ndarray]:
    """Fabric availability vs single-OCS availability per technology."""
    out: Dict[str, np.ndarray] = {}
    for key, tech in TRANSCEIVER_TECHS.items():
        out[key] = np.array(
            [fabric_availability(tech.num_ocses, a) for a in ocs_availabilities]
        )
    return out
