"""Property suite pinning the incremental water-filling engine.

Three implementations of the flow event loop coexist:
``FlowSimulator.run`` (frontier-incremental), ``run_full_solve`` (one
vectorized allocation per event), and ``run_reference`` (the dict-loop
oracle).  All three accept a ``rate_probe`` fired once per event with
the allocation for the current active set, so this suite pins them
together **at every event boundary** -- same event times, same per-flow
rates, exactly -- not just on final completion records.  Tied-bottleneck
freezes, zero-capacity starvation (and the resulting deadlock), the
full-solve fallback threshold, and the dict-kernel crossover are all
swept explicitly: none of these knobs may change a single allocation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.dcn.flowsim import FlowSimulator, generate_flows
from repro.dcn.spinefree import AggregationBlock, SpineFreeFabric
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import route_demand
from repro.obs import Observability

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _build_sim(seed, blocks=6, uplinks=8):
    fabric = SpineFreeFabric.uniform(
        [AggregationBlock(i, uplinks=uplinks) for i in range(blocks)]
    )
    tm = gravity_matrix(blocks, 800.0, seed=seed)
    routing = route_demand(fabric, tm)
    return fabric, routing, tm


def _capture():
    events = []

    def probe(now, rates):
        events.append((now, dict(rates)))

    return events, probe


def _assert_event_streams_equal(a, b):
    """Exact equality of two probe streams: times, keys, and rates."""
    assert len(a) == len(b)
    for (ta, ra), (tb, rb) in zip(a, b):
        assert ta == tb
        assert ra == rb


def _assert_records_equal(a, b):
    assert [r.flow.flow_id for r in a] == [r.flow.flow_id for r in b]
    for ra, rb in zip(a, b):
        assert ra.start_s == rb.start_s
        assert ra.finish_s == rb.finish_s


class TestEventBoundaryParity:
    """incremental == full-solve == reference, at every event."""

    @given(seeds, st.integers(min_value=1, max_value=120))
    @settings(max_examples=12, deadline=None)
    def test_three_engines_agree_at_every_event(self, seed, num_flows):
        fabric, routing, tm = _build_sim(seed % 1000)
        flows = generate_flows(
            tm.demand_gbps, num_flows, mean_size_gbit=50.0, duration_s=2.0, seed=seed
        )
        ev_inc, p_inc = _capture()
        ev_full, p_full = _capture()
        ev_ref, p_ref = _capture()
        recs_inc = FlowSimulator(fabric, routing, seed=3).run(flows, rate_probe=p_inc)
        recs_full = FlowSimulator(fabric, routing, seed=3).run_full_solve(
            flows, rate_probe=p_full
        )
        recs_ref = FlowSimulator(fabric, routing, seed=3).run_reference(
            flows, rate_probe=p_ref
        )
        _assert_event_streams_equal(ev_inc, ev_ref)
        _assert_event_streams_equal(ev_full, ev_ref)
        _assert_records_equal(recs_inc, recs_ref)
        _assert_records_equal(recs_full, recs_ref)

    @given(seeds, st.sampled_from([1, 2, 7, 32, 10_000]))
    @settings(max_examples=12, deadline=None)
    def test_fallback_threshold_never_changes_allocations(self, seed, frontier):
        """incremental_max_frontier is a pure perf knob: frontier=1
        forces the full-solve fallback on ~every event, 10k never falls
        back; every setting must produce the reference event stream."""
        fabric, routing, tm = _build_sim(seed % 1000)
        flows = generate_flows(
            tm.demand_gbps, 60, mean_size_gbit=80.0, duration_s=1.0, seed=seed
        )
        ev_inc, p_inc = _capture()
        ev_ref, p_ref = _capture()
        sim = FlowSimulator(fabric, routing, seed=3, incremental_max_frontier=frontier)
        recs_inc = sim.run(flows, rate_probe=p_inc)
        recs_ref = FlowSimulator(fabric, routing, seed=3).run_reference(
            flows, rate_probe=p_ref
        )
        _assert_event_streams_equal(ev_inc, ev_ref)
        _assert_records_equal(recs_inc, recs_ref)

    @given(seeds, st.sampled_from([0, 5, 10**9]))
    @settings(max_examples=9, deadline=None)
    def test_dict_kernel_crossover_never_changes_allocations(self, seed, crossover):
        """The crossover field sweeps cleanly: crossover=0 pins the
        matrix kernel, 10^9 pins the dict kernel, and both must equal
        the reference at every event."""
        fabric, routing, tm = _build_sim(seed % 1000)
        flows = generate_flows(
            tm.demand_gbps, 50, mean_size_gbit=60.0, duration_s=1.0, seed=seed
        )
        ev_full, p_full = _capture()
        ev_ref, p_ref = _capture()
        sim = FlowSimulator(fabric, routing, seed=3, dict_kernel_crossover=crossover)
        recs_full = sim.run_full_solve(flows, rate_probe=p_full)
        recs_ref = FlowSimulator(fabric, routing, seed=3).run_reference(
            flows, rate_probe=p_ref
        )
        _assert_event_streams_equal(ev_full, ev_ref)
        _assert_records_equal(recs_full, recs_ref)

    def test_high_concurrency_with_tiny_frontier(self):
        # Dense arrivals (300 flows in 50ms) push the active set far
        # past the frontier threshold, exercising the fallback and the
        # calendar re-keying under heavy tied-rate churn.
        fabric, routing, tm = _build_sim(7)
        flows = generate_flows(
            tm.demand_gbps, 300, mean_size_gbit=500.0, duration_s=0.05, seed=4
        )
        sim = FlowSimulator(fabric, routing, seed=3, incremental_max_frontier=8)
        recs = sim.run(flows)
        recs_ref = FlowSimulator(fabric, routing, seed=3).run_reference(flows)
        _assert_records_equal(recs, recs_ref)


class _RiggedCapacitySim(FlowSimulator):
    """A simulator whose lit-link capacities are overridden by the test.

    ``_capacities`` normally drops zero-capacity links (they are dark),
    so genuine starvation cannot be expressed through routing; rigging
    the capacity dict lets the suite drive all three engines into
    zero-capacity allocations and the shared deadlock contract.
    """

    _rigged: dict = {}

    def _capacities(self):
        caps = super()._capacities()
        caps.update({k: v for k, v in self._rigged.items() if k in caps})
        return caps


class TestTiesAndStarvation:
    def test_tied_bottlenecks_freeze_together_in_all_engines(self):
        # Uniform capacities + symmetric gravity demand produce many
        # links at exactly the same fair share, so whole groups freeze
        # in one filling round; engines must agree on every event.
        fabric, routing, tm = _build_sim(11, blocks=4, uplinks=4)
        flows = generate_flows(
            tm.demand_gbps, 80, mean_size_gbit=100.0, duration_s=0.2, seed=6
        )
        ev_inc, p_inc = _capture()
        ev_full, p_full = _capture()
        ev_ref, p_ref = _capture()
        FlowSimulator(fabric, routing, seed=3).run(flows, rate_probe=p_inc)
        FlowSimulator(fabric, routing, seed=3).run_full_solve(
            flows, rate_probe=p_full
        )
        FlowSimulator(fabric, routing, seed=3).run_reference(flows, rate_probe=p_ref)
        _assert_event_streams_equal(ev_inc, ev_ref)
        _assert_event_streams_equal(ev_full, ev_ref)
        # The scenario actually contains tied freezes: some event must
        # allocate the same rate to >= 3 flows at once.
        assert any(
            len(rates) >= 3 and len(set(rates.values())) < len(rates)
            for _, rates in ev_ref
            if rates
        )

    def test_zero_capacity_starvation_deadlocks_identically(self):
        fabric, routing, tm = _build_sim(9, blocks=4, uplinks=4)
        flows = generate_flows(
            tm.demand_gbps, 20, mean_size_gbit=40.0, duration_s=0.5, seed=8
        )
        # Kill every lit link: all flows starve at rate 0.0 and no
        # engine can ever retire them.
        baseline = FlowSimulator(fabric, routing)._capacities()

        class Sim(_RiggedCapacitySim):
            _rigged = {link: 0.0 for link in baseline}

        streams = []
        for method in ("run", "run_full_solve", "run_reference"):
            events, probe = _capture()
            with pytest.raises(ConfigurationError, match="deadlock"):
                getattr(Sim(fabric, routing, seed=3), method)(
                    flows, rate_probe=probe
                )
            streams.append(events)
        # All three starved identically (every probed rate is 0.0) and
        # observed the same event boundaries before giving up.
        _assert_event_streams_equal(streams[0], streams[2])
        _assert_event_streams_equal(streams[1], streams[2])
        assert all(
            r == 0.0 for _, rates in streams[2] for r in rates.values()
        )

    def test_partial_starvation_matches_at_every_event(self):
        # Only some links die: flows over dead links pin at 0.0 while
        # the rest of the fabric drains normally, then the engines must
        # deadlock identically on the survivors.
        fabric, routing, tm = _build_sim(13, blocks=4, uplinks=4)
        flows = generate_flows(
            tm.demand_gbps, 40, mean_size_gbit=40.0, duration_s=0.5, seed=5
        )
        baseline = FlowSimulator(fabric, routing)._capacities()
        dead = sorted(baseline)[:: 3]

        class Sim(_RiggedCapacitySim):
            _rigged = {link: 0.0 for link in dead}

        streams, finished = [], []
        for method in ("run", "run_full_solve", "run_reference"):
            events, probe = _capture()
            try:
                recs = getattr(Sim(fabric, routing, seed=3), method)(
                    flows, rate_probe=probe
                )
            except ConfigurationError:
                recs = None
            streams.append(events)
            finished.append(recs)
        _assert_event_streams_equal(streams[0], streams[2])
        _assert_event_streams_equal(streams[1], streams[2])
        assert (finished[0] is None) == (finished[2] is None)
        assert (finished[1] is None) == (finished[2] is None)
        if finished[2] is not None:
            _assert_records_equal(finished[0], finished[2])
            _assert_records_equal(finished[1], finished[2])
        # Starvation genuinely occurred at some boundary.
        assert any(
            any(r == 0.0 for r in rates.values()) for _, rates in streams[2]
        )


class TestIncrementalInstrumentation:
    def test_frontier_and_fallback_metrics_land(self):
        fabric, routing, tm = _build_sim(3)
        flows = generate_flows(
            tm.demand_gbps, 100, mean_size_gbit=200.0, duration_s=0.1, seed=2
        )
        obs = Observability.sim()
        FlowSimulator(fabric, routing, seed=3, obs=obs).run(flows)
        assert obs.metrics.value("flowsim.events") == 200.0
        snap = obs.metrics.snapshot()
        assert any(k.startswith("flowsim.frontier.flows") for k in snap["histograms"])
        # A frontier=1 run must fall back on (at least) every event that
        # touches more than one flow.
        obs2 = Observability.sim()
        FlowSimulator(
            fabric, routing, seed=3, obs=obs2, incremental_max_frontier=1
        ).run(flows)
        assert obs2.metrics.value("flowsim.full_solve_fallbacks") > 0.0

    def test_calendar_stays_lazy(self):
        # Pushes happen only for rate-changed flows: the push count must
        # stay far below events x active (the eager re-key worst case).
        fabric, routing, tm = _build_sim(3)
        flows = generate_flows(
            tm.demand_gbps, 200, mean_size_gbit=100.0, duration_s=1.0, seed=2
        )
        obs = Observability.sim()
        FlowSimulator(fabric, routing, seed=3, obs=obs).run(flows)
        pushes = obs.metrics.value("flowsim.calendar.pushes")
        assert 0.0 < pushes
