"""Property suite pinning the incidence-matrix flow kernels to the
original dict-based implementations.

``max_min_rates_reference`` and ``FlowSimulator.run_reference`` are the
pre-vectorization implementations kept in-tree as oracles; the matrix
paths must reproduce their allocations, completion orders, and event
times exactly (the kernels replicate the scalar op order, so the
comparison tolerance is far tighter than the 1e-12 contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dcn.flowsim import (
    FlowSimulator,
    generate_flows,
    max_min_rates,
    max_min_rates_reference,
)
from repro.dcn.spinefree import AggregationBlock, SpineFreeFabric
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import route_demand

RTOL = 1e-12

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _random_instance(rng, num_flows, num_links, zero_capacity=False, empty_paths=False):
    links = [(i, i + 1) for i in range(num_links)]
    caps = rng.uniform(1.0, 200.0, num_links)
    if zero_capacity:
        caps[rng.integers(0, num_links)] = 0.0
    capacity = {link: float(c) for link, c in zip(links, caps)}
    flow_paths = {}
    for fid in range(num_flows):
        if empty_paths and rng.random() < 0.2:
            flow_paths[fid] = []
            continue
        hops = int(rng.integers(1, min(5, num_links) + 1))
        picks = rng.choice(num_links, size=hops, replace=False)
        flow_paths[fid] = [links[int(p)] for p in picks]
    return flow_paths, capacity


class TestMaxMinRates:
    @given(
        seeds,
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=12),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matrix_matches_dict_kernel(self, seed, flows, links, zero_cap, empty):
        rng = np.random.default_rng(seed)
        flow_paths, capacity = _random_instance(rng, flows, links, zero_cap, empty)
        vec = max_min_rates(flow_paths, capacity)
        ref = max_min_rates_reference(flow_paths, capacity)
        assert vec.keys() == ref.keys()
        for fid in ref:
            assert vec[fid] == pytest.approx(ref[fid], rel=RTOL, abs=1e-300)

    def test_shared_bottleneck_splits_evenly(self):
        link = (0, 1)
        rates = max_min_rates({0: [link], 1: [link], 2: [link]}, {link: 30.0})
        assert all(r == pytest.approx(10.0) for r in rates.values())

    def test_zero_capacity_link_starves_its_flows(self):
        dead, live = (0, 1), (1, 2)
        rates = max_min_rates(
            {0: [dead], 1: [live]}, {dead: 0.0, live: 40.0}
        )
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(40.0)

    def test_multi_bottleneck_water_filling(self):
        # Flow 0 crosses both links; flows 1 and 2 take one each.  The
        # narrow link caps flow 0 and flow 1 at 5, leaving 15 for flow 2.
        a, b = (0, 1), (1, 2)
        rates = max_min_rates(
            {0: [a, b], 1: [a], 2: [b]}, {a: 10.0, b: 20.0}
        )
        ref = max_min_rates_reference(
            {0: [a, b], 1: [a], 2: [b]}, {a: 10.0, b: 20.0}
        )
        assert rates == pytest.approx(ref)
        assert rates[0] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(15.0)

    def test_empty_inputs(self):
        assert max_min_rates({}, {(0, 1): 10.0}) == {}
        assert max_min_rates({0: []}, {(0, 1): 10.0}) == {}


def _build_sim(seed, path_policy="primary", blocks=6, uplinks=8):
    fabric = SpineFreeFabric.uniform(
        [AggregationBlock(i, uplinks=uplinks) for i in range(blocks)]
    )
    tm = gravity_matrix(blocks, 800.0, seed=seed)
    routing = route_demand(fabric, tm)
    return fabric, routing, tm


class TestFlowSimulatorParity:
    @given(seeds, st.integers(min_value=1, max_value=120))
    @settings(max_examples=15, deadline=None)
    def test_run_matches_reference(self, seed, num_flows):
        fabric, routing, tm = _build_sim(seed % 1000)
        flows = generate_flows(
            tm.demand_gbps, num_flows, mean_size_gbit=50.0, duration_s=2.0, seed=seed
        )
        # Fresh same-seed simulators: wcmp path selection advances the RNG.
        recs_v = FlowSimulator(fabric, routing, seed=3).run(flows)
        recs_r = FlowSimulator(fabric, routing, seed=3).run_reference(flows)
        assert [r.flow.flow_id for r in recs_v] == [r.flow.flow_id for r in recs_r]
        for v, r in zip(recs_v, recs_r):
            assert v.finish_s == pytest.approx(r.finish_s, rel=RTOL)
            assert v.start_s == pytest.approx(r.start_s, rel=RTOL)

    @pytest.mark.parametrize("policy", ["primary", "wcmp"])
    def test_run_matches_reference_per_policy(self, policy):
        fabric, routing, tm = _build_sim(5)
        flows = generate_flows(
            tm.demand_gbps, 200, mean_size_gbit=120.0, duration_s=1.0, seed=2
        )
        recs_v = FlowSimulator(fabric, routing, path_policy=policy, seed=3).run(flows)
        recs_r = FlowSimulator(fabric, routing, path_policy=policy, seed=3).run_reference(
            flows
        )
        assert [r.flow.flow_id for r in recs_v] == [r.flow.flow_id for r in recs_r]
        dts = [abs(v.finish_s - r.finish_s) for v, r in zip(recs_v, recs_r)]
        assert max(dts) == 0.0

    def test_high_concurrency_crosses_matrix_kernel(self):
        # Sizes chosen so the active-flow count exceeds the dict-kernel
        # crossover and the incidence kernel actually runs.
        fabric, routing, tm = _build_sim(7)
        flows = generate_flows(
            tm.demand_gbps, 300, mean_size_gbit=500.0, duration_s=0.05, seed=4
        )
        recs_v = FlowSimulator(fabric, routing, seed=3).run(flows)
        recs_r = FlowSimulator(fabric, routing, seed=3).run_reference(flows)
        assert [r.flow.flow_id for r in recs_v] == [r.flow.flow_id for r in recs_r]
        assert max(
            abs(v.finish_s - r.finish_s) for v, r in zip(recs_v, recs_r)
        ) == 0.0
