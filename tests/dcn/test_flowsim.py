"""Tests for repro.dcn.flowsim."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.flowsim import (
    Flow,
    FlowSimulator,
    fct_stats,
    generate_flows,
    max_min_rates,
)
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import gravity_matrix, uniform_matrix
from repro.dcn.traffic_engineering import route_demand


def blocks(n=4, uplinks=6):
    return [AggregationBlock(i, uplinks=uplinks) for i in range(n)]


def make_sim(n=4, uplinks=6, tm=None):
    bs = blocks(n, uplinks)
    fabric = SpineFreeFabric.uniform(bs)
    tm = tm or uniform_matrix(n, 10.0)
    return FlowSimulator(fabric, route_demand(fabric, tm))


class TestMaxMinRates:
    def test_single_flow_gets_capacity(self):
        rates = max_min_rates({1: [(0, 1)]}, {(0, 1): 100.0})
        assert rates[1] == pytest.approx(100.0)

    def test_two_flows_share(self):
        rates = max_min_rates({1: [(0, 1)], 2: [(0, 1)]}, {(0, 1): 100.0})
        assert rates[1] == rates[2] == pytest.approx(50.0)

    def test_max_min_property(self):
        # Flow 1 uses a congested link; flow 2 has a private fat link.
        rates = max_min_rates(
            {1: [(0, 1)], 2: [(0, 1)], 3: [(2, 3)]},
            {(0, 1): 100.0, (2, 3): 400.0},
        )
        assert rates[1] == pytest.approx(50.0)
        assert rates[3] == pytest.approx(400.0)

    def test_multi_hop_bottleneck(self):
        rates = max_min_rates(
            {1: [(0, 1), (1, 2)]}, {(0, 1): 100.0, (1, 2): 30.0}
        )
        assert rates[1] == pytest.approx(30.0)


class TestFlowValidation:
    def test_flow_fields(self):
        with pytest.raises(ConfigurationError):
            Flow(1, 0, 0, 10.0, 0.0)
        with pytest.raises(ConfigurationError):
            Flow(1, 0, 1, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            Flow(1, 0, 1, 10.0, -1.0)


class TestSimulation:
    def test_single_flow_fct(self):
        sim = make_sim()
        cap = sim.fabric.capacity_gbps(0, 1)
        records = sim.run([Flow(0, 0, 1, size_gbit=cap * 2.0, arrival_s=0.0)])
        assert len(records) == 1
        assert records[0].fct_s == pytest.approx(2.0)

    def test_sharing_slows_flows(self):
        sim = make_sim()
        cap = sim.fabric.capacity_gbps(0, 1)
        solo = sim.run([Flow(0, 0, 1, cap, 0.0)])[0].fct_s
        pair = sim.run([Flow(0, 0, 1, cap, 0.0), Flow(1, 0, 1, cap, 0.0)])
        assert max(r.fct_s for r in pair) > solo

    def test_all_flows_complete(self):
        tm = gravity_matrix(4, 500.0, seed=1)
        sim = make_sim(tm=tm)
        flows = generate_flows(tm.demand_gbps, 40, mean_size_gbit=50.0, seed=2)
        records = sim.run(flows)
        assert len(records) == 40
        for r in records:
            assert r.finish_s >= r.start_s >= 0

    def test_empty_flow_list(self):
        with pytest.raises(ConfigurationError):
            make_sim().run([])

    def test_fct_stats(self):
        sim = make_sim()
        cap = sim.fabric.capacity_gbps(0, 1)
        records = sim.run([Flow(i, 0, 1, cap, float(i)) for i in range(4)])
        stats = fct_stats(records)
        assert stats["mean_s"] > 0
        assert stats["p50_s"] <= stats["p99_s"]

    def test_fct_stats_empty(self):
        with pytest.raises(ConfigurationError):
            fct_stats([])


class TestGenerateFlows:
    def test_pair_weighting(self):
        d = np.zeros((3, 3))
        d[0, 1] = 100.0
        d[1, 2] = 1e-9
        flows = generate_flows(d, 200, seed=3)
        pair_counts = sum(1 for f in flows if (f.src, f.dst) == (0, 1))
        assert pair_counts > 190

    def test_arrivals_sorted(self):
        d = uniform_matrix(4, 10.0).demand_gbps
        flows = generate_flows(d, 50, seed=4)
        arrivals = [f.arrival_s for f in flows]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_flows(np.zeros((3, 3)), 10)
        with pytest.raises(ConfigurationError):
            generate_flows(uniform_matrix(3).demand_gbps, 0)


class TestEngineeredVsUniform:
    def test_engineered_improves_fct_on_skewed_traffic(self):
        """§4.2: topology engineering improves flow completion time.

        The benefit needs a fabric wide enough that the uniform mesh
        spreads itself thin (many peers per uplink) and sustained load.
        """
        n = 16
        bs = blocks(n, uplinks=16)
        tm = gravity_matrix(n, total_gbps=90_000.0, concentration=1.0, seed=3)
        flows = generate_flows(
            tm.demand_gbps, 150, mean_size_gbit=200.0, duration_s=5.0, seed=2
        )

        uniform = SpineFreeFabric.uniform(bs)
        engineered = SpineFreeFabric(bs, engineer_trunks(bs, tm))
        fct_uniform = fct_stats(
            FlowSimulator(uniform, route_demand(uniform, tm)).run(flows)
        )
        fct_engineered = fct_stats(
            FlowSimulator(engineered, route_demand(engineered, tm)).run(flows)
        )
        assert fct_engineered["mean_s"] < fct_uniform["mean_s"]
