"""Tests for repro.dcn.traffic."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.traffic import (
    TrafficMatrix,
    gravity_matrix,
    hotspot_matrix,
    uniform_matrix,
)


class TestTrafficMatrix:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(np.ones((2, 3)))
        with pytest.raises(ConfigurationError):
            TrafficMatrix(np.full((2, 2), -1.0))
        with pytest.raises(ConfigurationError):
            TrafficMatrix(np.ones((2, 2)))  # nonzero diagonal

    def test_scaled_to(self):
        tm = uniform_matrix(4, 10.0).scaled_to(500.0)
        assert tm.total_gbps == pytest.approx(500.0)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_matrix(4).scaled_to(0)

    def test_skew_uniform_is_one(self):
        assert uniform_matrix(8).skew() == pytest.approx(1.0)


class TestGenerators:
    def test_uniform(self):
        tm = uniform_matrix(4, 10.0)
        assert tm.total_gbps == pytest.approx(12 * 10.0)

    def test_gravity_total(self):
        tm = gravity_matrix(8, total_gbps=1000.0, seed=1)
        assert tm.total_gbps == pytest.approx(1000.0)

    def test_gravity_skew_grows_with_concentration(self):
        mild = gravity_matrix(16, 1000.0, concentration=0.5, seed=2)
        heavy = gravity_matrix(16, 1000.0, concentration=2.0, seed=2)
        assert heavy.skew() > mild.skew()

    def test_gravity_zero_concentration_uniform(self):
        tm = gravity_matrix(8, 1000.0, concentration=0.0, seed=3)
        assert tm.skew() == pytest.approx(1.0)

    def test_hotspot_fraction(self):
        tm = hotspot_matrix(8, 1000.0, num_hotspots=2, hotspot_fraction=0.7, seed=4)
        assert tm.total_gbps == pytest.approx(1000.0)
        assert tm.skew() > 5.0

    def test_hotspot_symmetric_elephants(self):
        tm = hotspot_matrix(8, 1000.0, num_hotspots=1, hotspot_fraction=0.9, seed=5)
        d = tm.demand_gbps
        i, j = np.unravel_index(np.argmax(d), d.shape)
        assert d[i, j] == pytest.approx(d[j, i])

    def test_deterministic(self):
        a = gravity_matrix(8, 100.0, seed=6)
        b = gravity_matrix(8, 100.0, seed=6)
        np.testing.assert_array_equal(a.demand_gbps, b.demand_gbps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_matrix(1)
        with pytest.raises(ConfigurationError):
            gravity_matrix(4, 100.0, concentration=-1)
        with pytest.raises(ConfigurationError):
            hotspot_matrix(4, 100.0, num_hotspots=0)
        with pytest.raises(ConfigurationError):
            hotspot_matrix(4, 100.0, hotspot_fraction=1.5)
