"""Tests for repro.dcn.clos and repro.dcn.spinefree."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, TopologyError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.clos import ClosFabric
from repro.dcn.spinefree import SpineFreeFabric, uniform_mesh_trunks


def blocks(n=8, uplinks=16):
    return [AggregationBlock(i, uplinks=uplinks) for i in range(n)]


class TestClos:
    def test_graph_structure(self):
        fabric = ClosFabric(blocks(), num_spines=4)
        g = fabric.graph()
        assert sum(1 for _, d in g.nodes(data=True) if d["kind"] == "spine") == 4
        assert g.number_of_edges() == 8 * 4

    def test_pair_capacity_nonblocking(self):
        fabric = ClosFabric(blocks(), num_spines=4)
        assert fabric.pair_capacity_gbps(0, 1) == 16 * 400.0

    def test_transceiver_count_double_ended(self):
        fabric = ClosFabric(blocks(), num_spines=4)
        assert fabric.transceiver_count() == 2 * 8 * 16

    def test_uplinks_must_divide(self):
        with pytest.raises(ConfigurationError):
            ClosFabric(blocks(uplinks=10), num_spines=4)

    def test_spine_capacity_check(self):
        with pytest.raises(ConfigurationError):
            ClosFabric(blocks(n=8, uplinks=16), num_spines=4, spine_radix=8)


class TestUniformMesh:
    def test_row_budgets_respected(self):
        for n, up in [(8, 16), (64, 64), (5, 7), (16, 30)]:
            t = uniform_mesh_trunks(n, up)
            assert np.array_equal(t, t.T)
            assert np.all(np.diag(t) == 0)
            assert t.sum(axis=1).max() <= up

    def test_even_division_exact(self):
        t = uniform_mesh_trunks(5, 8)
        assert np.all(t[np.eye(5) == 0] == 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_mesh_trunks(1, 8)
        with pytest.raises(ConfigurationError):
            uniform_mesh_trunks(4, 0)


class TestSpineFree:
    def test_uniform_builder(self):
        fabric = SpineFreeFabric.uniform(blocks())
        assert fabric.num_blocks == 8
        assert fabric.capacity_gbps(0, 1) > 0

    def test_capacity_matrix_symmetric(self):
        fabric = SpineFreeFabric.uniform(blocks())
        c = fabric.capacity_matrix_gbps()
        np.testing.assert_allclose(c, c.T)

    def test_single_transceiver_per_uplink(self):
        """The OCS is passive: half the modules of the Clos."""
        bs = blocks()
        clos = ClosFabric(bs, num_spines=4)
        sf = SpineFreeFabric.uniform(bs)
        assert sf.transceiver_count() == clos.transceiver_count() // 2

    def test_ocs_count(self):
        fabric = SpineFreeFabric.uniform(blocks(n=64, uplinks=64))
        assert fabric.ocs_count(ocs_radix=128) == 32

    def test_reconfigure_counts_moves(self):
        fabric = SpineFreeFabric.uniform(blocks(n=4, uplinks=6))
        # A budget-preserving rewiring: strengthen (0,1) and (2,3) by
        # stealing from (0,2) and (1,3).
        new = fabric.trunks.copy()
        for i, j, delta in [(0, 1, 1), (2, 3, 1), (0, 2, -1), (1, 3, -1)]:
            new[i, j] += delta
            new[j, i] += delta
        assert fabric.reconfigure(new) == 4

    def test_reconfigure_rejects_overbudget(self):
        fabric = SpineFreeFabric.uniform(blocks(n=4, uplinks=6))
        bad = fabric.trunks.copy()
        bad[0, 1] += 10
        bad[1, 0] += 10
        before = fabric.trunks.copy()
        with pytest.raises(ConfigurationError):
            fabric.reconfigure(bad)
        np.testing.assert_array_equal(fabric.trunks, before)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpineFreeFabric(blocks(n=2), np.array([[0, 1], [2, 0]]))  # asymmetric
        with pytest.raises(ConfigurationError):
            SpineFreeFabric(blocks(n=2), np.array([[1, 0], [0, 0]]))  # self-trunk
        with pytest.raises(TopologyError):
            SpineFreeFabric.uniform(blocks(n=4)).capacity_gbps(0, 9)

    def test_heterogeneous_pair_rate(self):
        from repro.dcn.blocks import BlockGeneration

        mixed = [
            AggregationBlock(0, uplinks=4, generation=BlockGeneration.GEN_400G),
            AggregationBlock(1, uplinks=4, generation=BlockGeneration.GEN_100G),
        ]
        fabric = SpineFreeFabric(mixed, np.array([[0, 2], [2, 0]]))
        assert fabric.capacity_gbps(0, 1) == 2 * 100.0
