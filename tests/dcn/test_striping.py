"""Tests for repro.dcn.striping (OCS blast radius)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.dcn.spinefree import uniform_mesh_trunks
from repro.dcn.striping import (
    blast_radius_comparison,
    packed_striping,
    round_robin_striping,
)


@pytest.fixture
def trunks():
    return uniform_mesh_trunks(8, 14)  # 2 trunks per pair


class TestPlacementBasics:
    def test_every_trunk_placed(self, trunks):
        total = int(np.asarray(trunks).sum()) // 2
        for scheme in (packed_striping, round_robin_striping):
            plan = scheme(trunks, num_ocses=4, ocs_ports=32)
            placed = sum(len(p) for p in plan.placement.values())
            assert placed == total

    def test_port_budgets_respected(self, trunks):
        plan = round_robin_striping(trunks, num_ocses=4, ocs_ports=16)
        for ocs in range(4):
            assert plan.trunks_on_ocs(ocs) <= 16

    def test_capacity_validation(self, trunks):
        with pytest.raises(ConfigurationError):
            packed_striping(trunks, num_ocses=1, ocs_ports=4)
        with pytest.raises(ConfigurationError):
            round_robin_striping(trunks, num_ocses=0, ocs_ports=4)


class TestBlastRadius:
    def test_packed_concentrates_risk(self, trunks):
        plan = packed_striping(trunks, num_ocses=4, ocs_ports=32)
        # Some pair has all its trunks on one OCS.
        assert plan.worst_pair_loss_fraction() == 1.0

    def test_striped_spreads_risk(self, trunks):
        plan = round_robin_striping(trunks, num_ocses=4, ocs_ports=32)
        # 2 trunks per pair over 4 OCSes: at most 1 lost -> 50%.
        assert plan.worst_pair_loss_fraction() <= 0.5

    def test_comparison_direction(self, trunks):
        radii = blast_radius_comparison(trunks, num_ocses=4, ocs_ports=32)
        assert radii["striped"] < radii["packed"]

    def test_surviving_trunks(self, trunks):
        plan = round_robin_striping(trunks, num_ocses=4, ocs_ports=32)
        pair = next(iter(plan.placement))
        total = len(plan.placement[pair])
        for ocs in range(4):
            surviving = plan.surviving_trunks(pair, ocs)
            assert 0 <= surviving <= total

    @given(st.integers(2, 10), st.integers(4, 20), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_striped_never_worse_property(self, n, uplinks, num_ocses):
        trunks = uniform_mesh_trunks(n, uplinks)
        total = int(np.asarray(trunks).sum()) // 2
        ports = max(1, -(-total // num_ocses)) + 4
        radii = blast_radius_comparison(trunks, num_ocses, ports)
        assert radii["striped"] <= radii["packed"] + 1e-9
