"""Tests for repro.dcn.campus (§1/§6 campus use case)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.campus import CampusStudy, service_epochs
from repro.dcn.traffic import uniform_matrix


def blocks(n=12, uplinks=16):
    return [AggregationBlock(i, uplinks=uplinks) for i in range(n)]


@pytest.fixture(scope="module")
def study():
    bs = blocks()
    epochs = service_epochs(
        12, num_epochs=4, total_gbps=10_000.0, concentration=1.4, seed=2
    )
    return CampusStudy(bs, epochs)


class TestServiceEpochs:
    def test_epoch_count_and_size(self):
        epochs = service_epochs(8, 4, 1000.0)
        assert len(epochs) == 4
        assert all(tm.num_blocks == 8 for tm in epochs)

    def test_epochs_differ(self):
        epochs = service_epochs(8, 2, 1000.0, seed=5)
        assert not (epochs[0].demand_gbps == epochs[1].demand_gbps).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            service_epochs(8, 0, 1000.0)


class TestCampusStudy:
    def test_modes_run(self, study):
        for mode in ("uniform", "static-engineered", "reconfigurable"):
            results = study.run_mode(mode)
            assert len(results) == 4
            assert all(r.admissible_scale > 0 for r in results)

    def test_unknown_mode(self, study):
        with pytest.raises(ConfigurationError):
            study.run_mode("telepathy")

    def test_reconfigurable_moves_circuits(self, study):
        results = study.run_mode("reconfigurable")
        assert results[0].circuits_moved == 0  # first epoch is the build
        assert sum(r.circuits_moved for r in results[1:]) > 0

    def test_static_never_moves(self, study):
        assert all(r.circuits_moved == 0 for r in study.run_mode("static-engineered"))

    def test_reconfigurable_admits_most(self, study):
        comparison = study.compare()
        assert (
            comparison["reconfigurable"]["mean_admissible"]
            >= comparison["static-engineered"]["mean_admissible"]
        )
        assert (
            comparison["reconfigurable"]["mean_admissible"]
            >= comparison["uniform"]["mean_admissible"]
        )

    def test_reconfigurable_beats_frozen_per_epoch(self, study):
        """Re-engineering each epoch never loses to the frozen build."""
        frozen = study.run_mode("static-engineered")
        live = study.run_mode("reconfigurable")
        for f, l in zip(frozen, live):
            assert l.admissible_scale >= f.admissible_scale - 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampusStudy(blocks(n=1), [uniform_matrix(2)])
        with pytest.raises(ConfigurationError):
            CampusStudy(blocks(n=4), [])
        with pytest.raises(ConfigurationError):
            CampusStudy(blocks(n=4), [uniform_matrix(6)])
