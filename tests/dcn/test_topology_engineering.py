"""Tests for repro.dcn.topology_engineering."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.spinefree import SpineFreeFabric, uniform_mesh_trunks
from repro.dcn.topology_engineering import direct_hit_fraction, engineer_trunks
from repro.dcn.traffic import gravity_matrix, hotspot_matrix, uniform_matrix


def blocks(n=8, uplinks=16):
    return [AggregationBlock(i, uplinks=uplinks) for i in range(n)]


class TestEngineerTrunks:
    def test_respects_budgets(self):
        bs = blocks()
        tm = gravity_matrix(8, 5000.0, seed=1)
        trunks = engineer_trunks(bs, tm)
        assert trunks.sum(axis=1).max() <= 16
        assert np.array_equal(trunks, trunks.T)
        assert np.all(np.diag(trunks) == 0)

    def test_valid_fabric(self):
        bs = blocks()
        tm = gravity_matrix(8, 5000.0, seed=1)
        fabric = SpineFreeFabric(bs, engineer_trunks(bs, tm))
        assert fabric.num_blocks == 8

    def test_hot_pair_gets_more_trunks(self):
        bs = blocks()
        tm = hotspot_matrix(8, 5000.0, num_hotspots=1, hotspot_fraction=0.8, seed=2)
        trunks = engineer_trunks(bs, tm)
        d = tm.demand_gbps + tm.demand_gbps.T
        i, j = np.unravel_index(np.argmax(d), d.shape)
        off_diag = trunks[np.eye(8) == 0]
        assert trunks[i, j] == off_diag.max()
        assert trunks[i, j] > uniform_mesh_trunks(8, 16)[i, j]

    def test_uniform_demand_yields_near_uniform_trunks(self):
        bs = blocks()
        trunks = engineer_trunks(bs, uniform_matrix(8, 10.0))
        off = trunks[np.eye(8) == 0]
        # Greedy tie-breaking leaves at most a 2-trunk spread.
        assert off.max() - off.min() <= 2
        assert np.all(trunks.sum(axis=1) == 16)

    def test_connectivity_floor(self):
        bs = blocks()
        tm = hotspot_matrix(8, 5000.0, num_hotspots=1, hotspot_fraction=0.99, seed=3)
        trunks = engineer_trunks(bs, tm, min_trunks_per_pair=1)
        assert np.all(trunks[np.eye(8) == 0] >= 1)

    def test_zero_floor_allows_dark_pairs(self):
        bs = blocks()
        tm = hotspot_matrix(8, 5000.0, num_hotspots=1, hotspot_fraction=0.99, seed=3)
        trunks = engineer_trunks(bs, tm, min_trunks_per_pair=0)
        assert (trunks[np.eye(8) == 0] == 0).any()

    def test_floor_infeasible_rejected(self):
        bs = blocks(n=8, uplinks=4)
        with pytest.raises(ConfigurationError):
            engineer_trunks(bs, uniform_matrix(8), min_trunks_per_pair=1)

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            engineer_trunks(blocks(n=8), uniform_matrix(4))


class TestDirectHit:
    def test_full_mesh_hits_everything(self):
        trunks = uniform_mesh_trunks(8, 16)
        assert direct_hit_fraction(trunks, uniform_matrix(8)) == 1.0

    def test_dark_pairs_counted(self):
        trunks = np.zeros((4, 4), dtype=int)
        trunks[0, 1] = trunks[1, 0] = 4
        tm = uniform_matrix(4, 10.0)
        frac = direct_hit_fraction(trunks, tm)
        assert frac == pytest.approx(2 / 12)
