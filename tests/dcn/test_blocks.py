"""Tests for repro.dcn.blocks."""

import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock, BlockGeneration


class TestAggregationBlock:
    def test_uplink_bandwidth(self):
        ab = AggregationBlock(0, uplinks=64, generation=BlockGeneration.GEN_400G)
        assert ab.uplink_rate_gbps == 400.0
        assert ab.total_uplink_gbps == 64 * 400.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AggregationBlock(-1)
        with pytest.raises(ConfigurationError):
            AggregationBlock(0, uplinks=0)


class TestHeterogeneousInterop:
    """§2.1 rapid technology refresh: cross-generation links."""

    def test_400g_links_100g(self):
        new = AggregationBlock(0, generation=BlockGeneration.GEN_400G)
        old = AggregationBlock(1, generation=BlockGeneration.GEN_100G)
        assert new.can_link(old)
        # Link negotiates down to 25G per lane x 4 lanes.
        assert new.link_rate_gbps(old) == 100.0

    def test_same_generation_full_rate(self):
        a = AggregationBlock(0, generation=BlockGeneration.GEN_400G)
        b = AggregationBlock(1, generation=BlockGeneration.GEN_400G)
        assert a.link_rate_gbps(b) == 400.0

    def test_40g_cannot_link_400g(self):
        ancient = AggregationBlock(0, generation=BlockGeneration.GEN_40G)
        new = AggregationBlock(1, generation=BlockGeneration.GEN_400G)
        assert not ancient.can_link(new)
        with pytest.raises(ConfigurationError):
            ancient.link_rate_gbps(new)

    def test_adjacent_generations_chain(self):
        """Each generation interoperates with its neighbor."""
        gens = [
            BlockGeneration.GEN_100G,
            BlockGeneration.GEN_200G,
            BlockGeneration.GEN_400G,
        ]
        for a, b in zip(gens, gens[1:]):
            assert AggregationBlock(0, generation=a).can_link(
                AggregationBlock(1, generation=b)
            )
