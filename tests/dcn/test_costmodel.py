"""Tests for repro.dcn.costmodel (Fig 1 reproduction target)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.clos import ClosFabric
from repro.dcn.costmodel import DcnCostModel
from repro.dcn.spinefree import SpineFreeFabric


@pytest.fixture(scope="module")
def fabrics():
    blocks = [AggregationBlock(i, uplinks=64) for i in range(64)]
    return ClosFabric(blocks, num_spines=16), SpineFreeFabric.uniform(blocks)


class TestFig1:
    def test_capex_saving_30_percent(self, fabrics):
        """Paper: spine-free saves ~30% CapEx."""
        clos, sf = fabrics
        savings = DcnCostModel().savings(clos, sf)
        assert savings["capex_saving"] == pytest.approx(0.30, abs=0.02)

    def test_power_saving_41_percent(self, fabrics):
        """Paper: spine-free saves ~41% power."""
        clos, sf = fabrics
        savings = DcnCostModel().savings(clos, sf)
        assert savings["power_saving"] == pytest.approx(0.41, abs=0.02)

    def test_savings_positive_components(self, fabrics):
        clos, sf = fabrics
        model = DcnCostModel()
        assert model.spinefree_cost_usd(sf) < model.clos_cost_usd(clos)
        assert model.spinefree_power_w(sf) < model.clos_power_w(clos)

    def test_ocs_power_negligible(self, fabrics):
        """OCS does no packet processing: a fraction of spine power."""
        clos, sf = fabrics
        model = DcnCostModel()
        ocs_power = sf.ocs_count() * model.ocs_power_w
        spine_power = clos.spine_switch_count() * model.spine_chassis_power_w
        assert ocs_power < spine_power / 20

    def test_block_count_mismatch(self, fabrics):
        clos, _ = fabrics
        small = SpineFreeFabric.uniform(
            [AggregationBlock(i, uplinks=8) for i in range(4)]
        )
        with pytest.raises(ConfigurationError):
            DcnCostModel().savings(clos, small)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DcnCostModel(transceiver_cost_usd=0)
