"""Tests for repro.dcn.traffic_engineering."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.dcn.blocks import AggregationBlock
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import TrafficMatrix, gravity_matrix, uniform_matrix
from repro.dcn.traffic_engineering import (
    average_hop_count,
    max_servable_scale,
    route_demand,
)


def blocks(n=8, uplinks=16):
    return [AggregationBlock(i, uplinks=uplinks) for i in range(n)]


@pytest.fixture
def fabric():
    return SpineFreeFabric.uniform(blocks())


class TestRouting:
    def test_light_demand_fully_served(self, fabric):
        tm = uniform_matrix(8, 50.0)
        sol = route_demand(fabric, tm)
        assert sol.throughput_fraction == pytest.approx(1.0)
        assert sol.residual_gbps.sum() == pytest.approx(0.0)

    def test_direct_preferred(self, fabric):
        tm = uniform_matrix(8, 50.0)
        sol = route_demand(fabric, tm)
        assert average_hop_count(sol) == pytest.approx(1.0)

    def test_transit_used_when_direct_full(self, fabric):
        # One hot pair beyond its direct capacity.
        d = np.zeros((8, 8))
        d[0, 1] = fabric.capacity_gbps(0, 1) * 2
        sol = route_demand(fabric, TrafficMatrix(d))
        assert sol.throughput_fraction > 0.9
        assert average_hop_count(sol) > 1.0
        transit_paths = [p for p, _ in sol.path_for(0, 1) if len(p) == 3]
        assert transit_paths

    def test_load_never_exceeds_capacity(self, fabric):
        tm = gravity_matrix(8, 40_000.0, concentration=1.5, seed=1)
        sol = route_demand(fabric, tm)
        assert np.all(sol.link_load_gbps <= sol.link_capacity_gbps + 1e-6)
        assert sol.max_link_utilization <= 1.0 + 1e-9

    def test_overload_leaves_residual(self, fabric):
        tm = uniform_matrix(8, 1e6)
        sol = route_demand(fabric, tm)
        assert sol.residual_gbps.sum() > 0
        assert sol.throughput_fraction < 1.0

    def test_size_mismatch(self, fabric):
        with pytest.raises(ConfigurationError):
            route_demand(fabric, uniform_matrix(4))

    def test_bad_chunk(self, fabric):
        with pytest.raises(ConfigurationError):
            route_demand(fabric, uniform_matrix(8), transit_chunk_gbps=0)


class TestMaxServableScale:
    def test_engineered_admits_more(self):
        bs = blocks()
        tm = gravity_matrix(8, 10_000.0, concentration=1.2, seed=3)
        uniform = SpineFreeFabric.uniform(bs)
        engineered = SpineFreeFabric(bs, engineer_trunks(bs, tm))
        assert max_servable_scale(engineered, tm) >= max_servable_scale(uniform, tm)

    def test_scale_positive_for_light_demand(self, fabric):
        tm = uniform_matrix(8, 1.0)
        assert max_servable_scale(fabric, tm) > 1.0

    def test_validation(self, fabric):
        with pytest.raises(ConfigurationError):
            max_servable_scale(fabric, uniform_matrix(8), tolerance=0)
