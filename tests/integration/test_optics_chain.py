"""Integration: the full optical chain from transceiver to post-FEC BER.

Threads one bidi link through every optics-layer module: transceiver
spec -> fabric path (with a real OCS's sampled losses) -> MPI estimate ->
PAM4 BER -> OIM -> concatenated FEC -> error-free verdict.
"""

import pytest

from repro.fabric.path import OpticalPath
from repro.ocs.palomar import PalomarOcs
from repro.optics.ber import receiver_sensitivity_dbm
from repro.optics.fec import ERROR_FREE_BER, ConcatenatedFec
from repro.optics.fiber import FiberSpan
from repro.optics.link_budget import LinkBudget
from repro.optics.oim import OimDsp
from repro.optics.pam4 import Pam4LinkModel
from repro.optics.transceiver import transceiver


@pytest.fixture(scope="module")
def ocs():
    return PalomarOcs.build(seed=33)


@pytest.fixture(scope="module")
def path(ocs):
    spec = transceiver("bidi_2x400g_cwdm4")
    return OpticalPath.through_ocs(
        spec,
        ocs_insertion_loss_db=ocs.insertion_loss_db(10, 77),
        ocs_return_loss_db=ocs.optics.worst_path_reflection_db(10, 77),
        fiber=FiberSpan(length_m=60.0),
    )


class TestChain:
    def test_budget_and_path_agree_on_loss(self, ocs):
        """LinkBudget and OpticalPath compute the same total loss."""
        spec = transceiver("bidi_2x400g_cwdm4")
        il = ocs.insertion_loss_db(10, 77)
        budget = LinkBudget.for_fabric_path(
            spec, ocs_insertion_loss_db=il,
            fiber_spans=[FiberSpan(length_m=60.0), FiberSpan(length_m=60.0)],
        )
        path = OpticalPath.through_ocs(
            spec, ocs_insertion_loss_db=il, ocs_return_loss_db=-46.0,
            fiber=FiberSpan(length_m=60.0),
        )
        assert budget.total_loss_db == pytest.approx(path.total_loss_db)

    def test_link_is_error_free_end_to_end(self, path):
        """Received power -> slicer BER -> FEC output below 1e-13."""
        model = path.ber_model(oim_suppression_db=OimDsp().suppression_db)
        slicer_ber = model.ber(path.received_power_dbm)
        post_fec = ConcatenatedFec().post_fec_ber(slicer_ber)
        assert post_fec < ERROR_FREE_BER

    def test_margin_against_fec_assisted_sensitivity(self, path):
        """The FEC-relaxed sensitivity gives more margin than the plain one."""
        model = path.ber_model()
        plain = receiver_sensitivity_dbm(model, 2e-4)
        relaxed = receiver_sensitivity_dbm(
            model, ConcatenatedFec().inner_input_threshold()
        )
        assert relaxed < plain
        assert path.received_power_dbm - relaxed > path.received_power_dbm - plain

    def test_dispersion_negligible_at_datacenter_reach(self):
        """60 m spans add no meaningful dispersion penalty at 50G PAM4."""
        span = FiberSpan(length_m=60.0)
        assert span.dispersion_penalty_db(1271.0, 26.5) < 0.01

    def test_removing_oim_still_converges_through_fec(self, path):
        model = path.ber_model(oim_suppression_db=0.0)
        slicer_ber = model.ber(path.received_power_dbm)
        # Without OIM the slicer BER rises but the concatenated FEC holds
        # for this well-engineered path.
        assert ConcatenatedFec().post_fec_ber(slicer_ber) < ERROR_FREE_BER

    def test_bad_path_detected(self, ocs):
        """A path with big excess loss fails the budget check."""
        spec = transceiver("bidi_2x400g_cwdm4")
        budget = LinkBudget.for_fabric_path(
            spec, ocs_insertion_loss_db=2.0,
            fiber_spans=[FiberSpan(length_m=20_000.0, connectors=12)],
        )
        assert not budget.closes
