"""Property-based invariants of the superpod fabric state.

Hypothesis drives random sequences of slice configure/release/swap
operations and checks the invariants the control plane must never break:

- every OCS state stays a partial bijection;
- the 16 OCSes of one dimension always carry identical cube patterns;
- total circuits == 48 * allocated cubes;
- allocated/free cube sets partition the pod.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.core.ids import CubeId, OcsId, SliceId
from repro.tpu.cube import DIMS, FACE_PORTS
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod, ocs_index


@st.composite
def operations(draw):
    """Random op sequences over a 16-cube pod."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("configure"),
                    st.integers(0, 7),  # slice tag
                    st.integers(0, 15),  # first cube
                    st.sampled_from([(1, 1, 1), (1, 1, 2), (1, 2, 2), (1, 1, 4)]),
                ),
                st.tuples(st.just("release"), st.integers(0, 7)),
                st.tuples(st.just("swap"), st.integers(0, 7), st.integers(0, 15)),
            ),
            max_size=12,
        )
    )
    return ops


def check_invariants(pod: Superpod) -> None:
    # 1. Bijection on every switch.
    for i in range(48):
        assert pod.manager.switch(OcsId(i)).state.is_bijective()
    # 2. Dimension replication: all 16 OCSes of a dim agree.
    for dim in DIMS:
        reference = pod.manager.switch(OcsId(ocs_index(dim, 0))).state.circuits
        for pos in range(1, FACE_PORTS):
            other = pod.manager.switch(OcsId(ocs_index(dim, pos))).state.circuits
            assert other == reference
    # 3. Circuit accounting.
    allocated = len(pod.allocated_cubes())
    assert pod.total_circuits() == 48 * allocated
    # 4. Partition.
    assert pod.allocated_cubes().isdisjoint(pod.free_cubes())
    assert len(pod.allocated_cubes()) + len(pod.free_cubes()) == pod.num_cubes


class TestSuperpodInvariants:
    @given(operations())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_under_any_sequence(self, ops):
        pod = Superpod(num_cubes=16)
        for op in ops:
            try:
                if op[0] == "configure":
                    _, tag, first, shape = op
                    n = shape[0] * shape[1] * shape[2]
                    cubes = [CubeId((first + i) % 16) for i in range(n)]
                    topo = SliceTopology.compose(SliceId(f"s{tag}"), shape, cubes)
                    pod.configure_slice(topo)
                elif op[0] == "release":
                    pod.release_slice(SliceId(f"s{op[1]}"))
                else:
                    _, tag, cube = op
                    pod.swap_cube(SliceId(f"s{tag}"), CubeId(cube))
            except ReproError:
                pass  # rejected operations must not corrupt state
            check_invariants(pod)

    @given(st.permutations(list(range(8))))
    @settings(max_examples=20, deadline=None)
    def test_release_order_independent(self, order):
        """Configuring 8 single-cube slices and releasing in any order
        always drains the fabric completely."""
        pod = Superpod(num_cubes=8)
        for i in range(8):
            pod.configure_slice(
                SliceTopology.compose(SliceId(f"s{i}"), (1, 1, 1), [CubeId(i)])
            )
        for i in order:
            pod.release_slice(SliceId(f"s{i}"))
            check_invariants(pod)
        assert pod.total_circuits() == 0
