"""Integration: scheduler + availability + qualification working together.

Scenario tests crossing the scheduler, the availability model, the
superpod, and spare-port qualification -- the operational loop of
§4.2.2-§4.2.4.
"""

import pytest

from repro.availability.goodput import cube_availability, spares_for_slice
from repro.core.ids import CubeId, JobId, SliceId
from repro.fabric.qualification import LinkQualifier, QualificationGrade
from repro.ocs.palomar import PalomarOcs
from repro.scheduler.allocator import ReconfigurableAllocator
from repro.scheduler.requests import JobRequest
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


class TestSparesMatchSchedulerBehaviour:
    def test_analytic_spares_cover_simulated_failures(self):
        """A slice sized by the goodput model survives injected failures
        in the scheduler simulation."""
        a_cube = cube_availability(0.995)
        spares = spares_for_slice(8, a_cube)
        pod = Superpod(num_cubes=8 + spares + 2)
        alloc = ReconfigurableAllocator(pod)
        job = JobRequest(JobId("big"), cubes=8, duration_s=50_000.0, arrival_s=0.0)
        sim = SchedulerSimulation(
            alloc,
            cube_failure_rate_per_s=1 / 300_000.0,
            repair_s=30_000.0,
            seed=3,
        )
        metrics = sim.run([job])
        assert metrics.completed == 1
        assert metrics.failures_injected > 0
        # Every failure that hit the slice was absorbed by a swap.
        assert metrics.requeued_after_failure == 0
        assert metrics.survived_failures > 0

    def test_degraded_pod_still_schedules(self):
        """Held-back (failed) cubes shrink capacity; jobs still place."""
        pod = Superpod(num_cubes=16)
        for i in (2, 7, 11):
            pod.cube(CubeId(i)).fail_host(0)
        alloc = ReconfigurableAllocator(pod)
        job = JobRequest(JobId("j"), cubes=13, duration_s=10.0, arrival_s=0.0)
        assert alloc.try_allocate(job) is not None
        assert alloc.try_allocate(
            JobRequest(JobId("k"), cubes=1, duration_s=10.0, arrival_s=0.0)
        ) is None  # only failed cubes remain


class TestQualificationBeforeService:
    def test_only_qualified_ports_carry_slices(self):
        """The deployment loop: qualify a cube's ports, then connect."""
        ocs = PalomarOcs.build(seed=55)
        qualifier = LinkQualifier(ocs, seed=2)
        results = qualifier.qualify_ports(range(8))
        good = results[QualificationGrade.PASS]
        assert good
        # Production circuits go only on PASS ports.
        south = 64
        for port in good:
            ocs.connect(port, south)
            south += 1
        assert ocs.state.num_circuits == len(good)
        # The spares stayed free for the next qualification round.
        report = qualifier.qualify(60, plant_excess_db=0.0)
        assert report.grade is QualificationGrade.PASS


class TestSwapPreservesTopologyShape:
    def test_swap_keeps_ring_structure(self):
        pod = Superpod(num_cubes=12)
        topo = SliceTopology.compose(
            SliceId("s"), (1, 2, 4), [CubeId(i) for i in range(8)]
        )
        pod.configure_slice(topo)
        pod.cube(CubeId(5)).fail_host(0)
        new_topo = pod.swap_cube(SliceId("s"), CubeId(5))
        assert new_topo.shape_cubes == (1, 2, 4)
        assert len(new_topo.inter_cube_links()) == len(topo.inter_cube_links())
        # Same logical coordinate, different physical cube.
        old_coord = [c for c, cid in topo.assignment if cid == CubeId(5)][0]
        assert new_topo.cube_at(old_coord) != CubeId(5)
