"""Integration: the full DCN pipeline with conservation invariants.

Blocks -> cost comparison -> traffic -> topology engineering -> routing
-> flows, with hypothesis-checked conservation laws on the router.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dcn.blocks import AggregationBlock, BlockGeneration
from repro.dcn.clos import ClosFabric
from repro.dcn.costmodel import DcnCostModel
from repro.dcn.flowsim import FlowSimulator, fct_stats, generate_flows
from repro.dcn.spinefree import SpineFreeFabric
from repro.dcn.topology_engineering import engineer_trunks
from repro.dcn.traffic import gravity_matrix
from repro.dcn.traffic_engineering import route_demand


def blocks(n=8, uplinks=16):
    return [AggregationBlock(i, uplinks=uplinks) for i in range(n)]


class TestPipeline:
    def test_full_pipeline_runs(self):
        bs = blocks()
        clos = ClosFabric(bs, num_spines=4)
        tm = gravity_matrix(8, 10_000.0, seed=1)
        engineered = SpineFreeFabric(bs, engineer_trunks(bs, tm))
        savings = DcnCostModel().savings(clos, engineered)
        assert savings["capex_saving"] > 0
        routing = route_demand(engineered, tm)
        flows = generate_flows(tm.demand_gbps, 30, seed=2)
        records = FlowSimulator(engineered, routing).run(flows)
        assert len(records) == 30
        assert fct_stats(records)["mean_s"] > 0

    def test_wcmp_policy_spreads_flows(self):
        bs = blocks()
        tm = gravity_matrix(8, 60_000.0, concentration=1.5, seed=4)
        fabric = SpineFreeFabric.uniform(bs)
        routing = route_demand(fabric, tm)
        flows = generate_flows(tm.demand_gbps, 60, seed=5)
        primary = FlowSimulator(fabric, routing, path_policy="primary").run(flows)
        wcmp = FlowSimulator(fabric, routing, path_policy="wcmp", seed=6).run(flows)
        assert len(primary) == len(wcmp) == 60
        # WCMP spreads hot-pair flows over transit paths: at least some
        # flow finishes at a different time than under primary routing.
        assert any(
            abs(a.fct_s - b.fct_s) > 1e-9 for a, b in zip(primary, wcmp)
        )

    def test_heterogeneous_fabric_end_to_end(self):
        """Mixed-generation ABs interconnect at negotiated rates (§2.1)."""
        mixed = [
            AggregationBlock(0, uplinks=8, generation=BlockGeneration.GEN_400G),
            AggregationBlock(1, uplinks=8, generation=BlockGeneration.GEN_200G),
            AggregationBlock(2, uplinks=8, generation=BlockGeneration.GEN_400G),
            AggregationBlock(3, uplinks=8, generation=BlockGeneration.GEN_100G),
        ]
        fabric = SpineFreeFabric.uniform(mixed)
        # The 400G<->400G pair runs 4x the 400G<->100G rate.
        assert fabric.capacity_gbps(0, 2) == 4 * fabric.capacity_gbps(0, 3) / (
            fabric.trunks[0, 3] / fabric.trunks[0, 2]
        )
        tm = gravity_matrix(4, 2_000.0, seed=7)
        routing = route_demand(fabric, tm)
        assert routing.throughput_fraction > 0.9


class TestConservationProperties:
    @given(
        seed=st.integers(0, 50),
        concentration=st.floats(0.2, 2.0),
        total=st.floats(1_000.0, 80_000.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_router_conserves_demand(self, seed, concentration, total):
        """served + residual == demand, elementwise, always."""
        bs = blocks()
        tm = gravity_matrix(8, total, concentration=concentration, seed=seed)
        sol = route_demand(SpineFreeFabric.uniform(bs), tm)
        np.testing.assert_allclose(
            sol.served_gbps + sol.residual_gbps, tm.demand_gbps, rtol=1e-9, atol=1e-6
        )

    @given(seed=st.integers(0, 50), total=st.floats(1_000.0, 120_000.0))
    @settings(max_examples=25, deadline=None)
    def test_router_respects_capacity(self, seed, total):
        bs = blocks()
        tm = gravity_matrix(8, total, concentration=1.0, seed=seed)
        fabric = SpineFreeFabric(bs, engineer_trunks(bs, tm))
        sol = route_demand(fabric, tm)
        assert np.all(sol.link_load_gbps <= sol.link_capacity_gbps + 1e-6)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_engineering_preserves_budgets(self, seed):
        bs = blocks()
        tm = gravity_matrix(8, 30_000.0, concentration=1.3, seed=seed)
        trunks = engineer_trunks(bs, tm)
        assert np.array_equal(trunks, trunks.T)
        assert trunks.sum(axis=1).max() <= 16
        assert np.all(trunks >= 0)
