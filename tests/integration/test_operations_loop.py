"""Integration: the full operations loop on one switch.

Qualification -> production -> telemetry -> repair -> FRU swap, end to
end on a single Palomar device -- the `examples/fleet_operations.py`
scenario, pinned by assertions.
"""

import pytest

from repro.fabric.qualification import LinkQualifier, QualificationGrade
from repro.fabric.repair import RepairLoop
from repro.ocs.palomar import PALOMAR_USABLE_PORTS, PalomarOcs


@pytest.fixture
def ocs():
    return PalomarOcs.build(seed=8)


class TestOperationsLoop:
    def test_qualify_then_serve_then_repair(self, ocs):
        qualifier = LinkQualifier(ocs, seed=4)
        results = qualifier.qualify_ports(range(16))
        good = results[QualificationGrade.PASS]
        assert len(good) >= 10

        south = 64
        circuits = []
        for port in good[:6]:
            ocs.connect(port, south)
            circuits.append((port, south))
            south += 1

        loop = RepairLoop(ocs)
        loop.scan()
        victim_n, victim_s = circuits[0]
        loop.degrade_circuit(victim_n, victim_s, extra_db=1.0)
        actions = loop.run_once()
        assert len(actions) == 1
        assert actions[0].new_circuit[1] >= PALOMAR_USABLE_PORTS
        # All six circuits still up (one on a spare).
        assert ocs.state.num_circuits == 6

    def test_repair_does_not_disturb_neighbors(self, ocs):
        loop = RepairLoop(ocs)
        ocs.connect(0, 64)
        ocs.connect(1, 65)
        ocs.connect(2, 66)
        loop.scan()
        loop.degrade_circuit(1, 65, extra_db=1.2)
        loop.run_once()
        assert ocs.state.south_of(0) == 64
        assert ocs.state.south_of(2) == 66
        assert ocs.state.south_of(1) != 65

    def test_board_swap_then_remake(self, ocs):
        for i in range(4):
            ocs.connect(i + 20, 68 + i)
        dropped = ocs.fail_driver_board("south", 4)  # S68..S84
        assert len(dropped) == 4
        ocs.replace_driver_board("south", 4)
        for north, south in dropped:
            ocs.connect(north, south)
        assert ocs.state.num_circuits == 4
        assert ocs.is_healthy

    def test_qualification_uses_distinct_spares_concurrently(self, ocs):
        """Multiple in-flight qualifications would need distinct spares;
        sequential ones reuse the first free spare."""
        qualifier = LinkQualifier(ocs, seed=1)
        r1 = qualifier.qualify(0, plant_excess_db=0.0)
        r2 = qualifier.qualify(1, plant_excess_db=0.0)
        # Sequential tests free the spare in between.
        assert r1.spare == r2.spare

    def test_marginal_port_can_be_recleaned(self, ocs):
        """A MARGINAL verdict (dirty connector) clears after cleaning."""
        qualifier = LinkQualifier(ocs, seed=2)
        dirty = qualifier.qualify(5, plant_excess_db=1.0)
        assert dirty.grade is QualificationGrade.MARGINAL
        cleaned = qualifier.qualify(5, plant_excess_db=0.05)
        assert cleaned.grade is QualificationGrade.PASS
