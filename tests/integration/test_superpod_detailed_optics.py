"""Integration: the superpod on full Palomar device models.

Runs the slice machinery against 48 real :class:`PalomarOcs` instances
(MEMS mirrors, drivers, optics) instead of map-only switches, checking
that the control plane and the device physics stay consistent.
"""

import pytest

from repro.core.ids import CubeId, OcsId, SliceId
from repro.ocs.mirror import MirrorState
from repro.ocs.palomar import PalomarOcs
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import NUM_OCSES, Superpod, ocs_index


@pytest.fixture(scope="module")
def pod():
    pod = Superpod(detailed_optics=True, seed=5)
    topo = SliceTopology.compose(
        SliceId("train"), (2, 2, 2), [CubeId(i) for i in range(8)]
    )
    pod.configure_slice(topo)
    return pod


class TestDeviceConsistency:
    def test_all_switches_are_palomar(self, pod):
        for i in range(NUM_OCSES):
            assert isinstance(pod.manager.switch(OcsId(i)), PalomarOcs)

    def test_circuits_programmed_on_devices(self, pod):
        # 8 cubes x 3 dims x 16 face positions = 384 circuits.
        assert pod.total_circuits() == 8 * NUM_OCSES

    def test_mirrors_steered(self, pod):
        device = pod.manager.switch(OcsId(ocs_index("x", 0)))
        for north, south in device.state.circuits:
            assert device.array_north.mirror_for_port(north).state is MirrorState.ACTIVE
            assert device.array_north.mirror_for_port(north).target_port == south

    def test_circuit_losses_within_budget(self, pod):
        device = pod.manager.switch(OcsId(ocs_index("y", 3)))
        for north, south in device.state.circuits:
            assert device.insertion_loss_db(north, south) < 3.5

    def test_alignment_telemetry_recorded(self, pod):
        device = pod.manager.switch(OcsId(0))
        assert device.telemetry.alignment_runs >= device.state.num_circuits
        assert device.telemetry.mean_alignment_iterations > 0

    def test_power_reflects_circuits(self, pod):
        device = pod.manager.switch(OcsId(0))
        idle = PalomarOcs.build(seed=99)
        assert device.power_w() > idle.power_w()


class TestFailureRipple:
    def test_driver_board_failure_breaks_slice_circuits(self):
        pod = Superpod(detailed_optics=True, seed=6)
        topo = SliceTopology.compose(
            SliceId("s"), (1, 1, 4), [CubeId(i) for i in range(4)]
        )
        pod.configure_slice(topo)
        device = pod.manager.switch(OcsId(ocs_index("z", 0)))
        before = device.state.num_circuits
        dropped = device.fail_driver_board("north", 0)  # covers cubes 0..16
        assert dropped  # the slice's circuits sat on those channels
        assert device.state.num_circuits < before
        # The fabric manager notices the inconsistency on verify.
        assert pod.manager.verify_links() == ()  # slices are not logical links
        # Repair and re-make through a fresh reconfiguration.
        device.replace_driver_board("north", 0)
        pod.release_slice(SliceId("s"))
        pod.configure_slice(topo)
        assert device.state.num_circuits == before
