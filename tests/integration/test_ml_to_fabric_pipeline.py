"""Integration: shape search -> slice composition -> fabric programming.

The full ML flow of §4.2.1: the optimizer picks a slice shape for a
model, the scheduler converts it to cubes and composes the slice, and the
fabric realizes the matching torus -- checked down to the ring structure.
"""

import pytest

from repro.core.ids import CubeId, SliceId
from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import SliceShapeSearch
from repro.tpu.routing import torus_bisection_links
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


@pytest.fixture(scope="module")
def search():
    return SliceShapeSearch(TrainingStepModel())


class TestSearchToSlice:
    def test_llm1_shape_composes_on_pod(self, search):
        result = search.search(LLM_ZOO["llm1"])
        cube_shape = SliceTopology.chip_shape_to_cube_shape(result.best_shape)
        assert cube_shape == (1, 1, 64)
        pod = Superpod()
        topo = SliceTopology.compose(
            SliceId("llm1"), cube_shape, [CubeId(i) for i in range(64)]
        )
        pod.configure_slice(topo)
        assert topo.chip_shape == result.best_shape
        # The z-dimension chains all 64 cubes into one ring.
        rings = topo.rings("z")
        assert len(rings) == 1 and len(rings[0]) == 64
        # x and y are intra-cube only: self-loops on the fabric.
        assert all(n == s for n, s in pod.circuits_for_dim("x"))

    def test_llm0_shape_composes(self, search):
        result = search.search(LLM_ZOO["llm0"])
        cube_shape = SliceTopology.chip_shape_to_cube_shape(result.best_shape)
        assert cube_shape == (2, 4, 8)
        pod = Superpod()
        topo = SliceTopology.compose(
            SliceId("llm0"), cube_shape, [CubeId(i) for i in range(64)]
        )
        pod.configure_slice(topo)
        assert pod.utilization() == 1.0
        assert len(topo.rings("x")) == 32  # 4*8 lines of length 2

    def test_baseline_has_max_bisection(self, search):
        """The 16x16x16 baseline maximizes bisection -- and the search's
        winner for LLM2 coincides with it."""
        result = search.search(LLM_ZOO["llm2"])
        assert torus_bisection_links(result.best_shape) == max(
            torus_bisection_links(s)
            for s in [(16, 16, 16), (8, 16, 32), (4, 4, 256)]
        )

    def test_plan_feasible_on_composed_slice(self, search):
        """The parallelism plan's chip count matches the composed slice."""
        result = search.search(LLM_ZOO["llm0"])
        plan = ParallelismPlan.for_shape(LLM_ZOO["llm0"], result.best_shape)
        cube_shape = SliceTopology.chip_shape_to_cube_shape(result.best_shape)
        topo = SliceTopology.compose(
            SliceId("x"), cube_shape, [CubeId(i) for i in range(64)]
        )
        assert plan.num_chips == topo.num_chips == 4096


class TestTwoModelsShareThePod:
    def test_half_pod_each(self, search):
        """Two jobs with different shapes coexist with full isolation."""
        pod = Superpod()
        a = SliceTopology.compose(
            SliceId("a"), (1, 1, 32), [CubeId(i) for i in range(32)]
        )
        b = SliceTopology.compose(
            SliceId("b"), (2, 4, 4), [CubeId(i) for i in range(32, 64)]
        )
        pod.configure_slice(a)
        circuits_after_a = {
            dim: set(pod.circuits_for_dim(dim)) for dim in ("x", "y", "z")
        }
        pod.configure_slice(b)
        for dim in ("x", "y", "z"):
            assert circuits_after_a[dim] <= pod.circuits_for_dim(dim)
        assert pod.utilization() == 1.0
        # Releasing b leaves a untouched.
        pod.release_slice(SliceId("b"))
        for dim in ("x", "y", "z"):
            assert pod.circuits_for_dim(dim) == circuits_after_a[dim]
