"""Tests for repro.fabric.verification."""

import pytest

from repro.core.ids import OcsId
from repro.fabric.lightwave import LightwaveFabric
from repro.fabric.verification import FabricVerifier, LinkHealth


@pytest.fixture
def fabric():
    f = LightwaveFabric()
    f.add_ocs(OcsId(0))
    for name in ("a", "b", "c", "d"):
        f.add_endpoint(name, num_ports=2)
    f.wire_full_mesh(OcsId(0))
    f.connect("a", "b")
    f.connect("c", "d")
    return f


class TestVerification:
    def test_healthy_links(self, fabric):
        verifier = FabricVerifier(fabric)
        reports = verifier.verify_all()
        assert len(reports) == 2
        assert all(r.health is LinkHealth.HEALTHY for r in reports)

    def test_summary_counts(self, fabric):
        healthy, degraded, failed = FabricVerifier(fabric).summary()
        assert (healthy, degraded, failed) == (2, 0, 0)

    def test_missing_circuit_failed(self, fabric):
        # Break the circuit out-of-band.
        link = fabric.manager.link(fabric.link_name("a", "b"))
        fabric.ocs(OcsId(0)).state.disconnect(link.north)
        report = FabricVerifier(fabric).verify_link("a", "b")
        assert report.health is LinkHealth.FAILED
        assert "missing" in report.detail

    def test_degraded_on_thin_margin(self, fabric):
        verifier = FabricVerifier(fabric, min_margin_db=50.0)
        report = verifier.verify_link("a", "b")
        assert report.health is LinkHealth.DEGRADED

    def test_failed_on_strict_ber(self, fabric):
        verifier = FabricVerifier(fabric, max_ber=0.0)
        report = verifier.verify_link("a", "b")
        assert report.health is LinkHealth.FAILED

    def test_report_fields(self, fabric):
        report = FabricVerifier(fabric).verify_link("a", "b")
        assert report.loss_db > 0
        assert report.margin_db > 0
        assert 0 <= report.ber < 1
