"""Tests for repro.fabric.repair (the telemetry-driven remediation loop)."""

import pytest

from repro.core.errors import CapacityError, ConfigurationError
from repro.fabric.repair import RepairLoop
from repro.ocs.palomar import PALOMAR_USABLE_PORTS, PalomarOcs


@pytest.fixture
def loop():
    ocs = PalomarOcs.build(seed=17)
    ocs.connect(0, 10)
    ocs.connect(1, 11)
    return RepairLoop(ocs)


class TestDegradation:
    def test_inject_and_measure(self, loop):
        base = loop.measured_loss_db(0, 10)
        loop.degrade_circuit(0, 10, 0.8)
        assert loop.measured_loss_db(0, 10) == pytest.approx(base + 0.8)

    def test_degradation_accumulates(self, loop):
        loop.degrade_circuit(0, 10, 0.3)
        loop.degrade_circuit(0, 10, 0.4)
        base = loop.ocs.insertion_loss_db(0, 10)
        assert loop.measured_loss_db(0, 10) == pytest.approx(base + 0.7)

    def test_validation(self, loop):
        with pytest.raises(ConfigurationError):
            loop.degrade_circuit(0, 10, -1.0)
        with pytest.raises(ConfigurationError):
            loop.degrade_circuit(5, 5, 0.1)


class TestScan:
    def test_healthy_circuits_quiet(self, loop):
        assert loop.scan() == []

    def test_drift_detected(self, loop):
        loop.scan()  # establish baselines
        loop.degrade_circuit(0, 10, 0.8)
        anomalies = loop.scan()
        assert len(anomalies) == 1
        assert anomalies[0].circuit == (0, 10)
        assert anomalies[0].kind == "loss-drift"


class TestRemediation:
    def test_repair_moves_to_spare(self, loop):
        loop.scan()
        loop.degrade_circuit(0, 10, 0.9)
        actions = loop.run_once()
        assert len(actions) == 1
        action = actions[0]
        assert action.circuit == (0, 10)
        assert action.new_circuit[1] >= PALOMAR_USABLE_PORTS
        assert action.improvement_db > 0
        # The fabric now carries the circuit on the spare.
        assert loop.ocs.state.south_of(0) == action.new_circuit[1]
        # The healthy circuit was never touched.
        assert loop.ocs.state.south_of(1) == 11

    def test_repaired_circuit_stays_quiet(self, loop):
        loop.scan()
        loop.degrade_circuit(0, 10, 0.9)
        loop.run_once()
        assert loop.run_once() == []

    def test_stale_anomaly_ignored(self, loop):
        loop.scan()
        loop.degrade_circuit(0, 10, 0.9)
        anomalies = loop.scan()
        loop.ocs.disconnect(0)  # circuit torn down out-of-band
        assert loop.remediate(anomalies[0]) is None

    def test_pool_exhaustion(self):
        ocs = PalomarOcs.build(seed=18)
        ocs.connect(0, 10)
        loop = RepairLoop(ocs, spare_south_ports=[130])
        ocs.connect(99, 130)  # pool already busy
        loop.scan()
        loop.degrade_circuit(0, 10, 0.9)
        anomalies = loop.scan()
        with pytest.raises(CapacityError):
            loop.remediate(anomalies[0])

    def test_spare_validation(self):
        ocs = PalomarOcs.build(seed=19)
        with pytest.raises(ConfigurationError):
            RepairLoop(ocs, spare_south_ports=[900])
        with pytest.raises(ConfigurationError):
            RepairLoop(ocs, requalify_fail_db=0.0)


class TestRequalification:
    def _degraded_loop(self, spares):
        ocs = PalomarOcs.build(seed=20)
        ocs.connect(0, 10)
        loop = RepairLoop(ocs, spare_south_ports=spares)
        loop.scan()
        loop.degrade_circuit(0, 10, 0.9)
        return loop

    def test_damaged_spare_fails_requalification_next_one_used(self):
        loop = self._degraded_loop([130, 131])
        loop.degrade_south_port(130, loop.requalify_fail_db + 1.0)
        (action,) = loop.run_once()
        assert action.new_circuit == (0, 131)

    def test_capacity_error_carries_circuit_and_attempted_spares(self):
        loop = self._degraded_loop([130, 131])
        loop.degrade_south_port(131, 5.0)
        loop.ocs.connect(99, 130)  # the only good spare is busy
        anomalies = loop.scan()
        with pytest.raises(CapacityError) as err:
            loop.remediate(anomalies[0])
        assert err.value.degraded_circuit == (0, 10)
        assert err.value.attempted_spares == (130, 131)
        assert "N0<->S10" in str(err.value)
        # The degraded circuit was left in place, not torn down.
        assert loop.ocs.state.south_of(0) == 10

    def test_mild_spare_damage_within_margin_still_qualifies(self):
        loop = self._degraded_loop([130])
        loop.degrade_south_port(130, loop.requalify_fail_db / 2.0)
        (action,) = loop.run_once()
        assert action.new_circuit == (0, 130)

    def test_degrade_south_port_validation(self):
        loop = self._degraded_loop([130])
        with pytest.raises(ConfigurationError):
            loop.degrade_south_port(130, -0.1)
        with pytest.raises(ConfigurationError):
            loop.degrade_south_port(900, 0.1)
