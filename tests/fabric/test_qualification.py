"""Tests for repro.fabric.qualification (spare-port link testing)."""

import pytest

from repro.core.errors import CapacityError, ConfigurationError
from repro.fabric.qualification import (
    LinkQualifier,
    QualificationGrade,
)
from repro.ocs.palomar import PALOMAR_USABLE_PORTS, PalomarOcs


@pytest.fixture
def ocs():
    return PalomarOcs.build(seed=21)


@pytest.fixture
def qualifier(ocs):
    return LinkQualifier(ocs, seed=1)


class TestQualify:
    def test_clean_plant_passes(self, qualifier):
        report = qualifier.qualify(0, plant_excess_db=0.1)
        assert report.grade is QualificationGrade.PASS
        assert report.excess_loss_db == pytest.approx(0.1)
        assert report.spare >= PALOMAR_USABLE_PORTS

    def test_dirty_connector_marginal(self, qualifier):
        report = qualifier.qualify(1, plant_excess_db=1.0)
        assert report.grade is QualificationGrade.MARGINAL

    def test_broken_pigtail_fails(self, qualifier):
        report = qualifier.qualify(2, plant_excess_db=5.0)
        assert report.grade is QualificationGrade.FAIL

    def test_circuit_torn_down_after_test(self, qualifier, ocs):
        qualifier.qualify(3, plant_excess_db=0.0)
        assert ocs.state.num_circuits == 0

    def test_production_port_protected(self, qualifier, ocs):
        ocs.connect(5, 60)
        with pytest.raises(ConfigurationError):
            qualifier.qualify(5)

    def test_spare_busy_detection(self, ocs):
        qualifier = LinkQualifier(ocs, spare_ports=(135,))
        ocs.connect(50, 135)  # someone parked a circuit on the only spare
        with pytest.raises(CapacityError):
            qualifier.qualify(0)

    def test_default_plant_distribution(self, qualifier):
        results = qualifier.qualify_ports(range(48))
        # Most fibers are clean; the seeded tail includes non-PASS grades.
        assert len(results[QualificationGrade.PASS]) >= 35
        assert qualifier.yield_fraction >= 0.7

    def test_reports_accumulate(self, qualifier):
        qualifier.qualify(0, plant_excess_db=0.0)
        qualifier.qualify(1, plant_excess_db=2.0)
        assert len(qualifier.reports) == 2
        assert qualifier.yield_fraction == pytest.approx(0.5)

    def test_empty_yield_is_one(self, qualifier):
        assert qualifier.yield_fraction == 1.0


class TestValidation:
    def test_bad_spares(self, ocs):
        with pytest.raises(ConfigurationError):
            LinkQualifier(ocs, spare_ports=())
        with pytest.raises(ConfigurationError):
            LinkQualifier(ocs, spare_ports=(999,))

    def test_bad_margins(self, ocs):
        with pytest.raises(ConfigurationError):
            LinkQualifier(ocs, pass_margin_db=2.0, fail_margin_db=1.0)
