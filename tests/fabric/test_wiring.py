"""Tests for repro.fabric.wiring."""

import pytest

from repro.core.errors import ConfigurationError, TopologyError
from repro.core.ids import OcsId
from repro.fabric.wiring import Attachment, WiringPlan


class TestAttachment:
    def test_str(self):
        a = Attachment("cube-00", 3, OcsId(1), "N", 17)
        assert "cube-00:3" in str(a) and "N17" in str(a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Attachment("e", 0, OcsId(0), "X", 0)
        with pytest.raises(ConfigurationError):
            Attachment("e", -1, OcsId(0), "N", 0)


class TestWiringPlan:
    def test_add_and_lookup(self):
        plan = WiringPlan()
        att = Attachment("a", 0, OcsId(0), "N", 5)
        plan.add(att)
        assert plan.for_endpoint("a", 0) == att
        assert plan.for_ocs_port(OcsId(0), "N", 5) == att
        assert len(plan) == 1

    def test_double_endpoint_use_rejected(self):
        plan = WiringPlan()
        plan.add(Attachment("a", 0, OcsId(0), "N", 5))
        with pytest.raises(TopologyError):
            plan.add(Attachment("a", 0, OcsId(1), "N", 6))

    def test_double_ocs_port_rejected(self):
        plan = WiringPlan()
        plan.add(Attachment("a", 0, OcsId(0), "N", 5))
        with pytest.raises(TopologyError):
            plan.add(Attachment("b", 0, OcsId(0), "N", 5))

    def test_same_index_opposite_sides_ok(self):
        plan = WiringPlan()
        plan.add(Attachment("a", 0, OcsId(0), "N", 5))
        plan.add(Attachment("b", 0, OcsId(0), "S", 5))
        assert len(plan) == 2

    def test_unwired_lookup(self):
        plan = WiringPlan()
        with pytest.raises(TopologyError):
            plan.for_endpoint("ghost", 0)
        assert plan.for_ocs_port(OcsId(0), "N", 0) is None

    def test_endpoints_sorted(self):
        plan = WiringPlan()
        plan.add(Attachment("b", 0, OcsId(0), "N", 0))
        plan.add(Attachment("a", 0, OcsId(0), "N", 1))
        assert plan.endpoints() == ("a", "b")

    def test_ports_used(self):
        plan = WiringPlan()
        plan.add(Attachment("a", 0, OcsId(0), "N", 3))
        plan.add(Attachment("b", 0, OcsId(0), "N", 1))
        plan.add(Attachment("c", 0, OcsId(0), "S", 2))
        assert plan.ports_used(OcsId(0), "N") == (1, 3)
        assert plan.ports_used(OcsId(0), "S") == (2,)

    def test_seeded_constructor_validates(self):
        atts = [
            Attachment("a", 0, OcsId(0), "N", 0),
            Attachment("a", 0, OcsId(0), "N", 1),
        ]
        with pytest.raises(TopologyError):
            WiringPlan(attachments=atts)


class TestFullMeshBuilder:
    def test_counts(self):
        plan = WiringPlan.full_mesh_ready(["a", "b", "c"], OcsId(0), radix=8)
        assert len(plan) == 6
        assert plan.for_endpoint("b", 0).side == "N"
        assert plan.for_endpoint("b", 1).side == "S"

    def test_capacity_checked(self):
        with pytest.raises(ConfigurationError):
            WiringPlan.full_mesh_ready(["a", "b", "c"], OcsId(0), radix=2)
