"""Tests for repro.fabric.path."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.fabric.path import OpticalPath, PathElement
from repro.optics.fiber import FiberSpan
from repro.optics.transceiver import transceiver


@pytest.fixture
def bidi_path():
    return OpticalPath.through_ocs(
        spec=transceiver("bidi_2x400g_cwdm4"),
        ocs_insertion_loss_db=2.0,
        ocs_return_loss_db=-46.0,
    )


class TestPathElement:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PathElement("x", -1.0)
        with pytest.raises(ConfigurationError):
            PathElement("x", 1.0, reflection_db=3.0)


class TestConstruction:
    def test_bidi_has_circulators(self, bidi_path):
        names = [e.name for e in bidi_path.elements]
        assert names[0] == "tx-circulator" and names[-1] == "rx-circulator"

    def test_duplex_skips_circulators(self):
        path = OpticalPath.through_ocs(
            spec=transceiver("osfp_400g"),
            ocs_insertion_loss_db=2.0,
            ocs_return_loss_db=-46.0,
        )
        names = [e.name for e in path.elements]
        assert "tx-circulator" not in names

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpticalPath.through_ocs(transceiver("osfp_400g"), -1.0, -46.0)
        with pytest.raises(ConfigurationError):
            OpticalPath.through_ocs(transceiver("osfp_400g"), 2.0, 46.0)


class TestAggregates:
    def test_total_loss(self, bidi_path):
        # 2x circulator (0.8) + 2x fiber (30 m + 2 connectors) + OCS 2.0
        fiber = FiberSpan(length_m=30.0).total_loss_db
        assert bidi_path.total_loss_db == pytest.approx(0.8 * 2 + fiber * 2 + 2.0)

    def test_received_power(self, bidi_path):
        spec = transceiver("bidi_2x400g_cwdm4")
        assert bidi_path.received_power_dbm == pytest.approx(
            spec.tx_power_dbm - bidi_path.total_loss_db
        )

    def test_margin_positive_for_typical_path(self, bidi_path):
        assert bidi_path.margin_db() > 1.0

    def test_reflectors_listed(self, bidi_path):
        names = [e.name for e in bidi_path.reflectors()]
        assert "ocs" in names and "tx-circulator" in names


class TestMpiEstimate:
    def test_bidi_mpi_finite_and_low(self, bidi_path):
        mpi = bidi_path.estimated_mpi_db()
        assert math.isfinite(mpi)
        assert mpi < -30.0  # well-engineered path

    def test_worse_ocs_return_loss_raises_mpi(self):
        good = OpticalPath.through_ocs(
            transceiver("bidi_2x400g_cwdm4"), 2.0, ocs_return_loss_db=-46.0
        )
        bad = OpticalPath.through_ocs(
            transceiver("bidi_2x400g_cwdm4"), 2.0, ocs_return_loss_db=-30.0
        )
        assert bad.estimated_mpi_db() > good.estimated_mpi_db()

    def test_duplex_path_has_lower_mpi(self):
        """Without circulator crosstalk the aggregate MPI drops."""
        bidi = OpticalPath.through_ocs(transceiver("bidi_2x400g_cwdm4"), 2.0, -46.0)
        duplex = OpticalPath.through_ocs(transceiver("osfp_400g"), 2.0, -46.0)
        assert duplex.estimated_mpi_db() < bidi.estimated_mpi_db()


class TestBer:
    def test_ber_below_threshold_for_good_path(self, bidi_path):
        assert bidi_path.ber() < 2e-4

    def test_oim_helps(self, bidi_path):
        assert bidi_path.ber(oim_suppression_db=12.0) <= bidi_path.ber(
            oim_suppression_db=0.0
        )

    def test_ber_model_carries_mpi(self, bidi_path):
        model = bidi_path.ber_model()
        assert model.mpi_db == pytest.approx(bidi_path.estimated_mpi_db())
