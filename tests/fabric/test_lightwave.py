"""Tests for repro.fabric.lightwave."""

import pytest

from repro.core.errors import CapacityError, ConfigurationError, TopologyError
from repro.core.ids import LinkId, OcsId
from repro.fabric.lightwave import LightwaveFabric


@pytest.fixture
def fabric():
    f = LightwaveFabric()
    f.add_ocs(OcsId(0))
    for name in ("ab-00", "ab-01", "ab-02"):
        f.add_endpoint(name, num_ports=2)
    f.wire_full_mesh(OcsId(0))
    return f


class TestInventory:
    def test_duplicate_endpoint_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.add_endpoint("ab-00", 2)

    def test_unknown_lookups(self, fabric):
        with pytest.raises(TopologyError):
            fabric.endpoint("ghost")
        with pytest.raises(TopologyError):
            fabric.ocs(OcsId(9))

    def test_endpoint_names_sorted(self, fabric):
        assert fabric.endpoint_names == ("ab-00", "ab-01", "ab-02")

    def test_default_ocs_is_palomar(self, fabric):
        assert fabric.ocs(OcsId(0)).radix == 136


class TestWiring:
    def test_full_mesh_wired(self, fabric):
        assert len(fabric.wiring) == 6
        att = fabric.wiring.for_endpoint("ab-01", 0)
        assert att.side == "N"

    def test_endpoint_ports_marked_attached(self, fabric):
        assert fabric.endpoint("ab-00").free_ports == ()

    def test_wire_out_of_range_port(self, fabric):
        fabric.add_endpoint("extra", 2)
        with pytest.raises(ConfigurationError):
            fabric.wire("extra", 0, OcsId(0), "N", 500)

    def test_capacity_enforced(self):
        f = LightwaveFabric()
        f.add_ocs(OcsId(0))
        for i in range(137):
            f.add_endpoint(f"e{i:03d}", 2)
        with pytest.raises(CapacityError):
            f.wire_full_mesh(OcsId(0))


class TestLinks:
    def test_connect_creates_circuit(self, fabric):
        link_id = fabric.connect("ab-00", "ab-01")
        assert link_id == LinkId("ab-00--ab-01")
        link = fabric.manager.link(link_id)
        device = fabric.ocs(OcsId(0))
        assert device.state.south_of(link.north) == link.south

    def test_connect_unwired_fails(self, fabric):
        fabric.add_endpoint("loner", 2)
        with pytest.raises(TopologyError):
            fabric.connect("ab-00", "loner")

    def test_disconnect(self, fabric):
        fabric.connect("ab-00", "ab-01")
        fabric.disconnect("ab-00", "ab-01")
        assert fabric.manager.num_circuits == 0

    def test_link_name_symmetric(self, fabric):
        assert fabric.link_name("b", "a") == fabric.link_name("a", "b")

    def test_reconfigure_keeps_other_links(self, fabric):
        fabric.connect("ab-00", "ab-01")
        fabric.connect("ab-01", "ab-02")  # N of ab-01, S of ab-02
        fabric.disconnect("ab-00", "ab-01")
        assert fabric.manager.num_circuits == 1


class TestOptics:
    def test_path_for_link(self, fabric):
        fabric.connect("ab-00", "ab-01")
        path = fabric.path_for_link("ab-00", "ab-01")
        assert path.total_loss_db > 0
        assert path.ber() < 2e-4

    def test_total_power(self, fabric):
        before = fabric.total_power_w()
        fabric.connect("ab-00", "ab-01")
        assert fabric.total_power_w() > before
