"""The operator CLIs run end-to-end and exit 0."""

import json

from repro.tools.noc import main as noc_main
from repro.tools.report import main as report_main


class TestReportCli:
    def test_runs_and_exits_zero(self, capsys):
        assert report_main([]) == 0
        out = capsys.readouterr().out
        assert "headline report" in out


class TestNocCli:
    def test_smoke_report_exits_zero(self, capsys):
        assert noc_main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "FLEET NOC REPORT" in out
        assert "SLOs" in out
        assert "Per-OCS telemetry" in out

    def test_check_passes_committed_thresholds(self, capsys):
        assert noc_main(["--smoke", "--check"]) == 0
        capsys.readouterr()

    def test_check_fails_on_regressed_threshold(self, tmp_path, capsys):
        tight = tmp_path / "slo.json"
        tight.write_text(json.dumps({"reconfig_p99_ms": 0.001}))
        assert noc_main(["--smoke", "--check", "--thresholds", str(tight)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_mode(self, capsys):
        assert noc_main(["--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo_ok"] is True
        assert set(payload["slos"]) == {
            "reconfig_p99_ms", "recovery_p99_ms", "ber_anomaly_rate",
            "sweep_cache_miss_rate", "sweep_chunk_p99_ms",
            "serve_p99_ms", "serve_shed_rate", "serve_retry_amplification",
            "failover_p99_s", "committed_ops_lost", "failover_unavailability",
            "twin_forecast_miss_rate", "twin_forecast_mae_excess",
            "twin_plan_divergence",
        }
        assert payload["slos"]["sweep_cache_miss_rate"] == 0.5
        assert payload["notes"]["sweep_warm_hits"] == payload["notes"]["sweep_tasks"]
        assert payload["num_spans"] > 0

    def test_exports_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert noc_main([
            "--smoke", "--trace-out", str(trace), "--metrics-out", str(metrics)
        ]) == 0
        capsys.readouterr()
        head = json.loads(trace.read_text().splitlines()[0])
        assert head["type"] == "meta" and head["stream"] == "trace"
        assert head["schema_version"] >= 1
        head = json.loads(metrics.read_text().splitlines()[0])
        assert head["type"] == "meta" and head["stream"] == "metrics"


class TestNocTwinCli:
    def test_twin_report_and_check_exit_zero(self, capsys):
        assert noc_main(["twin", "--smoke", "--check"]) == 0
        out = capsys.readouterr().out
        assert "DIGITAL TWIN REPORT" in out
        assert "Twin SLOs" in out
        assert "What-if plans" in out

    def test_twin_json_mode(self, capsys):
        assert noc_main(["twin", "--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo_ok"] is True
        assert payload["twin_plan_divergence"] == 0.0
        assert payload["twin_forecast_mae_excess"] < 0.0
        assert {p["policy"]["name"] for p in payload["plans"]} == {
            "pin_brownout_2", "quarantine_eighth", "replicate_3",
        }

    def test_twin_writes_jsonl_artifacts(self, tmp_path, capsys):
        timeline = tmp_path / "timeline.jsonl"
        plans = tmp_path / "plans.jsonl"
        aggregates = tmp_path / "aggregates.jsonl"
        assert noc_main([
            "twin", "--smoke",
            "--timeline-out", str(timeline),
            "--plans-out", str(plans),
            "--aggregates-out", str(aggregates),
        ]) == 0
        capsys.readouterr()
        head = json.loads(timeline.read_text().splitlines()[0])
        assert head["type"] == "meta" and head["stream"] == "timeline"
        plan = json.loads(plans.read_text().splitlines()[0])
        assert plan["type"] == "plan" and "predicted" in plan
        head = json.loads(aggregates.read_text().splitlines()[0])
        assert head["type"] == "meta"

    def test_twin_check_fails_on_tight_threshold(self, tmp_path, capsys):
        tight = tmp_path / "slo.json"
        tight.write_text(json.dumps({"twin_forecast_miss_rate": -1.0}))
        assert noc_main([
            "twin", "--smoke", "--check", "--thresholds", str(tight)
        ]) == 1
        assert "REGRESS" in capsys.readouterr().out
