"""The operator CLIs run end-to-end and exit 0."""

import json

from repro.tools.noc import main as noc_main
from repro.tools.report import main as report_main


class TestReportCli:
    def test_runs_and_exits_zero(self, capsys):
        assert report_main([]) == 0
        out = capsys.readouterr().out
        assert "headline report" in out


class TestNocCli:
    def test_smoke_report_exits_zero(self, capsys):
        assert noc_main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "FLEET NOC REPORT" in out
        assert "SLOs" in out
        assert "Per-OCS telemetry" in out

    def test_check_passes_committed_thresholds(self, capsys):
        assert noc_main(["--smoke", "--check"]) == 0
        capsys.readouterr()

    def test_check_fails_on_regressed_threshold(self, tmp_path, capsys):
        tight = tmp_path / "slo.json"
        tight.write_text(json.dumps({"reconfig_p99_ms": 0.001}))
        assert noc_main(["--smoke", "--check", "--thresholds", str(tight)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_mode(self, capsys):
        assert noc_main(["--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo_ok"] is True
        assert set(payload["slos"]) == {
            "reconfig_p99_ms", "recovery_p99_ms", "ber_anomaly_rate",
            "sweep_cache_miss_rate", "sweep_chunk_p99_ms",
            "serve_p99_ms", "serve_shed_rate", "serve_retry_amplification",
            "failover_p99_s", "committed_ops_lost", "failover_unavailability",
        }
        assert payload["slos"]["sweep_cache_miss_rate"] == 0.5
        assert payload["notes"]["sweep_warm_hits"] == payload["notes"]["sweep_tasks"]
        assert payload["num_spans"] > 0

    def test_exports_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert noc_main([
            "--smoke", "--trace-out", str(trace), "--metrics-out", str(metrics)
        ]) == 0
        capsys.readouterr()
        head = json.loads(trace.read_text().splitlines()[0])
        assert head["type"] == "meta" and head["stream"] == "trace"
        head = json.loads(metrics.read_text().splitlines()[0])
        assert head["type"] == "meta" and head["stream"] == "metrics"
