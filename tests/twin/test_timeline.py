"""FleetTimeline recording, round-trip, and digest pinning."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import Observability
from repro.twin import FleetTimeline, record_fleet_timeline
from repro.twin.timeline import baseline_slos


@pytest.fixture(scope="module")
def timeline():
    return record_fleet_timeline(seed=3, num_primaries=400, name="t")


class TestRecording:
    def test_replay_parameters_captured(self, timeline):
        assert timeline.profile == "serve"
        assert timeline.seed == 3
        assert timeline.num_primaries == 400
        assert timeline.horizon_s > 0
        assert timeline.baseline["availability"] <= 1.0

    def test_operator_series_present(self, timeline):
        assert timeline.series_names() == (
            "serve.brownout_level",
            "serve.latency_p99_ms",
            "serve.offered",
            "serve.ok",
            "serve.shed",
        )
        offered = timeline.series("serve.offered")
        # Every primary arrival bucketed (retries add a few more).
        assert sum(v for _, v in offered) >= 400
        times = [t for t, _ in offered]
        assert times == sorted(times)

    def test_equal_seeds_pin_equal_digests(self, timeline):
        again = record_fleet_timeline(seed=3, num_primaries=400, name="t")
        assert again.digest() == timeline.digest()
        other = record_fleet_timeline(seed=4, num_primaries=400, name="t")
        assert other.digest() != timeline.digest()

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            record_fleet_timeline(profile="quantum")

    def test_recording_is_instrumented(self):
        obs = Observability.sim()
        tl = record_fleet_timeline(seed=3, num_primaries=400, obs=obs)
        assert obs.metrics.value("twin.timeline.samples") == len(tl.samples)
        assert len(obs.tracer.find("twin.timeline.record")) == 1


class TestRoundTrip:
    def test_jsonl_records_rebuild_the_same_timeline(self, timeline):
        rebuilt = FleetTimeline.from_records(timeline.to_records())
        assert rebuilt == timeline
        assert rebuilt.digest() == timeline.digest()

    def test_meta_carries_schema_version_and_digest(self, timeline):
        head = timeline.to_records()[0]
        assert head["stream"] == "timeline"
        assert head["schema_version"] >= 1
        assert head["digest"] == timeline.digest()

    def test_reader_tolerates_unknown_fields_and_record_types(self, timeline):
        records = [dict(r) for r in timeline.to_records()]
        records[0]["future_knob"] = "ignored"
        records.append({"type": "annotation", "note": "from the future"})
        rebuilt = FleetTimeline.from_records(records)
        assert rebuilt.digest() == timeline.digest()

    def test_missing_meta_raises(self):
        with pytest.raises(ConfigurationError, match="meta"):
            FleetTimeline.from_records([{"type": "baseline", "slos": {}}])


class TestBaselineSlos:
    def test_unavailability_counts_service_failures_not_rejections(self):
        slos = baseline_slos(
            {
                "offered": 100,
                "shed": 5,
                "timeout": 3,
                "error": 2,
                "rejected": 40,  # admission policy, not failure
                "serve_p99_ms": 10.0,
                "serve_shed_rate": 0.05,
            }
        )
        assert slos["unavailability"] == pytest.approx(0.10)
        assert slos["availability"] == pytest.approx(0.90)
        assert slos["failover_p99_s"] == 0.0

    def test_zero_offered_is_fully_available(self):
        slos = baseline_slos(
            {"offered": 0, "serve_p99_ms": 0.0, "serve_shed_rate": 0.0}
        )
        assert slos["availability"] == 1.0
