"""Availability forecasting: accuracy vs the naive bar, determinism."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.faults.ensemble import chaos_ensemble_serial
from repro.twin.drill import ENSEMBLE_KWARGS, ENSEMBLE_SCENARIO
from repro.twin.forecast import (
    FEATURE_NAMES,
    LogisticForecaster,
    ewma_prediction,
    naive_last_value,
    prefix_features,
    suffix_availability,
    train_availability_forecaster,
)

#: A hand-built step timeline: healthy for 40 h, degraded to 0.5 for
#: 20 h, recovered at 60 h; horizon 100 h, split at 50 h.
STEP_TIMELINE = [(0.0, 1.0), (40.0, 0.5), (60.0, 1.0), (100.0, 1.0)]


class TestFeatures:
    def test_prefix_feature_vector(self):
        f = prefix_features(STEP_TIMELINE, 100.0, 0.5)
        assert len(f) == len(FEATURE_NAMES)
        assert f[0] == 0.5  # last level at the split
        # 40 h at 1.0 + 10 h at 0.5 over 50 h observed.
        assert f[1] == pytest.approx(0.9)
        assert f[2] == 0.5  # min
        assert f[3] == pytest.approx(0.2)  # 10 h degraded / 50 h
        assert f[4] == pytest.approx(1 / 50)  # one transition in prefix

    def test_suffix_availability_ground_truth(self):
        # 10 h at 0.5 + 40 h at 1.0 over the 50 h suffix.
        assert suffix_availability(STEP_TIMELINE, 100.0, 0.5) == pytest.approx(0.9)

    def test_naive_and_ewma_read_the_features(self):
        f = prefix_features(STEP_TIMELINE, 100.0, 0.5)
        assert naive_last_value(f) == 0.5
        ewma = ewma_prediction(f, weight=0.7)
        assert ewma == pytest.approx(0.7 * 0.9 + 0.3 * 0.5)

    def test_prefix_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            prefix_features(STEP_TIMELINE, 100.0, 1.0)


class TestLogisticForecaster:
    def test_seeded_fit_is_deterministic(self):
        X = np.array([[0.1 * i, 0.5] for i in range(8)])
        y = np.array([0.2 + 0.08 * i for i in range(8)])
        a = LogisticForecaster(seed=7).fit(X, y).predict(X)
        b = LogisticForecaster(seed=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)
        c = LogisticForecaster(seed=8).fit(X, y).predict(X)
        assert not np.array_equal(a, c)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            LogisticForecaster().predict(np.zeros((1, 2)))


class TestTrainedForecaster:
    @pytest.fixture(scope="class")
    def reports(self):
        return chaos_ensemble_serial(
            ENSEMBLE_SCENARIO,
            [1_000 + i for i in range(24)],
            dict(ENSEMBLE_KWARGS),
        )

    def test_beats_naive_on_held_out_members(self, reports):
        """The acceptance pin: the trained availability forecaster beats
        the naive last-value predictor on held-out chaos-ensemble runs."""
        evaluation = train_availability_forecaster(reports)
        assert evaluation.n_heldout >= 4
        assert evaluation.beats_naive
        assert evaluation.model_mae < evaluation.naive_mae
        assert evaluation.mae_excess < 0.0

    def test_training_is_deterministic(self, reports):
        a = train_availability_forecaster(reports)
        b = train_availability_forecaster(reports)
        assert a == b

    def test_scorecard_shape(self, reports):
        evaluation = train_availability_forecaster(reports)
        summary = evaluation.summary()
        assert summary["miss_rate"] == pytest.approx(1.0 - summary["coverage"])
        assert summary["mae_excess"] == pytest.approx(
            summary["model_mae"] - summary["naive_mae"]
        )
        assert len(evaluation.predictions) == evaluation.n_heldout

    def test_too_few_members_rejected(self, reports):
        with pytest.raises(ConfigurationError):
            train_availability_forecaster(reports[:4])
