"""What-if planner: policy semantics, determinism, and the commit gate."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import Observability
from repro.serve.service import ServeConfig
from repro.twin import (
    FleetTimeline,
    TwinPolicy,
    WhatIfPlanner,
    record_fleet_timeline,
)


@pytest.fixture(scope="module")
def timeline():
    return record_fleet_timeline(seed=3, num_primaries=400, name="t")


class TestTwinPolicy:
    def test_apply_derives_a_new_config(self):
        base = ServeConfig(seed=1)
        policy = TwinPolicy(
            name="p", pinned_brownout=2, global_rate_scale=0.5,
            queue_capacity=7, num_controller_replicas=3,
        )
        derived = policy.apply(base)
        assert derived is not base
        assert derived.pinned_brownout == 2
        assert derived.global_rate_per_s == base.global_rate_per_s * 0.5
        assert derived.queue_capacity == 7
        assert derived.num_controller_replicas == 3
        assert base.pinned_brownout is None  # untouched

    def test_quarantine_prices_capacity_uniformly(self):
        base = ServeConfig(seed=1)
        derived = TwinPolicy(name="q", quarantine_fraction=0.25).apply(base)
        assert derived.global_rate_per_s == base.global_rate_per_s * 0.75
        assert derived.tenant_rate_per_s == base.tenant_rate_per_s * 0.75

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwinPolicy(quarantine_fraction=1.0)
        with pytest.raises(ConfigurationError):
            TwinPolicy(global_rate_scale=0.0)

    def test_canonical_identity_is_order_free_json(self):
        a = TwinPolicy(name="x", pinned_brownout=1)
        b = TwinPolicy(pinned_brownout=1, name="x")
        assert a.canonical() == b.canonical()
        assert a.canonical() != TwinPolicy(name="x").canonical()


class TestReplayDeterminism:
    """The acceptance pin: same timeline + same policy => byte-identical
    predicted-SLO reports."""

    def test_same_policy_twice_yields_byte_identical_reports(self, timeline):
        planner = WhatIfPlanner(timeline)
        policy = TwinPolicy(name="pin", pinned_brownout=2)
        first = planner.evaluate(policy)
        second = planner.evaluate(policy)
        assert first.digest() == second.digest()
        assert first.to_record() == second.to_record()
        assert dict(first.predicted) == dict(second.predicted)

    def test_round_tripped_timeline_replays_identically(self, timeline):
        rebuilt = FleetTimeline.from_records(timeline.to_records())
        policy = TwinPolicy(name="pin", pinned_brownout=2)
        direct = WhatIfPlanner(timeline).evaluate(policy)
        via_jsonl = WhatIfPlanner(rebuilt).evaluate(policy)
        assert via_jsonl.digest() == direct.digest()

    def test_noop_policy_reproduces_the_recorded_baseline(self, timeline):
        report = WhatIfPlanner(timeline).evaluate(TwinPolicy(name="noop"))
        assert dict(report.predicted) == dict(timeline.baseline)
        assert all(delta == 0.0 for delta in report.deltas.values())

    def test_different_policies_diverge(self, timeline):
        planner = WhatIfPlanner(timeline)
        a = planner.evaluate(TwinPolicy(name="a", pinned_brownout=2))
        b = planner.evaluate(TwinPolicy(name="b", quarantine_fraction=0.5))
        assert a.digest() != b.digest()


class TestPredictions:
    def test_deep_brownout_cuts_predicted_p99(self, timeline):
        planner = WhatIfPlanner(timeline)
        report = planner.evaluate(TwinPolicy(name="pin", pinned_brownout=2))
        assert report.deltas["serve_p99_ms"] < 0.0

    def test_quarantine_trades_admission_for_latency(self, timeline):
        """Quarantining capacity tightens admission: fewer requests get
        in, so the predicted p99 of the admitted traffic drops."""
        planner = WhatIfPlanner(timeline)
        report = planner.evaluate(
            TwinPolicy(name="q", quarantine_fraction=0.75)
        )
        assert report.deltas["serve_p99_ms"] < 0.0
        assert report.predicted["availability"] <= 1.0


class TestApprovalGate:
    def test_safe_policy_approved(self, timeline):
        obs = Observability.sim()
        planner = WhatIfPlanner(timeline, obs=obs)
        ok, violations, report = planner.approve(
            TwinPolicy(name="noop"),
            {"serve_p99_ms": 1_000.0, "unavailability": 0.5},
        )
        assert ok and violations == []
        assert obs.metrics.value("twin.plan.gated", verdict="ok") == 1.0

    def test_risky_policy_held_with_named_violations(self, timeline):
        obs = Observability.sim()
        planner = WhatIfPlanner(timeline, obs=obs)
        ok, violations, report = planner.approve(
            TwinPolicy(name="noop"),
            {"twin_plan_serve_p99_ms": 50.0},  # prefixed namespace
        )
        assert not ok
        assert violations[0][0] == "serve_p99_ms"
        assert violations[0][1] > violations[0][2]
        assert obs.metrics.value("twin.plan.gated", verdict="hold") == 1.0

    def test_unknown_threshold_keys_are_ignored(self, timeline):
        report = WhatIfPlanner(timeline).evaluate(TwinPolicy(name="noop"))
        assert report.violations({"reconfig_p99_ms": 0.0}) == []
