"""The end-to-end twin drill and its SLO surface."""

import pytest

from repro.obs import Observability
from repro.twin.drill import DEFAULT_POLICIES, run_twin_drill, twin_slos


@pytest.fixture(scope="module")
def result():
    return run_twin_drill(
        seed=0, smoke=True, obs=Observability.sim(),
        num_primaries=600, ensemble_members=12,
        policies=DEFAULT_POLICIES[:2],
    )


class TestTwinDrill:
    def test_summary_carries_the_gated_slos(self, result):
        slos = twin_slos(result["summary"])
        assert set(slos) == {
            "twin_forecast_miss_rate",
            "twin_forecast_mae_excess",
            "twin_plan_divergence",
        }
        assert slos["twin_plan_divergence"] == 0.0  # replay determinism
        assert slos["twin_forecast_mae_excess"] < 0.0  # beats naive

    def test_plans_match_policies(self, result):
        plans = result["plans"]
        assert [p.policy.name for p in plans] == [
            p.name for p in DEFAULT_POLICIES[:2]
        ]
        for plan in plans:
            assert plan.timeline_digest == result["summary"]["timeline_digest"]

    def test_aggregates_are_exportable(self, result):
        records = result["aggregates"]
        assert records[0]["type"] == "meta"
        assert any(r.get("type") == "aggregate" for r in records)

    def test_drill_is_deterministic(self, result):
        again = run_twin_drill(
            seed=0, smoke=True, obs=Observability.sim(),
            num_primaries=600, ensemble_members=12,
            policies=DEFAULT_POLICIES[:2],
        )
        assert again["summary"] == result["summary"]

    def test_gauges_published_on_the_shared_registry(self):
        obs = Observability.sim()
        out = run_twin_drill(
            seed=0, smoke=True, obs=obs, num_primaries=600,
            ensemble_members=12, policies=DEFAULT_POLICIES[:1],
        )
        summary = out["summary"]
        assert obs.metrics.value("twin.forecast.miss_rate") == summary[
            "twin_forecast_miss_rate"
        ]
        assert obs.metrics.value("twin.plan.divergence") == 0.0
        assert len(obs.tracer.find("twin.plan.replay")) == 2  # plan + recheck
