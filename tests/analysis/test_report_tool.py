"""Smoke test for the headline report CLI."""

from repro.tools.report import main


def test_report_runs(capsys):
    assert main() == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "8x16x32" in out
    assert "CapEx saving" in out
    assert "Fig 15" in out
