"""Tests for the CSV figure exporter."""

import csv

import pytest

from repro.tools.figures import EXPORTERS, main


class TestExporters:
    def test_all_figures_registered(self):
        assert set(EXPORTERS) == {"fig10", "fig11", "fig12", "fig13", "fig15", "table2"}

    def test_fig15_export(self, tmp_path):
        paths = EXPORTERS["fig15"](tmp_path)
        assert len(paths) == 2
        with paths[1].open() as f:
            assert f.readline().startswith("#")
            rows = list(csv.DictReader(f))
        anchor = [
            r for r in rows
            if r["server_availability"] == "0.999" and r["slice_tpus"] == "1024"
        ]
        assert float(anchor[0]["reconfigurable"]) == pytest.approx(0.75)
        assert float(anchor[0]["static"]) == pytest.approx(0.25)

    def test_fig10_export_counts(self, tmp_path):
        paths = EXPORTERS["fig10"](tmp_path)
        with paths[0].open() as f:
            f.readline()
            rows = list(csv.reader(f))
        assert len(rows) - 1 == 136 * 136  # header + all paths

    def test_fig11_monotone_columns(self, tmp_path):
        (path,) = EXPORTERS["fig11"](tmp_path)
        with path.open() as f:
            f.readline()
            rows = list(csv.DictReader(f))
        clean = [float(r["ber_mpi_none_oim_off"]) for r in rows]
        assert clean == sorted(clean, reverse=True)

    def test_cli_subset(self, tmp_path, capsys):
        assert main(["--out", str(tmp_path), "--only", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "fig12_sfec_curves.csv" in out
        assert (tmp_path / "fig12_sfec_curves.csv").exists()
        assert not (tmp_path / "fig13_fleet_ber.csv").exists()

    def test_table2_surface_contains_optima(self, tmp_path):
        (path,) = EXPORTERS["table2"](tmp_path)
        with path.open() as f:
            f.readline()
            rows = list(csv.DictReader(f))
        llm1 = [r for r in rows if r["model"] == "LLM1"]
        best = min(llm1, key=lambda r: float(r["step_time_s"]))
        # The canonical-split search surface exposes the optimal class.
        assert best["shape"].startswith("4x")
