"""Tests for repro.analysis."""

import pytest

from repro.core.errors import ConfigurationError
from repro.analysis.histogram import ascii_histogram, percentile_summary
from repro.analysis.tables import render_table


class TestHistogram:
    def test_renders_bins(self):
        out = ascii_histogram([1, 1, 2, 3, 3, 3], bins=3, width=10)
        assert out.count("\n") == 2
        assert "#" in out

    def test_counts_sum(self):
        out = ascii_histogram(list(range(100)), bins=4)
        totals = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(totals) == 100

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([])
        with pytest.raises(ConfigurationError):
            ascii_histogram([1.0], bins=0)


class TestPercentiles:
    def test_keys(self):
        s = percentile_summary(list(range(101)))
        assert s["p50"] == pytest.approx(50.0)
        assert s["min"] == 0 and s["max"] == 100
        assert s["mean"] == pytest.approx(50.0)

    def test_custom_percentiles(self):
        s = percentile_summary([1, 2, 3], percentiles=(50,))
        assert "p50" in s and "p99" not in s

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_summary([])


class TestTable:
    def test_renders(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
        assert "T" in out
        assert "a" in out and "30" in out

    def test_alignment(self):
        out = render_table(["col"], [["x"], ["longer"]])
        lines = out.splitlines()
        assert len(set(len(l) for l in lines if "|" not in l or True)) >= 1

    def test_row_width_checked(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])
