"""Tests for repro.serve.brownout (the hysteresis degradation ladder)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.brownout import BrownoutController


def build() -> BrownoutController:
    return BrownoutController(enter_1=0.5, exit_1=0.3, enter_2=0.8, exit_2=0.6)


class TestBrownoutController:
    def test_ladder_up_and_down_with_hysteresis(self):
        ctl = build()
        assert ctl.observe(0.4, False, 0.0) == 0
        assert ctl.observe(0.5, False, 1.0) == 1
        # Between exit_1 and enter_1: stays at 1 (hysteresis band).
        assert ctl.observe(0.4, False, 2.0) == 1
        assert ctl.observe(0.8, False, 3.0) == 2
        # Between exit_2 and enter_2: stays at 2.
        assert ctl.observe(0.7, False, 4.0) == 2
        assert ctl.observe(0.6, False, 5.0) == 1
        assert ctl.observe(0.3, False, 6.0) == 0

    def test_deep_brownout_exits_straight_to_normal_when_quiet(self):
        ctl = build()
        ctl.observe(0.9, False, 0.0)
        assert ctl.observe(0.1, False, 1.0) == 0

    def test_breaker_open_forces_level_2(self):
        ctl = build()
        assert ctl.observe(0.0, True, 0.0) == 2
        assert ctl.serve_cached_telemetry
        # Breaker closes, occupancy quiet: ladder walks back down.
        assert ctl.observe(0.0, False, 1.0) == 0

    def test_level_semantics(self):
        ctl = build()
        assert not ctl.defer_maintenance and not ctl.coalesce_updates
        ctl.observe(0.5, False, 0.0)
        assert ctl.defer_maintenance and ctl.coalesce_updates
        assert not ctl.serve_cached_telemetry
        ctl.observe(0.9, False, 1.0)
        assert ctl.serve_cached_telemetry

    def test_transitions_recorded_with_timestamps(self):
        ctl = build()
        ctl.observe(0.6, False, 1.5)
        ctl.observe(0.9, False, 2.5)
        ctl.observe(0.0, False, 3.5)
        assert ctl.transitions == ((1.5, 1), (2.5, 2), (3.5, 0))

    def test_pinned_level_never_moves(self):
        ctl = BrownoutController(pinned_level=2)
        assert ctl.observe(0.0, False, 0.0) == 2
        assert ctl.observe(1.0, True, 1.0) == 2
        assert ctl.transitions == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enter_1": 0.3, "exit_1": 0.5},            # exit above entry
            {"enter_2": 0.4, "exit_2": 0.5},            # exit above entry
            {"enter_1": 0.9, "enter_2": 0.8, "exit_2": 0.7},  # crossed ladder
            {"pinned_level": 3},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            BrownoutController(**kwargs)
