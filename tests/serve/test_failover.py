"""Acceptance tests for the replicated-controller failover drill.

These pin the PR's acceptance bar: the serving layer keeps admitting
through leader handoffs under a rolling crash / partition / clock-skew
storm, the breaker's open edge triggers elections instead of pure
refusal, no client-acked commit is ever lost, replay equivalence holds
on both the serve commit log and the replicated log, and the failover
SLOs sit within the committed thresholds.
"""

import json
from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.serve.drill import (
    build_failover_timeline,
    failover_slos,
    run_failover_drill,
)
from repro.serve.service import FabricService, ServeConfig

THRESHOLDS = json.loads(
    (Path(__file__).resolve().parents[2] / "benchmarks" / "slo_thresholds.json")
    .read_text()
)


@pytest.fixture(scope="module")
def drill():
    return run_failover_drill(seed=0, smoke=True)


class TestConfig:
    def test_even_replica_group_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(num_controller_replicas=2)
        with pytest.raises(ConfigurationError):
            ServeConfig(num_controller_replicas=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(num_controller_replicas=3, replica_lease_s=0.0)

    def test_default_is_single_controller(self):
        service = FabricService(ServeConfig(seed=0))
        assert service.replication is None
        assert service.controller is not None

    def test_replicated_mode_routes_manager_to_leader(self):
        service = FabricService(ServeConfig(seed=0, num_controller_replicas=3))
        assert service.controller is None
        group = service.replication
        assert group is not None and group.leader_index == 0
        assert service.manager is group.live_manager()


class TestAcceptance:
    def test_storm_forces_real_failovers(self, drill):
        summary = drill["summary"]
        assert summary["failovers"] >= 1
        assert summary["elections"] >= 2
        assert summary["failover_unavailable_s"] > 0.0

    def test_no_committed_op_lost(self, drill):
        # The drill itself raises on loss; the summary pins the zero.
        assert drill["summary"]["committed_ops_lost"] == 0

    def test_service_still_serves_through_handoffs(self, drill):
        summary = drill["summary"]
        assert summary["ok"] > 0.25 * summary["offered"]
        assert summary["availability"] > 0.5

    def test_slos_within_committed_thresholds(self, drill):
        slos = failover_slos(drill["summary"])
        for name, value in slos.items():
            assert value <= THRESHOLDS[name], (name, value)

    def test_replay_equivalence_on_both_logs(self, drill):
        summary = drill["summary"]
        assert summary["replay_digest"] == summary["state_digest"]

    def test_same_seed_identical_run(self, drill):
        again = run_failover_drill(seed=0, smoke=True)
        assert again["summary"] == drill["summary"]

    def test_different_seed_different_outcomes(self, drill):
        other = run_failover_drill(seed=1, smoke=True)
        assert other["summary"]["outcomes_digest"] != (
            drill["summary"]["outcomes_digest"]
        )

    def test_summary_only_reports_failover_keys_when_replicated(self, drill):
        from repro.serve.drill import run_serve_drill

        single = run_serve_drill(seed=0, smoke=True)["summary"]
        assert "failovers" not in single
        assert "failover_p99_s" in drill["summary"]


class TestTimeline:
    def test_failover_timeline_is_deterministic(self):
        def schedule():
            injector = FaultInjector(seed=0)
            build_failover_timeline(injector, horizon_s=3.0)
            return injector.pending_digest()

        assert schedule() == schedule()

    def test_rotates_all_three_failure_modes(self):
        injector = FaultInjector(seed=0)
        build_failover_timeline(injector, horizon_s=4.0)
        kinds = {e.kind.value for e in injector.pending_events()}
        assert {"controller-crash", "network-partition", "clock-skew"} <= kinds
