"""Tests for repro.serve.service (the serving loop end to end)."""

import pytest

from repro.faults.events import FaultKind, controller_target
from repro.faults.injector import FaultInjector
from repro.serve.requests import ADMITTED_OUTCOMES, Outcome, RequestKind
from repro.serve.service import FabricService, ServeConfig, replay_committed
from repro.serve.workload import ServeWorkload


def small_config(**overrides) -> ServeConfig:
    defaults = dict(
        num_traffic_ocses=2,
        num_tenants=32,
        allocator_cubes=16,
        seed=0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def small_workload(seed: int = 0, rate_per_s: float = 300.0) -> ServeWorkload:
    return ServeWorkload(seed=seed, rate_per_s=rate_per_s, num_tenants=32)


class TestPartitionInvariant:
    def test_every_request_gets_exactly_one_outcome(self):
        config = small_config()
        requests = small_workload().generate(400)
        report = FabricService(config).run(requests)
        assert report.offered == len(requests)
        assert len(report.records) == report.offered
        by_outcome = {o: report.count(o) for o in Outcome}
        assert sum(by_outcome.values()) == report.offered
        # shed + rejected + admitted partitions the offered load.
        admitted = sum(by_outcome[o] for o in ADMITTED_OUTCOMES)
        assert (
            by_outcome[Outcome.SHED] + by_outcome[Outcome.REJECTED] + admitted
            == report.offered
        )
        # Each record's request is unique (no double terminals).
        ids = [r.request.request_id for r in report.records]
        assert len(ids) == len(set(ids))

    def test_sheds_are_reported_never_silent(self):
        config = small_config(queue_capacity=4, global_rate_per_s=2_000.0,
                              global_burst=500.0, tenant_rate_per_s=500.0,
                              tenant_burst=100.0)
        requests = small_workload(rate_per_s=3_000.0).generate(600)
        report = FabricService(config).run(requests)
        shed_ids = {r.request.request_id for r in report.records
                    if r.outcome is Outcome.SHED}
        assert report.count(Outcome.SHED) > 0
        # Every queue eviction names its victim, and every shed outcome
        # traces back to exactly one eviction record.
        victims = {s.victim.request_id for s in report.shed_records}
        assert victims == shed_ids


class TestReplayEquivalence:
    def test_replay_reproduces_live_digest(self):
        config = small_config()
        report = FabricService(config).run(small_workload().generate(500))
        assert report.commit_log, "expected committed mutations"
        assert replay_committed(config, report.commit_log) == report.state_digest

    def test_replay_holds_under_faults(self):
        config = small_config()
        requests = small_workload().generate(500)
        injector = FaultInjector(seed=1)
        injector.schedule(0.2, FaultKind.CONTROLLER_CRASH, controller_target(),
                          clear_after_s=0.3)
        injector.schedule(0.9, FaultKind.RPC_TIMEOUT, controller_target(),
                          severity=8.0, clear_after_s=0.2)
        report = FabricService(config).run(requests, faults=injector)
        assert report.recoveries >= 1
        assert replay_committed(config, report.commit_log) == report.state_digest


class TestDeterminism:
    def test_same_seed_same_outcomes_digest(self):
        def run():
            injector = FaultInjector(seed=2)
            injector.schedule(0.3, FaultKind.CONTROLLER_CRASH,
                              controller_target(), clear_after_s=0.25)
            return FabricService(small_config()).run(
                small_workload(seed=2).generate(400), faults=injector
            )

        a, b = run(), run()
        assert a.outcomes_digest() == b.outcomes_digest()
        assert a.state_digest == b.state_digest
        assert [e.canonical() for e in a.commit_log] == [
            e.canonical() for e in b.commit_log
        ]


class TestOverloadBehaviors:
    def test_hot_tenant_is_throttled_before_quiet_ones(self):
        config = small_config()
        requests = ServeWorkload(
            seed=4, rate_per_s=1_500.0, num_tenants=32, hot_tenant_share=0.5
        ).generate(800)
        report = FabricService(config).run(requests)

        def reject_rate(tenant_filter):
            mine = [r for r in report.records if tenant_filter(r.request.tenant)]
            rejected = sum(1 for r in mine if r.outcome is Outcome.REJECTED)
            return rejected / max(1, len(mine))

        hot = reject_rate(lambda t: t == "t-000")
        quiet = reject_rate(lambda t: t != "t-000")
        assert hot > quiet

    def test_breaker_fast_fails_without_downstream_attempts(self):
        config = small_config(breaker_threshold=2, breaker_cooldown_s=5.0)
        requests = small_workload(seed=5).generate(300)
        injector = FaultInjector(seed=5)
        # Controller down for the entire run: after the trip, requests
        # fail fast with zero downstream attempts.
        injector.schedule(0.0, FaultKind.CONTROLLER_CRASH, controller_target(),
                          clear_after_s=10_000.0)
        report = FabricService(config).run(requests, faults=injector)
        fast_failed = [r for r in report.records
                       if r.outcome is Outcome.ERROR and r.detail == "breaker-open"]
        assert report.breaker_trips >= 1
        assert report.breaker_fast_fails > 0
        # A breaker-open verdict can follow attempts made before the
        # trip, but the steady state is a pure fast fail: zero launched.
        assert any(r.attempts == 0 for r in fast_failed)
        assert all(r.attempts < config.max_attempts for r in fast_failed)
        # With the controller down only local work can succeed:
        # read-only telemetry and no-op releases.  No mutation commits.
        for r in report.records:
            if r.outcome is Outcome.OK:
                assert r.request.kind in (
                    RequestKind.TELEMETRY_QUERY, RequestKind.SLICE_RELEASE
                )
        assert not report.commit_log

    def test_retry_amplification_never_exceeds_the_cap(self):
        config = small_config()
        requests = small_workload(seed=6, rate_per_s=1_000.0).generate(600)
        injector = FaultInjector(seed=6)
        for k in range(4):
            injector.schedule(0.1 + 0.4 * k, FaultKind.RPC_TIMEOUT,
                              controller_target(), severity=8.0,
                              clear_after_s=0.15)
        report = FabricService(config).run(requests, faults=injector)
        assert report.downstream_attempts > 0
        cap = 1.0 + config.retry_ratio
        assert report.downstream_attempts <= cap * report.deposits
        assert report.retry_amplification <= cap

    def test_queue_pressure_triggers_brownout_unpinned(self):
        # No faults, no pinned level: sustained overload alone must push
        # queue occupancy through the enter thresholds and engage the
        # adaptive brownout ladder (the breaker never opens here, so any
        # transition is occupancy-driven).
        config = small_config(
            queue_capacity=16,
            global_rate_per_s=2_000.0, global_burst=500.0,
            tenant_rate_per_s=500.0, tenant_burst=100.0,
        )
        requests = small_workload(rate_per_s=3_000.0).generate(600)
        report = FabricService(config).run(requests)
        assert report.breaker_trips == 0
        levels = [level for _, level in report.brownout_transitions]
        assert levels, "expected occupancy-driven brownout transitions"
        assert max(levels) >= 1

    def test_pinned_brownout_serves_cached_telemetry(self):
        config = small_config(pinned_brownout=2)
        requests = ServeWorkload(
            seed=7, rate_per_s=200.0, num_tenants=32,
            mix={RequestKind.TELEMETRY_QUERY: 1.0},
        ).generate(150)
        report = FabricService(config).run(requests)
        details = {r.detail for r in report.records if r.outcome is Outcome.OK}
        assert "cached" in details
        assert report.telemetry_cache_hits > report.telemetry_cache_misses

    def test_pinned_level_1_batches_traffic_updates(self):
        config = small_config(pinned_brownout=1)
        requests = ServeWorkload(
            seed=8, rate_per_s=400.0, num_tenants=32,
            mix={RequestKind.TRAFFIC_UPDATE: 1.0},
        ).generate(200)
        report = FabricService(config).run(requests)
        assert report.batches_flushed > 0
        batched_ok = sum(1 for r in report.records
                         if r.outcome is Outcome.OK and r.detail == "batched")
        assert batched_ok > 0
        assert replay_committed(config, report.commit_log) == report.state_digest


class TestConfigValidation:
    def test_tenant_circuit_mapping_is_collision_free(self):
        config = small_config()
        seen = set()
        for i in range(config.num_tenants):
            circuit = config.tenant_circuit(f"t-{i:03d}")
            assert circuit not in seen
            seen.add(circuit)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tenants": 0},
            {"queue_capacity": 0},
            {"global_rate_per_s": 0.0},
            {"rpc_timeout_ms": 0.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            small_config(**kwargs)


class TestReportPercentileCache:
    """Regression: percentile queries used to re-sort the full record
    list on every call; now each outcome's latencies are sorted once
    and cached on the (immutable) report."""

    def _report(self):
        return FabricService(small_config()).run(
            small_workload(seed=4, rate_per_s=600.0).generate(400)
        )

    def test_repeated_queries_reuse_one_sort(self):
        report = self._report()
        first = report.latency_percentile_ms(0.99)
        cached = report._sorted_latencies[Outcome.OK]
        for q in (0.5, 0.9, 0.95, 0.99):
            report.latency_percentile_ms(q)
        assert report._sorted_latencies[Outcome.OK] is cached
        assert report.latency_percentile_ms(0.99) == first

    def test_cached_percentiles_match_naive_order_statistic(self):
        import math

        report = self._report()
        for outcome in (Outcome.OK, Outcome.ERROR):
            latencies = sorted(
                r.latency_ms for r in report.records if r.outcome is outcome
            )
            for q in (0.5, 0.9, 0.99):
                expected = 0.0
                if latencies:
                    expected = latencies[
                        min(len(latencies) - 1, int(math.ceil(q * len(latencies))) - 1)
                    ]
                assert report.latency_percentile_ms(q, outcome) == expected

    def test_each_outcome_gets_its_own_cache_entry(self):
        report = self._report()
        report.latency_percentile_ms(0.99, Outcome.OK)
        report.latency_percentile_ms(0.99, Outcome.REJECTED)
        assert Outcome.OK in report._sorted_latencies
        assert Outcome.REJECTED in report._sorted_latencies
        assert (
            report._sorted_latencies[Outcome.OK]
            is not report._sorted_latencies[Outcome.REJECTED]
        )
