"""Tests for repro.serve.admission (token buckets + tenant fairness)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.admission import FairAdmission, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_from_elapsed_time(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=2.0)
        assert bucket.take(0.0) and bucket.take(0.0)
        assert not bucket.take(0.0)
        # 0.5 s at 2 tokens/s banks exactly one token.
        assert bucket.take(0.5)
        assert not bucket.take(0.5)

    def test_refill_clamps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2.0)
        assert bucket.level(1_000.0) == pytest.approx(2.0)

    def test_time_regression_raises(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        bucket.take(5.0)
        with pytest.raises(ConfigurationError):
            bucket.take(4.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.5)])
    def test_invalid_config(self, rate, burst):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=rate, burst=burst)


class TestFairAdmission:
    def build(self) -> FairAdmission:
        return FairAdmission(
            global_rate_per_s=100.0,
            global_burst=50.0,
            tenant_rate_per_s=2.0,
            tenant_burst=4.0,
        )

    def test_reasons(self):
        adm = self.build()
        verdicts = [adm.admit("t-0", 0.0) for _ in range(5)]
        assert verdicts[:4] == [(True, "ok")] * 4
        assert verdicts[4] == (False, "tenant-rate")

    def test_hot_tenant_cannot_starve_quiet_ones(self):
        adm = self.build()
        # The hot tenant fires 100 times at t=0: only its burst passes.
        hot = sum(adm.admit("hot", 0.0)[0] for _ in range(100))
        assert hot == 4
        # Quiet tenants still see full fair-share admission afterwards.
        assert all(adm.admit(f"q-{i}", 0.0) == (True, "ok") for i in range(10))

    def test_tenant_refusal_spares_global_tokens(self):
        adm = FairAdmission(
            global_rate_per_s=1.0, global_burst=5.0,
            tenant_rate_per_s=1.0, tenant_burst=2.0,
        )
        for _ in range(50):
            adm.admit("hot", 0.0)
        # Only the hot tenant's 2 admitted requests consumed global
        # tokens; 3 of 5 remain for everyone else.
        assert adm.admit("quiet-a", 0.0) == (True, "ok")
        assert adm.admit("quiet-b", 0.0) == (True, "ok")
        assert adm.admit("quiet-c", 0.0) == (True, "ok")
        assert adm.admit("quiet-d", 0.0) == (False, "global-rate")

    def test_global_refusal_spares_tenant_tokens(self):
        adm = FairAdmission(
            # Refill overshoots the burst between probe times, so each
            # step banks exactly one whole global token (no float dust).
            global_rate_per_s=1_000.0, global_burst=1.0,
            tenant_rate_per_s=0.001, tenant_burst=3.0,
        )
        assert adm.admit("hog", 0.0) == (True, "ok")  # drains the global bucket
        # Sustained global overload: every refusal is global-rate and
        # costs the quiet tenant nothing -- none of its fair-share
        # tokens burn on requests that were never admitted.
        assert [adm.admit("quiet", 0.0) for _ in range(10)] == [
            (False, "global-rate")
        ] * 10
        # Once the global bucket refills, the quiet tenant still has its
        # whole burst (tenant refill is negligible at 0.001/s): three
        # straight admissions, then an honest tenant-rate refusal.
        assert adm.admit("quiet", 0.01) == (True, "ok")
        assert adm.admit("quiet", 0.02) == (True, "ok")
        assert adm.admit("quiet", 0.03) == (True, "ok")
        assert adm.admit("quiet", 0.04) == (False, "tenant-rate")

    def test_global_exhaustion_reason(self):
        adm = FairAdmission(
            global_rate_per_s=1.0, global_burst=1.0,
            tenant_rate_per_s=100.0, tenant_burst=100.0,
        )
        assert adm.admit("a", 0.0) == (True, "ok")
        assert adm.admit("b", 0.0) == (False, "global-rate")

    def test_tenant_buckets_created_lazily(self):
        adm = self.build()
        assert adm.num_tenants_seen == 0
        adm.admit("a", 0.0)
        adm.admit("b", 0.0)
        adm.admit("a", 0.0)
        assert adm.num_tenants_seen == 2
