"""Hypothesis properties of the serving layer.

For *any* injected fault timeline (crashes and timeout bursts at
arbitrary instants):

- total downstream attempts never exceed the retry budget's provable
  cap, ``(1 + retry_ratio) x requests entering service`` (and hence
  ``cap x admitted``);
- shed + admitted + rejected exactly partitions the offered load, with
  every request reaching exactly one terminal outcome;
- serially replaying the commit log reproduces the live state digest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.events import FaultKind, controller_target
from repro.faults.injector import FaultInjector
from repro.serve.requests import ADMITTED_OUTCOMES, Outcome
from repro.serve.service import FabricService, ServeConfig, replay_committed
from repro.serve.workload import ServeWorkload

fault_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.5),
        st.sampled_from([FaultKind.CONTROLLER_CRASH, FaultKind.RPC_TIMEOUT]),
        st.floats(min_value=1.0, max_value=12.0),   # severity
        st.floats(min_value=0.05, max_value=0.5),   # clear_after_s
    ),
    min_size=0,
    max_size=8,
)


def run_with_timeline(events, seed: int):
    config = ServeConfig(
        num_traffic_ocses=2, num_tenants=16, allocator_cubes=8, seed=seed
    )
    requests = ServeWorkload(
        seed=seed, rate_per_s=800.0, num_tenants=16
    ).generate(150)
    injector = FaultInjector(seed=seed)
    for time_s, kind, severity, clear_after_s in sorted(
        events, key=lambda e: (e[0], e[1].value)
    ):
        injector.schedule(
            time_s, kind, controller_target(),
            severity=severity, clear_after_s=clear_after_s,
        )
    report = FabricService(config, obs=None).run(requests, faults=injector)
    return config, report


@settings(max_examples=15, deadline=None)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_attempts_bounded_for_any_fault_timeline(events, seed):
    _, report = run_with_timeline(events, seed)
    cap = 1.0 + report.config.retry_ratio
    admitted = report.admitted
    assert report.deposits <= admitted
    assert report.downstream_attempts <= cap * report.deposits
    assert report.downstream_attempts <= cap * admitted


@settings(max_examples=15, deadline=None)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_outcomes_partition_offered_load(events, seed):
    _, report = run_with_timeline(events, seed)
    counts = {o: report.count(o) for o in Outcome}
    assert sum(counts.values()) == report.offered == len(report.records)
    admitted = sum(counts[o] for o in ADMITTED_OUTCOMES)
    assert counts[Outcome.SHED] + counts[Outcome.REJECTED] + admitted == report.offered
    ids = [r.request.request_id for r in report.records]
    assert len(ids) == len(set(ids)), "a request got two terminal outcomes"


@settings(max_examples=10, deadline=None)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_replay_matches_live_state_for_any_fault_timeline(events, seed):
    config, report = run_with_timeline(events, seed)
    assert replay_committed(config, report.commit_log) == report.state_digest
