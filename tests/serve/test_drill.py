"""Acceptance tests for the overload-burst serving drill.

These pin the ISSUE's acceptance bar: deterministic shedding under a
3x-capacity burst with a controller-crash + RPC-timeout storm, serve
SLOs within the committed thresholds, retry amplification within the
provable cap, and replay equivalence of the commit log.
"""

import json
from pathlib import Path

import pytest

from repro.faults.injector import FaultInjector
from repro.serve.drill import (
    build_fault_timeline,
    drill_slos,
    report_jsonl_lines,
    run_serve_drill,
)
from repro.serve.requests import Outcome

THRESHOLDS = json.loads(
    (Path(__file__).resolve().parents[2] / "benchmarks" / "slo_thresholds.json")
    .read_text()
)


@pytest.fixture(scope="module")
def drill():
    return run_serve_drill(seed=0, smoke=True)


class TestAcceptance:
    def test_overload_is_real(self, drill):
        summary = drill["summary"]
        # The workload offers ~3x the admission capacity: a healthy
        # chunk must be refused or shed, and faults must actually bite.
        assert summary["rejected"] > 0
        assert summary["shed"] > 0
        assert summary["breaker_trips"] > 0
        assert summary["recoveries"] > 0
        assert summary["offered_rate_per_s"] > 1_000.0

    def test_partition_of_offered_load(self, drill):
        s = drill["summary"]
        assert (
            s["ok"] + s["rejected"] + s["shed"] + s["timeout"] + s["error"]
            == s["offered"]
        )
        assert s["admitted"] == s["ok"] + s["timeout"] + s["error"]

    def test_slos_within_committed_thresholds(self, drill):
        slos = drill_slos(drill["summary"])
        for name, value in slos.items():
            assert value <= THRESHOLDS[name], f"{name}: {value} > {THRESHOLDS[name]}"

    def test_retry_amplification_within_provable_cap(self, drill):
        report = drill["report"]
        cap = 1.0 + report.config.retry_ratio
        assert report.downstream_attempts <= cap * report.deposits
        assert drill["summary"]["serve_retry_amplification"] <= cap

    def test_replay_digest_matches_live_state(self, drill):
        s = drill["summary"]
        assert s["replay_digest"] == s["state_digest"]

    def test_same_seed_identical_run(self, drill):
        again = run_serve_drill(seed=0, smoke=True)["summary"]
        assert again == drill["summary"]

    def test_different_seed_different_outcomes(self, drill):
        other = run_serve_drill(seed=1, smoke=True)["summary"]
        assert other["outcomes_digest"] != drill["summary"]["outcomes_digest"]

    def test_jsonl_artifact_covers_every_request(self, drill):
        lines = report_jsonl_lines(drill["report"])
        assert len(lines) == drill["summary"]["offered"]
        parsed = [json.loads(line) for line in lines[:50]]
        for row in parsed:
            assert row["outcome"] in {o.value for o in Outcome}
            assert row["finish_s"] >= row["arrival_s"] >= 0.0

    def test_fault_timeline_is_seed_stable(self):
        def digest(seed):
            injector = FaultInjector(seed=seed)
            build_fault_timeline(injector, horizon_s=4.0)
            injector.advance_to(10.0)
            return injector.delivered_digest()

        assert digest(3) == digest(3)
