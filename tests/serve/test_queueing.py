"""Tests for repro.serve.queueing (bounded queue, explicit shedding)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.queueing import BoundedPriorityQueue
from repro.serve.requests import RequestKind, TenantRequest


def request(seq: int, kind: RequestKind = RequestKind.TELEMETRY_QUERY) -> TenantRequest:
    return TenantRequest(
        request_id=f"rq-{seq:04d}",
        tenant="t-000",
        kind=kind,
        arrival_s=float(seq),
        deadline_s=float(seq) + 1.0,
        seq=seq,
    )


class TestBoundedPriorityQueue:
    def test_pops_by_class_then_arrival(self):
        q = BoundedPriorityQueue(capacity=8)
        a = request(0, RequestKind.TELEMETRY_QUERY)   # class 2
        b = request(1, RequestKind.TRAFFIC_UPDATE)    # class 1
        c = request(2, RequestKind.SLICE_ALLOC)       # class 0
        d = request(3, RequestKind.SLICE_RELEASE)     # class 0, newer
        for req in (a, b, c, d):
            assert q.push(req, now_s=0.0) is None
        assert [q.pop() for _ in range(4)] == [c, d, b, a]

    def test_full_queue_sheds_worst_not_newest(self):
        q = BoundedPriorityQueue(capacity=2)
        telemetry = request(0, RequestKind.TELEMETRY_QUERY)
        mutation = request(1, RequestKind.SLICE_ALLOC)
        assert q.push(telemetry, 0.0) is None
        assert q.push(mutation, 0.0) is None
        newcomer = request(2, RequestKind.RECONFIGURE)
        shed = q.push(newcomer, 0.5)
        assert shed is not None
        # The telemetry query loses its slot to the arriving mutation.
        assert shed.victim is telemetry
        assert shed.displaced_by is newcomer
        assert shed.time_s == 0.5
        assert len(q) == 2
        assert q.pop() is mutation
        assert q.pop() is newcomer

    def test_worst_arrival_is_shed_directly(self):
        q = BoundedPriorityQueue(capacity=2)
        q.push(request(0, RequestKind.SLICE_ALLOC), 0.0)
        q.push(request(1, RequestKind.TRAFFIC_UPDATE), 0.0)
        late_telemetry = request(2, RequestKind.TELEMETRY_QUERY)
        shed = q.push(late_telemetry, 1.0)
        assert shed is not None
        assert shed.victim is late_telemetry
        assert shed.displaced_by is None
        assert len(q) == 2

    def test_within_class_newest_is_shed(self):
        q = BoundedPriorityQueue(capacity=2)
        old = request(0)
        mid = request(1)
        new = request(2)
        q.push(old, 0.0)
        q.push(mid, 0.0)
        shed = q.push(new, 0.0)
        assert shed is not None and shed.victim is new

    def test_occupancy_and_drain(self):
        q = BoundedPriorityQueue(capacity=4)
        assert q.occupancy == 0.0
        for i in range(3):
            q.push(request(i), 0.0)
        assert q.occupancy == pytest.approx(0.75)
        drained = q.drain()
        assert [r.seq for r in drained] == [0, 1, 2]
        assert len(q) == 0 and q.pop() is None

    def test_tied_keys_never_compare_requests(self):
        # Externally built requests can share (priority, seq,
        # request_id) -- nothing enforces uniqueness at push time.  The
        # heap must order on the key alone, never falling through to
        # TenantRequest (which defines no ordering -> TypeError).
        q = BoundedPriorityQueue(capacity=2)
        twins = [
            TenantRequest(
                request_id="rq-dup",
                tenant="t-000",
                kind=RequestKind.TELEMETRY_QUERY,
                arrival_s=0.0,
                deadline_s=1.0,
            )
            for _ in range(3)
        ]
        assert q.push(twins[0], 0.0) is None
        assert q.push(twins[1], 0.0) is None
        shed = q.push(twins[2], 0.0)  # full + fully tied: sheds, no raise
        assert shed is not None
        assert shed.victim is twins[2]
        assert shed.displaced_by is None
        popped = [q.pop(), q.pop()]
        assert all(p is twins[0] or p is twins[1] for p in popped)
        assert q.pop() is None

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            BoundedPriorityQueue(capacity=0)
