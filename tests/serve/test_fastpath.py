"""The fast serving path is a bit-exact twin of ``run_reference``.

PR 10 rebuilt ``FabricService.run`` (indexed calendar, delta commit
plane, digest cache, streaming sink) with the old loop kept as
``run_reference``.  These tests pin the equivalence the rebuild claims:

- for *any* injected fault timeline, the fast path and the reference
  produce identical outcome digests, state digests, commit logs, and
  summaries (Hypothesis property);
- the same equality holds at 10k-request / 2,048-tenant drill scale;
- the streaming sink's reorder window stays bounded by in-flight work
  (the flat-memory contract), and its digest equals the full-record
  one;
- the ``_DigestCache`` answer equals ``FabricManager.state_digest()``
  after slice allocs/releases have churned the link table;
- the sharded drill merges to byte-identical summaries for any worker
  count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.events import FaultKind, controller_target
from repro.faults.injector import FaultInjector
from repro.parallel import SweepEngine
from repro.serve.drill import (
    build_fault_timeline,
    drill_config,
    run_serve_drill,
    run_serve_drill_sharded,
)
from repro.serve.requests import Outcome
from repro.serve.service import FabricService, ServeConfig
from repro.serve.sink import StreamingRecordSink
from repro.serve.workload import ServeWorkload

fault_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.5),
        st.sampled_from([FaultKind.CONTROLLER_CRASH, FaultKind.RPC_TIMEOUT]),
        st.floats(min_value=1.0, max_value=12.0),   # severity
        st.floats(min_value=0.05, max_value=0.5),   # clear_after_s
    ),
    min_size=0,
    max_size=8,
)


def _injector(events, seed: int) -> FaultInjector:
    injector = FaultInjector(seed=seed)
    for time_s, kind, severity, clear_after_s in sorted(
        events, key=lambda e: (e[0], e[1].value)
    ):
        injector.schedule(
            time_s, kind, controller_target(),
            severity=severity, clear_after_s=clear_after_s,
        )
    return injector


def _small_run(events, seed: int, reference: bool, sink=None):
    config = ServeConfig(
        num_traffic_ocses=2, num_tenants=16, allocator_cubes=8, seed=seed
    )
    requests = ServeWorkload(
        seed=seed, rate_per_s=800.0, num_tenants=16
    ).generate(150)
    service = FabricService(config, sink=sink)
    runner = service.run_reference if reference else service.run
    report = runner(requests, faults=_injector(events, seed))
    return service, report


@settings(max_examples=15, deadline=None)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_fast_path_equals_reference_for_any_fault_timeline(events, seed):
    _, fast = _small_run(events, seed, reference=False)
    _, ref = _small_run(events, seed, reference=True)
    assert fast.outcomes_digest() == ref.outcomes_digest()
    assert fast.state_digest == ref.state_digest
    assert [e.canonical() for e in fast.commit_log] == [
        e.canonical() for e in ref.commit_log
    ]
    assert fast.summary() == ref.summary()


@settings(max_examples=10, deadline=None)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_streaming_sink_matches_full_records_and_stays_flat(events, seed):
    sink = StreamingRecordSink(seed=seed)
    service, fast = _small_run(events, seed, reference=False, sink=sink)
    _, ref = _small_run(events, seed, reference=True)
    aggregates = fast.aggregates
    assert aggregates is not None and not fast.records
    assert aggregates.outcomes_digest == ref.outcomes_digest()
    assert aggregates.total == ref.offered
    for outcome in Outcome:
        assert aggregates.outcome_counts[outcome] == ref.count(outcome)
    # Flat memory: the reorder window is bounded by in-flight work
    # (bounded queue, coalescing batch, retry/timeout windows), never
    # by the offered total.
    bound = 3 * (
        service.config.queue_capacity + service.config.batch_max_updates
    )
    assert 0 < aggregates.peak_pending <= bound


@settings(max_examples=10, deadline=None)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_digest_cache_equals_manager_digest(events, seed):
    service, report = _small_run(events, seed, reference=False)
    cache = service._digest_cache
    assert cache is not None
    assert cache.digest() == service.manager.state_digest()
    assert report.state_digest == service.manager.state_digest()


def test_peak_pending_saturates_independent_of_request_count():
    """The reorder window plateaus once the in-flight pipeline is full:
    quadrupling the offered load leaves peak_pending unchanged."""
    peaks = {}
    for n in (600, 1_200, 2_400):
        config = ServeConfig(
            num_traffic_ocses=2, num_tenants=16, allocator_cubes=8, seed=0
        )
        requests = ServeWorkload(
            seed=0, rate_per_s=800.0, num_tenants=16
        ).generate(n)
        sink = StreamingRecordSink(seed=0)
        report = FabricService(config, sink=sink).run(requests)
        peaks[n] = report.aggregates.peak_pending
    assert peaks[600] == peaks[1_200] == peaks[2_400]
    assert peaks[2_400] <= 3 * (config.queue_capacity + config.batch_max_updates)


def test_fast_path_equals_reference_at_drill_scale():
    """The 10k-request / 2,048-tenant bar from the issue: digests,
    commit logs, and summaries all byte-identical."""
    num_primaries = 10_000
    config = drill_config(seed=7, num_tenants=2_048)
    workload = ServeWorkload(seed=7, rate_per_s=1_200.0, num_tenants=2_048)
    requests = workload.generate(num_primaries)
    horizon_s = workload.horizon_s(num_primaries)

    def _run(reference: bool):
        injector = FaultInjector(seed=7)
        build_fault_timeline(injector, horizon_s)
        service = FabricService(config)
        runner = service.run_reference if reference else service.run
        return runner(requests, faults=injector)

    fast, ref = _run(False), _run(True)
    assert fast.outcomes_digest() == ref.outcomes_digest()
    assert fast.state_digest == ref.state_digest
    assert [e.canonical() for e in fast.commit_log] == [
        e.canonical() for e in ref.commit_log
    ]
    assert fast.summary() == ref.summary()


def test_streaming_drill_matches_full_record_drill():
    full = run_serve_drill(seed=11, smoke=True)["summary"]
    stream = run_serve_drill(seed=11, smoke=True, streaming=True)["summary"]
    assert stream["outcomes_digest"] == full["outcomes_digest"]
    assert stream["state_digest"] == full["state_digest"]
    for key in ("offered", "ok", "rejected", "shed", "timeout", "error",
                "admitted", "commits", "replay_digest"):
        assert stream[key] == full[key], key
    assert stream["peak_pending"] > 0


def test_sharded_drill_is_worker_count_invariant():
    kwargs = dict(seed=3, smoke=True, num_primaries=3_000, num_tenants=512)
    serial = run_serve_drill_sharded(
        engine=SweepEngine(workers=1), **kwargs
    )["summary"]
    pooled = run_serve_drill_sharded(
        engine=SweepEngine(workers=4, ship="shm", chunk_size=1), **kwargs
    )["summary"]
    pickled = run_serve_drill_sharded(
        engine=SweepEngine(workers=2, ship="pickle"), **kwargs
    )["summary"]
    assert serial == pooled == pickled
    assert serial["sharded_digest"]
    assert serial["num_cells"] == 8


def test_sharded_drill_partitions_offered_load():
    out = run_serve_drill_sharded(
        seed=5, smoke=True, num_primaries=3_000, num_tenants=512,
        engine=SweepEngine(workers=1),
    )
    summary, cells = out["summary"], out["cells"]
    assert summary["offered"] == sum(c["offered"] for c in cells)
    assert summary["offered"] >= 3_000
    counted = sum(summary["outcomes"].values())
    assert counted == summary["offered"]
    # Every cell proved its own replay equivalence before returning.
    for cell in cells:
        assert cell["replay_digest"] == cell["state_digest"]
