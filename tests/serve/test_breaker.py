"""Tests for repro.serve.breaker (the controller circuit breaker)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.breaker import BreakerState, CircuitBreaker


class TestCircuitBreaker:
    def build(self) -> CircuitBreaker:
        return CircuitBreaker(failure_threshold=3, cooldown_s=1.0)

    def test_trips_on_consecutive_failures(self):
        brk = self.build()
        for _ in range(2):
            brk.record_failure(0.0)
        assert brk.state(0.0) is BreakerState.CLOSED
        brk.record_failure(0.0)
        assert brk.state(0.0) is BreakerState.OPEN
        assert brk.trips == 1
        assert not brk.allow(0.5)

    def test_success_resets_the_failure_count(self):
        brk = self.build()
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        brk.record_success(0.0)
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        assert brk.state(0.0) is BreakerState.CLOSED

    def test_cooldown_elapses_to_single_probe(self):
        brk = self.build()
        for _ in range(3):
            brk.record_failure(0.0)
        assert not brk.allow(0.99)
        # Cooldown over: exactly one probe passes.
        assert brk.allow(1.0)
        assert brk.state(1.0) is BreakerState.HALF_OPEN
        assert not brk.allow(1.0)
        assert not brk.allow(1.5)

    def test_probe_success_closes(self):
        brk = self.build()
        for _ in range(3):
            brk.record_failure(0.0)
        assert brk.allow(1.0)
        brk.record_success(1.0)
        assert brk.state(1.0) is BreakerState.CLOSED
        assert brk.allow(1.0)

    def test_probe_failure_reopens_for_another_cooldown(self):
        brk = self.build()
        for _ in range(3):
            brk.record_failure(0.0)
        assert brk.allow(1.0)
        brk.record_failure(1.0)
        assert brk.state(1.0) is BreakerState.OPEN
        assert brk.trips == 2
        assert not brk.allow(1.5)
        assert brk.allow(2.0)  # the next probe, one cooldown later

    @pytest.mark.parametrize("kwargs", [{"failure_threshold": 0}, {"cooldown_s": 0.0}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**kwargs)
