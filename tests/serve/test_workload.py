"""Tests for repro.serve.workload (seeded open-loop request streams)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.requests import RequestKind
from repro.serve.workload import ServeWorkload


class TestServeWorkload:
    def test_same_seed_same_bytes(self):
        a = ServeWorkload(seed=11).generate(300)
        b = ServeWorkload(seed=11).generate(300)
        assert [r.canonical() for r in a] == [r.canonical() for r in b]

    def test_different_seeds_differ(self):
        a = ServeWorkload(seed=1).generate(100)
        b = ServeWorkload(seed=2).generate(100)
        assert [r.canonical() for r in a] != [r.canonical() for r in b]

    def test_prefix_stability_of_primaries(self):
        # The first k primary requests are identical whatever the
        # stream length: each random stream draws once per primary.
        short = ServeWorkload(seed=3).generate(80)
        long = ServeWorkload(seed=3).generate(240)
        short_primaries = [r for r in short if r.request_id.startswith("rq-")]
        long_primaries = [r for r in long if r.request_id.startswith("rq-")]
        assert [r.canonical() for r in short_primaries] == [
            r.canonical() for r in long_primaries[: len(short_primaries)]
        ]

    def test_merged_stream_is_ordered_with_dense_seqs(self):
        requests = ServeWorkload(seed=5).generate(200)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.seq for r in requests] == list(range(len(requests)))

    def test_every_alloc_release_pair_is_consistent(self):
        requests = ServeWorkload(seed=7, slice_hold_mean_s=0.01).generate(400)
        allocs = {r.request_id for r in requests if r.kind is RequestKind.SLICE_ALLOC}
        releases = [r for r in requests if r.kind is RequestKind.SLICE_RELEASE]
        assert releases, "expected derived releases in a 400-request stream"
        for release in releases:
            target = release.param("slice")
            assert target in allocs
            alloc = next(r for r in requests if r.request_id == target)
            assert release.arrival_s > alloc.arrival_s
            assert release.tenant == alloc.tenant

    def test_hot_tenant_concentration(self):
        requests = ServeWorkload(seed=9, hot_tenant_share=0.5).generate(500)
        hot = sum(1 for r in requests if r.tenant == "t-000")
        assert hot / len(requests) > 0.35

    def test_deadlines_follow_the_kind_table(self):
        wl = ServeWorkload(seed=1)
        for r in wl.generate(100):
            assert r.deadline_s - r.arrival_s == pytest.approx(
                wl.deadlines_s[r.kind]
            )

    def test_release_not_drawable(self):
        with pytest.raises(ConfigurationError):
            ServeWorkload(mix={RequestKind.SLICE_RELEASE: 1.0})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_s": 0.0},
            {"num_tenants": 0},
            {"mix": {}},
            {"hot_tenant_share": 1.0},
            {"deadlines_s": {RequestKind.TELEMETRY_QUERY: 0.0}},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeWorkload(**kwargs)
