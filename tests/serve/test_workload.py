"""Tests for repro.serve.workload (seeded open-loop request streams)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.requests import RequestKind
from repro.serve.workload import ServeWorkload


class TestServeWorkload:
    def test_same_seed_same_bytes(self):
        a = ServeWorkload(seed=11).generate(300)
        b = ServeWorkload(seed=11).generate(300)
        assert [r.canonical() for r in a] == [r.canonical() for r in b]

    def test_different_seeds_differ(self):
        a = ServeWorkload(seed=1).generate(100)
        b = ServeWorkload(seed=2).generate(100)
        assert [r.canonical() for r in a] != [r.canonical() for r in b]

    def test_prefix_stability_of_primaries(self):
        # The first k primary requests are identical whatever the
        # stream length: each random stream draws once per primary.
        short = ServeWorkload(seed=3).generate(80)
        long = ServeWorkload(seed=3).generate(240)
        short_primaries = [r for r in short if r.request_id.startswith("rq-")]
        long_primaries = [r for r in long if r.request_id.startswith("rq-")]
        assert [r.canonical() for r in short_primaries] == [
            r.canonical() for r in long_primaries[: len(short_primaries)]
        ]

    def test_merged_stream_is_ordered_with_dense_seqs(self):
        requests = ServeWorkload(seed=5).generate(200)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.seq for r in requests] == list(range(len(requests)))

    def test_every_alloc_release_pair_is_consistent(self):
        requests = ServeWorkload(seed=7, slice_hold_mean_s=0.01).generate(400)
        allocs = {r.request_id for r in requests if r.kind is RequestKind.SLICE_ALLOC}
        releases = [r for r in requests if r.kind is RequestKind.SLICE_RELEASE]
        assert releases, "expected derived releases in a 400-request stream"
        for release in releases:
            target = release.param("slice")
            assert target in allocs
            alloc = next(r for r in requests if r.request_id == target)
            assert release.arrival_s > alloc.arrival_s
            assert release.tenant == alloc.tenant

    def test_hot_tenant_concentration(self):
        requests = ServeWorkload(seed=9, hot_tenant_share=0.5).generate(500)
        hot = sum(1 for r in requests if r.tenant == "t-000")
        assert hot / len(requests) > 0.35

    def test_deadlines_follow_the_kind_table(self):
        wl = ServeWorkload(seed=1)
        for r in wl.generate(100):
            assert r.deadline_s - r.arrival_s == pytest.approx(
                wl.deadlines_s[r.kind]
            )

    def test_release_not_drawable(self):
        with pytest.raises(ConfigurationError):
            ServeWorkload(mix={RequestKind.SLICE_RELEASE: 1.0})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_s": 0.0},
            {"num_tenants": 0},
            {"mix": {}},
            {"hot_tenant_share": 1.0},
            {"deadlines_s": {RequestKind.TELEMETRY_QUERY: 0.0}},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeWorkload(**kwargs)


class TestColumnarWorkload:
    """The vectorized columns path is bit-identical to the scalar
    stream -- this is what lets the sharded drill ship one set of
    ndarrays over shared memory and rebuild any cell's slice of the
    stream inside a worker."""

    def test_columns_rebuild_equals_generate(self):
        wl = ServeWorkload(seed=17, rate_per_s=900.0, num_tenants=64)
        expected = wl.generate(500)
        cols = wl.columns(500)
        rebuilt = wl.requests_from_columns(cols)
        assert [r.canonical() for r in rebuilt] == [
            r.canonical() for r in expected
        ]
        assert [r.seq for r in rebuilt] == [r.seq for r in expected]

    def test_iter_from_columns_equals_stream_across_chunks(self):
        wl = ServeWorkload(seed=23, rate_per_s=900.0, num_tenants=64)
        expected = [r.canonical() for r in wl.stream(500)]
        cols = wl.columns(500)
        for chunk_rows in (1, 7, 100, 65_536):
            got = [r.canonical() for r in wl.iter_from_columns(cols, chunk_rows)]
            assert got == expected, f"chunk_rows={chunk_rows}"

    def test_row_subset_keeps_global_seqs(self):
        wl = ServeWorkload(seed=31, rate_per_s=900.0, num_tenants=64)
        full = wl.generate(300)
        cols = wl.columns(300)
        rows = [i for i in range(len(full)) if i % 3 == 1]
        subset = wl.requests_from_columns(cols, rows)
        assert [r.canonical() for r in subset] == [
            full[i].canonical() for i in rows
        ]

    def test_horizon_is_last_primary_arrival(self):
        wl = ServeWorkload(seed=41, rate_per_s=900.0, num_tenants=64)
        requests = wl.generate(350)
        last_primary = max(
            r.arrival_s for r in requests if r.request_id.startswith("rq-")
        )
        assert wl.horizon_s(350) == last_primary
        cols = wl.columns(350)
        assert float(cols["t"][-1]) >= last_primary

    def test_single_tenant_columns_round_trip(self):
        wl = ServeWorkload(seed=2, rate_per_s=400.0, num_tenants=1)
        expected = wl.generate(120)
        assert all(r.tenant == "t-000" for r in expected)
        rebuilt = wl.requests_from_columns(wl.columns(120))
        assert [r.canonical() for r in rebuilt] == [
            r.canonical() for r in expected
        ]

    def test_horizon_of_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeWorkload(seed=1).horizon_s(0)
