"""Tests for repro.serve.retry (the shared retry-token budget)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.retry import RetryBudget


class TestRetryBudget:
    def test_pool_starts_empty(self):
        budget = RetryBudget(retry_ratio=0.5)
        assert budget.tokens == 0.0
        assert not budget.try_spend()
        assert budget.retries_denied == 1

    def test_deposits_fund_whole_retries(self):
        budget = RetryBudget(retry_ratio=0.5)
        budget.deposit()
        assert not budget.try_spend()  # 0.5 tokens: not a whole retry
        budget.deposit()
        assert budget.try_spend()      # 1.0 banked
        assert not budget.try_spend()  # pool drained again
        assert budget.deposits == 2
        assert budget.retries_granted == 1
        assert budget.retries_denied == 2

    def test_pool_cap_bounds_banked_burst(self):
        budget = RetryBudget(retry_ratio=1.0, pool_cap=3.0)
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == pytest.approx(3.0)
        grants = sum(budget.try_spend() for _ in range(100))
        assert grants == 3

    def test_amplification_cap(self):
        assert RetryBudget(retry_ratio=0.5).amplification_cap == pytest.approx(1.5)
        assert RetryBudget(retry_ratio=0.0).amplification_cap == pytest.approx(1.0)

    def test_zero_ratio_never_grants(self):
        budget = RetryBudget(retry_ratio=0.0)
        for _ in range(10):
            budget.deposit()
        assert not budget.try_spend()

    def test_invariant_attempts_bounded_for_any_interleaving(self):
        # attempts = deposits + grants <= (1 + ratio) * deposits, no
        # matter how deposits and spend attempts interleave.
        budget = RetryBudget(retry_ratio=0.3, pool_cap=10.0)
        attempts = 0
        for i in range(200):
            budget.deposit()
            attempts += 1
            # Greedy storm: retry as often as the budget ever allows.
            while budget.try_spend():
                attempts += 1
        assert attempts == budget.deposits + budget.retries_granted
        assert attempts <= budget.amplification_cap * budget.deposits

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry_ratio": -0.1},
            {"retry_ratio": 1.5},
            {"max_attempts": 0},
            {"pool_cap": 0.5},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryBudget(**kwargs)
