"""Tests for repro.tpu.ici."""

import pytest

from repro.core.errors import ConfigurationError
from repro.tpu.ici import IciSpec


@pytest.fixture
def spec():
    return IciSpec()


class TestLatency:
    def test_electrical_hop(self, spec):
        assert spec.hop_latency_ns(False) == spec.electrical_hop_ns

    def test_optical_hop_adds_fiber_and_serdes(self, spec):
        optical = spec.hop_latency_ns(True)
        assert optical > spec.electrical_hop_ns + spec.optical_hop_extra_ns
        # 40 m of fiber is ~200 ns.
        assert optical < spec.electrical_hop_ns + spec.optical_hop_extra_ns + 300

    def test_path_latency(self, spec):
        total = spec.path_latency_ns(num_hops=5, inter_cube_hops=2)
        expected = 3 * spec.hop_latency_ns(False) + 2 * spec.hop_latency_ns(True)
        assert total == pytest.approx(expected)

    def test_path_validation(self, spec):
        with pytest.raises(ConfigurationError):
            spec.path_latency_ns(2, 3)
        with pytest.raises(ConfigurationError):
            spec.path_latency_ns(-1, 0)


class TestBandwidth:
    def test_bytes_per_second(self, spec):
        assert spec.link_bytes_per_s == pytest.approx(400e9 / 8)

    def test_transfer_time(self, spec):
        # 50 MB over 50 GB/s = 1 ms = 1000 us.
        assert spec.transfer_time_us(50e6) == pytest.approx(1000.0)

    def test_transfer_validation(self, spec):
        with pytest.raises(ConfigurationError):
            spec.transfer_time_us(-1)


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            IciSpec(link_gbps=0)

    def test_bad_latency(self):
        with pytest.raises(ConfigurationError):
            IciSpec(electrical_hop_ns=-1)

    def test_bad_fiber(self):
        with pytest.raises(ConfigurationError):
            IciSpec(inter_cube_fiber_m=-1)
