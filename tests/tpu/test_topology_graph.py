"""Tests for Superpod.topology_graph: networkx cross-validation.

The exported graphs let us validate the torus metrics against an
independent implementation (networkx shortest paths) -- distances,
regularity, and bisection all agree.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId, SliceId
from repro.tpu.routing import torus_diameter, torus_hop_distance
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


def pod_with_slice(shape, wrap=True):
    n = shape[0] * shape[1] * shape[2]
    pod = Superpod(num_cubes=max(n, 1))
    topo = SliceTopology.compose(
        SliceId("s"), shape, [CubeId(i) for i in range(n)], wrap=wrap
    )
    pod.configure_slice(topo)
    return pod, topo


class TestCubeGraph:
    def test_nodes_and_edges(self):
        pod, topo = pod_with_slice((2, 2, 2))
        g = pod.topology_graph(SliceId("s"), level="cube")
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 3 * 8  # one per cube per dim

    def test_mesh_has_fewer_edges(self):
        pod, _ = pod_with_slice((1, 1, 4), wrap=False)
        g = pod.topology_graph(SliceId("s"), level="cube")
        assert g.number_of_edges() == 3  # chain of 4, no wrap, no unit dims

    def test_unknown_level(self):
        pod, _ = pod_with_slice((1, 1, 2))
        with pytest.raises(ConfigurationError):
            pod.topology_graph(SliceId("s"), level="rack")


class TestChipGraph:
    @pytest.fixture(scope="class")
    def graph_and_shape(self):
        pod, topo = pod_with_slice((2, 2, 2))
        return pod.topology_graph(SliceId("s"), level="chip"), topo.chip_shape

    def test_regular_degree_six(self, graph_and_shape):
        g, _ = graph_and_shape
        degrees = {d for _, d in g.degree()}
        assert degrees == {6}  # every chip has 2 links per dimension

    def test_edge_count(self, graph_and_shape):
        g, shape = graph_and_shape
        n = shape[0] * shape[1] * shape[2]
        assert g.number_of_edges() == 3 * n

    def test_electrical_and_optical_mix(self, graph_and_shape):
        g, _ = graph_and_shape
        kinds = {d["kind"] for _, _, d in g.edges(data=True)}
        assert kinds == {"electrical", "optical"}

    def test_networkx_diameter_matches_metric(self, graph_and_shape):
        g, shape = graph_and_shape
        assert nx.diameter(g) == torus_diameter(shape)

    @given(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
    )
    @settings(max_examples=30, deadline=None)
    def test_distances_match_metric(self, a, b):
        pod, topo = pod_with_slice((2, 2, 2))
        g = pod.topology_graph(SliceId("s"), level="chip")
        assert nx.shortest_path_length(g, a, b) == torus_hop_distance(
            a, b, topo.chip_shape
        )

    def test_connected(self, graph_and_shape):
        g, _ = graph_and_shape
        assert nx.is_connected(g)
