"""Tests for repro.tpu.higher_torus (§6 future-work study)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.tpu.higher_torus import (
    compare_dimensionalities,
    near_cubic_shape,
    ocses_for_torus,
    torus_nd_average_hops,
    torus_nd_bisection_links,
    torus_nd_diameter,
    torus_nd_links_per_chip,
    torus_nd_num_chips,
)
from repro.tpu.routing import (
    torus_average_hops,
    torus_bisection_links,
    torus_diameter,
)


class TestNdMetricsMatch3d:
    """The N-D generalization must agree with the 3D implementation."""

    @pytest.mark.parametrize("shape", [(16, 16, 16), (4, 4, 256), (8, 16, 32)])
    def test_diameter(self, shape):
        assert torus_nd_diameter(shape) == torus_diameter(shape)

    @pytest.mark.parametrize("shape", [(16, 16, 16), (4, 4, 256), (2, 2, 2)])
    def test_bisection(self, shape):
        assert torus_nd_bisection_links(shape) == torus_bisection_links(shape)

    @pytest.mark.parametrize("shape", [(4, 4, 4), (2, 4, 8)])
    def test_average_hops(self, shape):
        assert torus_nd_average_hops(shape) == pytest.approx(torus_average_hops(shape))


class TestNdMetrics:
    def test_num_chips(self):
        assert torus_nd_num_chips((8, 8, 8, 8)) == 4096

    def test_links_per_chip(self):
        assert torus_nd_links_per_chip((16, 16, 16)) == 6
        assert torus_nd_links_per_chip((8, 8, 8, 8)) == 8
        assert torus_nd_links_per_chip((1, 4, 4)) == 4  # unit dim is a self-loop

    def test_single_node(self):
        assert torus_nd_average_hops((1,)) == 0.0
        assert torus_nd_diameter((1, 1)) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            torus_nd_diameter(())
        with pytest.raises(ConfigurationError):
            torus_nd_bisection_links((0, 4))


class TestNearCubic:
    def test_4096_shapes(self):
        assert near_cubic_shape(4096, 3) == (16, 16, 16)
        assert near_cubic_shape(4096, 4) == (8, 8, 8, 8)
        assert near_cubic_shape(4096, 6) == (4, 4, 4, 4, 4, 4)

    def test_product_invariant(self):
        for dims in (2, 3, 4, 5):
            shape = near_cubic_shape(720, dims)
            assert torus_nd_num_chips(shape) == 720

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            near_cubic_shape(0, 3)


class TestSection6Claims:
    """§6: higher-D tori -> larger bisection, lower latency, more ports."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_dimensionalities(4096, dims_options=(2, 3, 4, 6))

    def test_bisection_grows_with_dims(self, comparison):
        bisections = [comparison[d].bisection_links for d in (2, 3, 4, 6)]
        assert bisections == sorted(bisections)

    def test_latency_falls_with_dims(self, comparison):
        diameters = [comparison[d].diameter for d in (2, 3, 4, 6)]
        assert diameters == sorted(diameters, reverse=True)
        hops = [comparison[d].average_hops for d in (2, 3, 4, 6)]
        assert hops == sorted(hops, reverse=True)

    def test_port_cost_grows_with_dims(self, comparison):
        ports = [comparison[d].links_per_chip for d in (2, 3, 4, 6)]
        assert ports == [4, 6, 8, 12]

    def test_bisection_per_chip(self, comparison):
        assert comparison[6].bisection_per_chip > comparison[3].bisection_per_chip


class TestOcsCount:
    def test_3d_matches_appendix_a(self):
        assert ocses_for_torus((16, 16, 16)) == 48

    def test_4d_needs_more(self):
        assert ocses_for_torus((8, 8, 8, 8)) == 64
