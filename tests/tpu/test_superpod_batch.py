"""Tests for Superpod.apply_batch and mesh slices."""

import pytest

from repro.core.errors import SchedulingError, TopologyError
from repro.core.ids import CubeId, SliceId
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


def topo(name, shape, cubes, wrap=True):
    return SliceTopology.compose(SliceId(name), shape, cubes, wrap=wrap)


@pytest.fixture
def pod():
    return Superpod(num_cubes=16)


class TestApplyBatch:
    def test_batch_add_two_slices(self, pod):
        a = topo("a", (1, 1, 2), [CubeId(0), CubeId(1)])
        b = topo("b", (1, 1, 2), [CubeId(2), CubeId(3)])
        duration = pod.apply_batch(add=[a, b])
        assert duration > 0
        assert len(pod.slices()) == 2
        # One transaction per OCS, covering both slices.
        assert pod.manager.stats.transactions == 48

    def test_batch_swap_slices_atomically(self, pod):
        a = topo("a", (1, 1, 4), [CubeId(i) for i in range(4)])
        pod.configure_slice(a)
        before = pod.manager.stats.transactions
        b = topo("b", (2, 1, 2), [CubeId(i) for i in range(4)])
        pod.apply_batch(add=[b], remove=[SliceId("a")])
        assert pod.manager.stats.transactions == before + 48
        assert [str(s.slice_id) for s in pod.slices()] == ["b"]
        assert len(pod.allocated_cubes()) == 4

    def test_batch_reuses_freed_cubes(self, pod):
        a = topo("a", (1, 1, 2), [CubeId(0), CubeId(1)])
        pod.configure_slice(a)
        b = topo("b", (1, 1, 2), [CubeId(1), CubeId(5)])  # reuses cube 1
        pod.apply_batch(add=[b], remove=[SliceId("a")])
        assert pod.allocated_cubes() == {CubeId(1), CubeId(5)}

    def test_batch_rejects_cube_conflicts(self, pod):
        a = topo("a", (1, 1, 2), [CubeId(0), CubeId(1)])
        b = topo("b", (1, 1, 2), [CubeId(1), CubeId(2)])
        with pytest.raises(SchedulingError):
            pod.apply_batch(add=[a, b])
        assert pod.slices() == ()
        assert pod.total_circuits() == 0

    def test_batch_rejects_allocated_cube(self, pod):
        pod.configure_slice(topo("a", (1, 1, 1), [CubeId(0)]))
        with pytest.raises(SchedulingError):
            pod.apply_batch(add=[topo("b", (1, 1, 1), [CubeId(0)])])

    def test_batch_unknown_removal(self, pod):
        with pytest.raises(TopologyError):
            pod.apply_batch(remove=[SliceId("ghost")])

    def test_batch_rejects_unhealthy(self, pod):
        pod.cube(CubeId(3)).fail_host(0)
        with pytest.raises(SchedulingError):
            pod.apply_batch(add=[topo("a", (1, 1, 1), [CubeId(3)])])

    def test_empty_batch_noop(self, pod):
        duration = pod.apply_batch()
        assert duration == 0.0


class TestMeshSlices:
    def test_mesh_omits_wraparound(self, pod):
        mesh = topo("m", (1, 1, 4), [CubeId(i) for i in range(4)], wrap=False)
        pod.configure_slice(mesh)
        z = pod.circuits_for_dim("z")
        assert (0, 1) in z and (2, 3) in z
        assert (3, 0) not in z  # no wraparound

    def test_mesh_uses_fewer_circuits(self, pod):
        torus = topo("t", (1, 1, 4), [CubeId(i) for i in range(4)])
        mesh = topo("m", (1, 1, 4), [CubeId(i) for i in range(4, 8)], wrap=False)
        pod.configure_slice(torus)
        torus_circuits = pod.total_circuits()
        pod.configure_slice(mesh)
        mesh_circuits = pod.total_circuits() - torus_circuits
        assert mesh_circuits < torus_circuits

    def test_unit_dims_have_no_mesh_self_loops(self, pod):
        mesh = topo("m", (1, 1, 2), [CubeId(0), CubeId(1)], wrap=False)
        pod.configure_slice(mesh)
        # Extent-1 dims contribute nothing in a mesh (no wraparound).
        assert pod.circuits_for_dim("x") == set()
        assert pod.circuits_for_dim("z") == {(0, 1)}

    def test_str_mentions_kind(self):
        mesh = topo("m", (1, 1, 2), [CubeId(0), CubeId(1)], wrap=False)
        assert "mesh" in str(mesh)
        torus = topo("t", (1, 1, 2), [CubeId(0), CubeId(1)])
        assert "torus" in str(torus)
