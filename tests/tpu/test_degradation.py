"""Tests for repro.tpu.degradation (§4.2.2 single-OCS failure impact)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId, OcsId, SliceId
from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.tpu.degradation import (
    LINKS_PER_OCS_FRACTION,
    ocs_dimension,
    ocs_failure_impact,
    quarantine_step_degradation,
    step_time_degradation,
    worst_case_step_degradation,
)
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import Superpod


class TestOcsDimension:
    def test_mapping(self):
        assert ocs_dimension(OcsId(0)) == "x"
        assert ocs_dimension(OcsId(16)) == "y"
        assert ocs_dimension(OcsId(47)) == "z"

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ocs_dimension(OcsId(48))


class TestFailureImpact:
    @pytest.fixture
    def pod(self):
        pod = Superpod(num_cubes=16)
        pod.configure_slice(
            SliceTopology.compose(
                SliceId("multi"), (1, 1, 4), [CubeId(i) for i in range(4)]
            )
        )
        pod.configure_slice(
            SliceTopology.compose(
                SliceId("mesh1"), (1, 1, 1), [CubeId(8)], wrap=False
            )
        )
        return pod

    def test_multi_cube_slice_affected_in_its_dim(self, pod):
        impact = ocs_failure_impact(pod, OcsId(32))  # a z-dimension OCS
        assert impact[SliceId("multi")].affected
        assert impact[SliceId("multi")].bandwidth_loss_fraction == pytest.approx(
            LINKS_PER_OCS_FRACTION
        )

    def test_torus_self_loop_counts(self, pod):
        """A torus slice's extent-1 dims still ride the fabric (wraparound)."""
        impact = ocs_failure_impact(pod, OcsId(0))  # an x-dimension OCS
        assert impact[SliceId("multi")].affected  # x extent 1 but wrap=True

    def test_mesh_single_cube_unaffected(self, pod):
        """A mesh 1-cube slice has no optical links at all."""
        for ocs in (OcsId(0), OcsId(16), OcsId(32)):
            impact = ocs_failure_impact(pod, ocs)
            assert not impact[SliceId("mesh1")].affected
            assert impact[SliceId("mesh1")].bandwidth_loss_fraction == 0.0


class TestStepTimeDegradation:
    @pytest.fixture(scope="class")
    def setup(self):
        plan = ParallelismPlan.for_shape(LLM_ZOO["llm1"], (4, 4, 256))
        return plan, TrainingStepModel()

    def test_degradation_positive_on_used_dims(self, setup):
        plan, model = setup
        for axis in range(3):
            assert step_time_degradation(plan, model, axis) >= 0.0

    def test_small_hit_for_one_ocs(self, setup):
        """Losing 1 of 16 OCSes costs a few percent, not a catastrophe --
        the graceful degradation §4.2.2 contrasts with slice loss."""
        plan, model = setup
        _, worst = worst_case_step_degradation(plan, model)
        assert 0.0 < worst < 0.07

    def test_worst_axis_is_where_comm_lives(self, setup):
        """LLM1's step is tensor-comm heavy: dim 1 hurts most."""
        plan, model = setup
        axis, _ = worst_case_step_degradation(plan, model)
        assert axis == 0

    def test_validation(self, setup):
        plan, model = setup
        with pytest.raises(ConfigurationError):
            step_time_degradation(plan, model, 5)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingStepModel(dim_bandwidth_scale=(1.0, 0.0, 1.0))


class TestQuarantineDegradation:
    @pytest.fixture(scope="class")
    def setup(self):
        plan = ParallelismPlan.for_shape(LLM_ZOO["llm2"], (16, 16, 16))
        return plan, TrainingStepModel()

    def test_full_hold_out_equals_one_ocs_loss(self, setup):
        """A fully held-out OCS costs exactly the §4.2.2 one-OCS hit."""
        plan, model = setup
        for axis in range(3):
            assert quarantine_step_degradation(
                plan, model, axis, 1.0
            ) == step_time_degradation(plan, model, axis)

    def test_no_hold_out_is_free(self, setup):
        plan, model = setup
        assert quarantine_step_degradation(plan, model, 0, 0.0) == 0.0

    def test_partial_hold_out_between_bounds(self, setup):
        plan, model = setup
        half = quarantine_step_degradation(plan, model, 0, 0.5)
        full = quarantine_step_degradation(plan, model, 0, 1.0)
        assert 0.0 < half < full

    def test_validation(self, setup):
        plan, model = setup
        with pytest.raises(ConfigurationError):
            quarantine_step_degradation(plan, model, 5, 0.5)
        with pytest.raises(ConfigurationError):
            quarantine_step_degradation(plan, model, 0, 1.5)


class TestMultiOcsDegradation:
    @pytest.fixture(scope="class")
    def setup(self):
        plan = ParallelismPlan.for_shape(LLM_ZOO["llm2"], (16, 16, 16))
        return plan, TrainingStepModel()

    def test_face_position_round_trip(self):
        from repro.tpu.degradation import ocs_face_position

        assert ocs_face_position(OcsId(0)) == (0, 0)
        assert ocs_face_position(OcsId(17)) == (1, 1)
        assert ocs_face_position(OcsId(47)) == (2, 15)
        with pytest.raises(ConfigurationError):
            ocs_face_position(OcsId(48))

    def test_single_failure_agrees_with_analytic(self, setup):
        from repro.tpu.degradation import multi_ocs_step_degradation

        plan, model = setup
        for ocs in (OcsId(3), OcsId(20), OcsId(40)):
            axis = ocs.index // 16
            assert multi_ocs_step_degradation(plan, model, [ocs]) == pytest.approx(
                step_time_degradation(plan, model, axis)
            )

    def test_two_failures_same_axis_hurt_more(self, setup):
        from repro.tpu.degradation import multi_ocs_step_degradation

        plan, model = setup
        one = multi_ocs_step_degradation(plan, model, [OcsId(0)])
        two = multi_ocs_step_degradation(plan, model, [OcsId(0), OcsId(1)])
        assert two > one

    def test_degraded_step_model_scales(self, setup):
        from repro.tpu.degradation import degraded_step_model

        plan, model = setup
        degraded = degraded_step_model(model, [OcsId(0), OcsId(16)])
        assert degraded.dim_bandwidth_scale == (15 / 16, 15 / 16, 1.0)

    def test_degraded_routing_weights(self):
        from repro.core.errors import CapacityError
        from repro.tpu.routing import DegradedRouting

        state = DegradedRouting(face_ports=4).fail_position(0, 1)
        assert state.weights(0) == (1 / 3, 0.0, 1 / 3, 1 / 3)
        assert state.weights(1) == (0.25,) * 4
        assert state.dim_scale() == (3 / 4, 1.0, 1.0)
        state = state.repair_position(0, 1)
        assert state.is_healthy
        dead = DegradedRouting(face_ports=1).fail_position(2, 0)
        with pytest.raises(CapacityError):
            dead.dim_scale()
