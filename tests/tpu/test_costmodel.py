"""Tests for repro.tpu.costmodel (Table 1 reproduction target)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.tpu.costmodel import FABRIC_KINDS, FabricCostModel


@pytest.fixture(scope="module")
def model():
    return FabricCostModel()


class TestTable1:
    def test_dcn_relative_cost(self, model):
        """Paper: DCN fabric is 1.24x the static baseline."""
        cost, _ = model.relative_table()["dcn"]
        assert cost == pytest.approx(1.24, abs=0.03)

    def test_dcn_relative_power(self, model):
        """Paper: DCN fabric uses 1.10x the power."""
        _, power = model.relative_table()["dcn"]
        assert power == pytest.approx(1.10, abs=0.02)

    def test_lightwave_relative_cost(self, model):
        """Paper: lightwave fabric is 1.06x."""
        cost, _ = model.relative_table()["lightwave"]
        assert cost == pytest.approx(1.06, abs=0.02)

    def test_lightwave_relative_power(self, model):
        """Paper: lightwave fabric uses 1.01x the power."""
        _, power = model.relative_table()["lightwave"]
        assert power == pytest.approx(1.01, abs=0.01)

    def test_static_is_baseline(self, model):
        cost, power = model.relative_table()["static"]
        assert cost == 1.0 and power == 1.0

    def test_premium_under_6_percent(self, model):
        """Abstract: lightwave premium < 6% of total system cost."""
        assert model.lightwave_premium_fraction() < 0.065

    def test_ordering(self, model):
        table = model.relative_table()
        assert table["dcn"][0] > table["lightwave"][0] > 0.99
        assert table["dcn"][1] > table["lightwave"][1] > 0.99


class TestBom:
    def test_all_kinds_buildable(self, model):
        for kind in FABRIC_KINDS:
            bom = model.bom(kind)
            assert sum(l.cost_usd for l in bom) > 0
            assert any(l.item == "tpu-rack" for l in bom)

    def test_unknown_kind(self, model):
        with pytest.raises(ConfigurationError):
            model.bom("quantum")

    def test_fabric_cost_excludes_racks(self, model):
        assert model.fabric_cost_usd("static") < model.total_cost_usd("static") / 2

    def test_lightwave_has_ocs_line(self, model):
        items = [l.item for l in model.bom("lightwave")]
        assert "palomar ocs" in items

    def test_dcn_has_eps_line(self, model):
        items = [l.item for l in model.bom("dcn")]
        assert "eps chassis" in items

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FabricCostModel(rack_cost_usd=0)
