"""Tests for repro.tpu.routing_tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, TopologyError
from repro.tpu.routing import torus_hop_distance, torus_route
from repro.tpu.routing_tables import (
    Egress,
    build_routing_table,
    max_pod_for_table_size,
    next_hop,
    table_entries_per_chip,
    walk_route,
)


class TestNextHop:
    def test_local(self):
        assert next_hop((1, 2, 3), (1, 2, 3), (4, 4, 4)) is Egress.LOCAL

    def test_dimension_order(self):
        # x differs -> x port even though y also differs.
        assert next_hop((0, 0, 0), (1, 1, 0), (4, 4, 4)) is Egress.X_PLUS

    def test_wraparound_direction(self):
        assert next_hop((0, 0, 0), (3, 0, 0), (4, 4, 4)) is Egress.X_MINUS
        assert next_hop((0, 0, 0), (0, 3, 0), (4, 4, 4)) is Egress.Y_MINUS

    def test_tie_goes_positive(self):
        assert next_hop((0, 0, 0), (2, 0, 0), (4, 4, 4)) is Egress.X_PLUS

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            next_hop((0, 0, 0), (0, 0, 0), (0, 4, 4))


class TestRoutingTable:
    def test_entry_count(self):
        table = build_routing_table((0, 0, 0), (4, 4, 4))
        assert table.num_entries == 64
        assert table_entries_per_chip((4, 4, 4)) == 64

    def test_self_entry_local(self):
        table = build_routing_table((1, 1, 1), (4, 4, 4))
        assert table.egress_for((1, 1, 1)) is Egress.LOCAL

    def test_unknown_destination(self):
        table = build_routing_table((0, 0, 0), (2, 2, 2))
        with pytest.raises(TopologyError):
            table.egress_for((3, 3, 3))

    def test_full_pod_table_size(self):
        """4096 entries per chip for the full 16x16x16 superpod."""
        assert table_entries_per_chip((16, 16, 16)) == 4096


class TestWalkRoute:
    def test_matches_centralized_route(self):
        shape = (4, 4, 4)
        path = walk_route((0, 0, 0), (2, 3, 1), shape)
        assert path == torus_route((0, 0, 0), (2, 3, 1), shape)

    def test_hop_count_is_shortest(self):
        shape = (4, 4, 256)
        src, dst = (0, 0, 0), (3, 2, 200)
        path = walk_route(src, dst, shape)
        assert len(path) - 1 == torus_hop_distance(src, dst, shape)

    @given(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 7)),
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 7)),
    )
    @settings(max_examples=50, deadline=None)
    def test_reachability_property(self, src, dst):
        """Every destination is reachable via distributed tables, and the
        walked route is always shortest."""
        shape = (4, 4, 8)
        path = walk_route(src, dst, shape)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == torus_hop_distance(src, dst, shape)


class TestPodSizeConstraint:
    def test_capacity_caps_pod(self):
        """§3.2.1: routing-table capacity bounds the superpod size."""
        assert max_pod_for_table_size(4096) == 64  # the v4 pod
        assert max_pod_for_table_size(2048) == 32
        assert max_pod_for_table_size(64 * 292) == 292  # 300x300 envelope

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_pod_for_table_size(0)
