"""Tests for repro.tpu.superpod (Fig A.1 wiring + slice management)."""

import pytest

from repro.core.errors import CapacityError, ConfigurationError, SchedulingError, TopologyError
from repro.core.ids import CubeId, OcsId, SliceId
from repro.tpu.slice_topology import SliceTopology
from repro.tpu.superpod import NUM_CUBES, NUM_OCSES, Superpod, ocs_index


def make_slice(shape, cubes, name="s0"):
    return SliceTopology.compose(SliceId(name), shape, cubes)


@pytest.fixture
def pod():
    return Superpod()


class TestWiringArithmetic:
    def test_48_ocses(self):
        assert NUM_OCSES == 48

    def test_ocs_index_mapping(self):
        assert ocs_index("x", 0) == 0
        assert ocs_index("y", 0) == 16
        assert ocs_index("z", 15) == 47

    def test_ocs_index_validation(self):
        with pytest.raises(ConfigurationError):
            ocs_index("w", 0)
        with pytest.raises(ConfigurationError):
            ocs_index("x", 16)

    def test_pod_inventory(self, pod):
        assert pod.num_chips == 4096
        assert len(pod.manager.switch_ids) == 48
        assert len(pod.free_cubes()) == NUM_CUBES


class TestSliceConfiguration:
    def test_full_pod_symmetric_slice(self, pod):
        topo = make_slice((4, 4, 4), [CubeId(i) for i in range(64)])
        duration = pod.configure_slice(topo)
        assert duration > 0
        # Each of the 48 OCSes carries one circuit per cube.
        assert pod.total_circuits() == 48 * 64
        assert pod.utilization() == 1.0

    def test_asymmetric_slice(self, pod):
        topo = make_slice((1, 1, 64), [CubeId(i) for i in range(64)])
        pod.configure_slice(topo)
        z_circuits = pod.circuits_for_dim("z")
        # The z rings chain all 64 cubes: cube i -> cube i+1 mod 64.
        assert (0, 1) in z_circuits
        assert (63, 0) in z_circuits  # wraparound
        # x and y have extent 1: self-loops.
        assert all(n == s for n, s in pod.circuits_for_dim("x"))

    def test_single_cube_slice_self_loops(self, pod):
        topo = make_slice((1, 1, 1), [CubeId(5)])
        pod.configure_slice(topo)
        for dim in ("x", "y", "z"):
            assert pod.circuits_for_dim(dim) == {(5, 5)}

    def test_two_slices_coexist(self, pod):
        """Non-blocking OCS: a new slice never disturbs a running one."""
        a = make_slice((1, 1, 2), [CubeId(0), CubeId(1)], "a")
        b = make_slice((1, 1, 2), [CubeId(2), CubeId(3)], "b")
        pod.configure_slice(a)
        circuits_after_a = pod.circuits_for_dim("z")
        pod.configure_slice(b)
        assert circuits_after_a <= pod.circuits_for_dim("z")
        assert len(pod.slices()) == 2

    def test_overlapping_cubes_rejected(self, pod):
        pod.configure_slice(make_slice((1, 1, 2), [CubeId(0), CubeId(1)], "a"))
        with pytest.raises(SchedulingError):
            pod.configure_slice(make_slice((1, 1, 2), [CubeId(1), CubeId(2)], "b"))

    def test_duplicate_slice_id_rejected(self, pod):
        pod.configure_slice(make_slice((1, 1, 1), [CubeId(0)], "a"))
        with pytest.raises(SchedulingError):
            pod.configure_slice(make_slice((1, 1, 1), [CubeId(1)], "a"))

    def test_unhealthy_cube_rejected(self, pod):
        pod.cube(CubeId(3)).fail_host(0)
        with pytest.raises(SchedulingError):
            pod.configure_slice(make_slice((1, 1, 1), [CubeId(3)]))

    def test_release_restores_capacity(self, pod):
        topo = make_slice((1, 1, 4), [CubeId(i) for i in range(4)])
        pod.configure_slice(topo)
        pod.release_slice(SliceId("s0"))
        assert pod.total_circuits() == 0
        assert len(pod.free_cubes()) == NUM_CUBES

    def test_release_keeps_other_slices(self, pod):
        pod.configure_slice(make_slice((1, 1, 2), [CubeId(0), CubeId(1)], "a"))
        pod.configure_slice(make_slice((1, 1, 2), [CubeId(2), CubeId(3)], "b"))
        pod.release_slice(SliceId("a"))
        assert (2, 3) in pod.circuits_for_dim("z")
        assert (0, 1) not in pod.circuits_for_dim("z")

    def test_unknown_slice(self, pod):
        with pytest.raises(TopologyError):
            pod.release_slice(SliceId("ghost"))


class TestCubeSwap:
    def test_swap_replaces_bad_cube(self, pod):
        topo = make_slice((1, 1, 4), [CubeId(i) for i in range(4)])
        pod.configure_slice(topo)
        pod.cube(CubeId(2)).fail_host(0)
        new_topo = pod.swap_cube(SliceId("s0"), CubeId(2))
        assert CubeId(2) not in new_topo.cube_ids
        assert len(new_topo.cube_ids) == 4
        # Fabric reflects the new ring: the replacement sits where cube 2 was.
        replacement = new_topo.cube_at((0, 0, 2))
        assert (1, replacement.index) in pod.circuits_for_dim("z")

    def test_swap_frees_bad_cube(self, pod):
        topo = make_slice((1, 1, 2), [CubeId(0), CubeId(1)])
        pod.configure_slice(topo)
        pod.swap_cube(SliceId("s0"), CubeId(1), CubeId(9))
        assert CubeId(1) in pod.free_cubes()
        assert CubeId(9) in pod.allocated_cubes()

    def test_swap_rejects_foreign_cube(self, pod):
        pod.configure_slice(make_slice((1, 1, 1), [CubeId(0)]))
        with pytest.raises(SchedulingError):
            pod.swap_cube(SliceId("s0"), CubeId(5))

    def test_swap_rejects_allocated_replacement(self, pod):
        pod.configure_slice(make_slice((1, 1, 1), [CubeId(0)], "a"))
        pod.configure_slice(make_slice((1, 1, 1), [CubeId(1)], "b"))
        with pytest.raises(SchedulingError):
            pod.swap_cube(SliceId("a"), CubeId(0), CubeId(1))

    def test_swap_without_spares(self):
        pod = Superpod(num_cubes=2)
        pod.configure_slice(make_slice((1, 1, 2), [CubeId(0), CubeId(1)]))
        with pytest.raises(CapacityError):
            pod.swap_cube(SliceId("s0"), CubeId(0))


class TestHealthTracking:
    def test_healthy_free_cubes_excludes_failed(self, pod):
        pod.cube(CubeId(0)).fail_host(3)
        assert CubeId(0) not in pod.healthy_free_cubes()
        assert CubeId(0) in pod.free_cubes()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Superpod(num_cubes=0)
        with pytest.raises(ConfigurationError):
            Superpod(num_cubes=200)
