"""Tests for repro.tpu.chip."""

import pytest

from repro.core.errors import ConfigurationError
from repro.tpu.chip import (
    CHIPS_PER_HOST,
    TpuChip,
    TpuHost,
    superpod_peak_exaflops,
)


class TestTpuChip:
    def test_coords(self):
        chip = TpuChip(0, 1, 2, 3)
        assert chip.coords == (1, 2, 3)

    def test_host_grouping(self):
        # Chips are grouped 4-per-host along x: (0..3, y, z) share a host.
        hosts = {TpuChip(0, x, 1, 2).host_index for x in range(4)}
        assert len(hosts) == 1

    def test_sixteen_hosts_per_cube(self):
        hosts = {
            TpuChip(0, x, y, z).host_index
            for x in range(4)
            for y in range(4)
            for z in range(4)
        }
        assert hosts == set(range(16))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TpuChip(0, 4, 0, 0)
        with pytest.raises(ConfigurationError):
            TpuChip(-1, 0, 0, 0)


class TestTpuHost:
    def test_chips_per_host(self):
        assert TpuHost(0, 0).num_chips == CHIPS_PER_HOST == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TpuHost(0, -1)
        with pytest.raises(ConfigurationError):
            TpuHost(0, 0, dcn_gbps=0)


class TestPeakCompute:
    def test_superpod_exceeds_one_exaflop(self):
        """Abstract: 4096 TPU v4 chips > 1 ExaFLOP."""
        assert superpod_peak_exaflops(4096) > 1.0

    def test_scaling(self):
        assert superpod_peak_exaflops(2048) == pytest.approx(
            superpod_peak_exaflops(4096) / 2
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            superpod_peak_exaflops(0)
