"""Tests for repro.tpu.cube."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId
from repro.tpu.cube import (
    CHIPS_PER_CUBE,
    FACE_PORTS,
    HOSTS_PER_CUBE,
    OCS_CONNECTIONS_PER_CUBE,
    Cube,
)


@pytest.fixture
def cube():
    return Cube(CubeId(0))


class TestGeometry:
    def test_constants(self):
        assert CHIPS_PER_CUBE == 64
        assert HOSTS_PER_CUBE == 16
        assert FACE_PORTS == 16
        assert OCS_CONNECTIONS_PER_CUBE == 48

    def test_all_chips(self, cube):
        chips = cube.chips()
        assert len(chips) == 64
        assert len({c.coords for c in chips}) == 64

    def test_face_chips_count(self, cube):
        for dim in ("x", "y", "z"):
            for sign in (1, -1):
                face = cube.face_chips(dim, sign)
                assert len(face) == 16

    def test_face_chips_fixed_coordinate(self, cube):
        plus_x = cube.face_chips("x", 1)
        assert all(c.x == 3 for c in plus_x)
        minus_z = cube.face_chips("z", -1)
        assert all(c.z == 0 for c in minus_z)

    def test_opposite_faces_disjoint(self, cube):
        plus = {c.coords for c in cube.face_chips("y", 1)}
        minus = {c.coords for c in cube.face_chips("y", -1)}
        assert plus.isdisjoint(minus)

    def test_face_validation(self, cube):
        with pytest.raises(ConfigurationError):
            cube.face_chips("w", 1)
        with pytest.raises(ConfigurationError):
            cube.face_chips("x", 0)


class TestHealth:
    def test_initially_healthy(self, cube):
        assert cube.healthy

    def test_single_host_failure_fails_cube(self, cube):
        """§4.2.2: a cube is up only when all its hosts are."""
        cube.fail_host(7)
        assert not cube.healthy
        cube.repair_host(7)
        assert cube.healthy

    def test_host_index_validation(self, cube):
        with pytest.raises(ConfigurationError):
            cube.fail_host(16)

    def test_bad_host_count_rejected(self):
        from repro.tpu.chip import TpuHost

        with pytest.raises(ConfigurationError):
            Cube(CubeId(0), hosts=[TpuHost(0, 0)])
