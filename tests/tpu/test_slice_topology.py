"""Tests for repro.tpu.slice_topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, TopologyError
from repro.core.ids import CubeId, SliceId
from repro.tpu.slice_topology import SliceTopology


def make_slice(shape, start=0, name="s"):
    n = shape[0] * shape[1] * shape[2]
    return SliceTopology.compose(
        SliceId(name), shape, [CubeId(start + i) for i in range(n)]
    )


class TestConstruction:
    def test_compose_counts(self):
        s = make_slice((2, 2, 2))
        assert s.num_cubes == 8
        assert s.num_chips == 512
        assert s.chip_shape == (8, 8, 8)

    def test_wrong_cube_count(self):
        with pytest.raises(ConfigurationError):
            SliceTopology.compose(SliceId("s"), (2, 2, 2), [CubeId(0)])

    def test_duplicate_cube_rejected(self):
        with pytest.raises(ConfigurationError):
            SliceTopology.compose(SliceId("s"), (1, 1, 2), [CubeId(0), CubeId(0)])

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            SliceTopology.compose(SliceId("s"), (0, 1, 1), [])
        with pytest.raises(ConfigurationError):
            SliceTopology.compose(SliceId("s"), (1, 1), [CubeId(0)])

    def test_chip_shape_conversion(self):
        assert SliceTopology.chip_shape_to_cube_shape((4, 4, 256)) == (1, 1, 64)
        assert SliceTopology.chip_shape_to_cube_shape((16, 16, 16)) == (4, 4, 4)
        assert SliceTopology.chip_shape_to_cube_shape((8, 16, 32)) == (2, 4, 8)

    def test_chip_shape_must_be_multiple_of_4(self):
        with pytest.raises(ConfigurationError):
            SliceTopology.chip_shape_to_cube_shape((4, 4, 6))


class TestLookup:
    def test_cube_at(self):
        s = make_slice((1, 1, 2))
        assert s.cube_at((0, 0, 0)) == CubeId(0)
        assert s.cube_at((0, 0, 1)) == CubeId(1)
        with pytest.raises(TopologyError):
            s.cube_at((1, 0, 0))

    def test_cube_ids_order(self):
        s = make_slice((1, 1, 3), start=5)
        assert s.cube_ids == (CubeId(5), CubeId(6), CubeId(7))


class TestRings:
    def test_ring_count(self):
        s = make_slice((2, 3, 4))
        assert len(s.rings("x")) == 12  # 3*4 lines along x
        assert len(s.rings("y")) == 8
        assert len(s.rings("z")) == 6

    def test_ring_length(self):
        s = make_slice((2, 3, 4))
        assert all(len(r) == 2 for r in s.rings("x"))
        assert all(len(r) == 4 for r in s.rings("z"))

    def test_extent_one_self_ring(self):
        s = make_slice((1, 1, 4))
        assert all(len(r) == 1 for r in s.rings("x"))

    def test_bad_dim(self):
        with pytest.raises(ConfigurationError):
            make_slice((1, 1, 1)).rings("w")


class TestInterCubeLinks:
    def test_link_count(self):
        """Each cube has one outgoing link per dimension (wraparound torus)."""
        s = make_slice((2, 2, 2))
        links = s.inter_cube_links()
        assert len(links) == 3 * 8  # 3 dims x 8 cubes

    def test_self_loops_for_unit_dims(self):
        s = make_slice((1, 1, 2))
        links = s.inter_cube_links()
        x_links = [(a, b) for d, a, b in links if d == "x"]
        assert all(a == b for a, b in x_links)

    def test_every_cube_has_in_and_out_per_dim(self):
        s = make_slice((2, 1, 2))
        links = s.inter_cube_links()
        for dim in ("x", "y", "z"):
            outs = [a for d, a, b in links if d == dim]
            ins = [b for d, a, b in links if d == dim]
            assert sorted(outs, key=lambda c: c.index) == sorted(
                set(outs), key=lambda c: c.index
            )
            assert set(outs) == set(ins) == set(s.cube_ids)

    @given(
        st.sampled_from(
            [(1, 1, 64), (2, 4, 8), (4, 4, 4), (1, 2, 2), (2, 2, 2), (1, 1, 1)]
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_link_count_property(self, shape):
        """A d-dim torus over n nodes always has exactly 3n directed cube links."""
        s = make_slice(shape)
        assert len(s.inter_cube_links()) == 3 * s.num_cubes
