"""Tests for repro.tpu.routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.tpu.routing import (
    best_bisection_shape,
    torus_average_hops,
    torus_bisection_links,
    torus_diameter,
    torus_hop_distance,
    torus_ring_distance,
    torus_route,
)


class TestRingDistance:
    def test_wraparound_shortcut(self):
        assert torus_ring_distance(0, 15, 16) == 1
        assert torus_ring_distance(0, 8, 16) == 8

    def test_same_point(self):
        assert torus_ring_distance(3, 3, 8) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            torus_ring_distance(0, 1, 0)


class TestHopDistance:
    def test_additive_over_dims(self):
        assert torus_hop_distance((0, 0, 0), (1, 2, 3), (16, 16, 16)) == 6

    def test_wraparound(self):
        assert torus_hop_distance((0, 0, 0), (15, 0, 0), (16, 16, 16)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            torus_hop_distance((0, 0, 0), (0, 0, 20), (16, 16, 16))


class TestRoute:
    def test_endpoints(self):
        route = torus_route((0, 0, 0), (2, 1, 0), (4, 4, 4))
        assert route[0] == (0, 0, 0)
        assert route[-1] == (2, 1, 0)

    def test_length_is_distance(self):
        src, dst, shape = (0, 3, 1), (3, 0, 2), (4, 4, 4)
        route = torus_route(src, dst, shape)
        assert len(route) - 1 == torus_hop_distance(src, dst, shape)

    def test_dimension_ordered(self):
        route = torus_route((0, 0, 0), (1, 1, 0), (4, 4, 4))
        # x corrected before y.
        assert route == [(0, 0, 0), (1, 0, 0), (1, 1, 0)]

    def test_wraparound_step(self):
        route = torus_route((0, 0, 0), (3, 0, 0), (4, 4, 4))
        assert route == [(0, 0, 0), (3, 0, 0)]

    def test_each_step_is_one_hop(self):
        route = torus_route((0, 0, 0), (2, 3, 1), (4, 4, 4))
        for a, b in zip(route, route[1:]):
            assert torus_hop_distance(a, b, (4, 4, 4)) == 1

    @given(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
    )
    @settings(max_examples=60, deadline=None)
    def test_route_length_property(self, src, dst):
        shape = (4, 4, 4)
        route = torus_route(src, dst, shape)
        assert len(route) - 1 == torus_hop_distance(src, dst, shape)


class TestMetrics:
    def test_diameter(self):
        assert torus_diameter((16, 16, 16)) == 24
        assert torus_diameter((4, 4, 256)) == 132

    def test_bisection_symmetric_best(self):
        """§4.2.1: 16x16x16 has the highest bisection of all 4096 tori."""
        assert best_bisection_shape(4096) == (16, 16, 16)

    def test_bisection_values(self):
        assert torus_bisection_links((16, 16, 16)) == 512
        assert torus_bisection_links((4, 4, 256)) == 32

    def test_symmetric_beats_asymmetric(self):
        assert torus_bisection_links((16, 16, 16)) > torus_bisection_links((8, 16, 32))
        assert torus_bisection_links((8, 16, 32)) > torus_bisection_links((4, 4, 256))

    def test_small_extent_bisection(self):
        # Extent 2 rings have both links crossing any bisection of that dim.
        assert torus_bisection_links((2, 1, 1)) == 2
        assert torus_bisection_links((1, 1, 1)) == 1

    def test_average_hops(self):
        # Ring of 4: mean over ordered pairs incl self is 1.0; x3 dims,
        # rescaled by n/(n-1).
        avg = torus_average_hops((4, 4, 4))
        assert avg == pytest.approx(3.0 * 64 / 63)

    def test_average_hops_single(self):
        assert torus_average_hops((1, 1, 1)) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            torus_bisection_links((0, 4, 4))
        with pytest.raises(ConfigurationError):
            best_bisection_shape(0)
