"""Every example script imports cleanly; the observatory drill runs.

The examples guard their ``main()`` behind ``__name__``, so importing a
module executes only its setup code -- a fast check that the public API
surface every example exercises still exists.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_PATHS = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    def test_examples_exist(self):
        assert len(EXAMPLE_PATHS) >= 11  # the ten originals + observatory

    @pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.stem)
    def test_imports_and_defines_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), path.name


class TestObservatoryRuns:
    def test_observatory_main_runs(self, capsys):
        module = _load(EXAMPLES_DIR / "fabric_observatory.py")
        module.main()
        out = capsys.readouterr().out
        assert "trace digest" in out
        assert "control.recover" in out
        assert "SLOs" in out
