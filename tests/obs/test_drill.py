"""The observed drill: lifecycle coverage and tracing determinism."""

import pytest

from repro.faults.chaos import controller_crash_recovery
from repro.obs import Observability
from repro.obs.drill import PHASES, run_fabric_drill


@pytest.fixture(scope="module")
def drill():
    return run_fabric_drill(seed=0, smoke=True)


class TestLifecycleCoverage:
    def test_every_phase_has_a_span(self, drill):
        names = {s.name for s in drill.obs.tracer.spans()}
        for phase in PHASES:
            assert f"drill.{phase}" in names

    def test_transaction_retry_rollback_recovery_queryable(self, drill):
        tracer = drill.obs.tracer
        committed = tracer.find("resilience.txn")
        assert any(s.status == "ok" for s in committed)
        rolled_back = tracer.find("resilience.txn", rolled_back=True)
        assert len(rolled_back) == 1
        # The retry trail is on the span as timestamped events.
        assert any("rpc timeout" in msg for _, msg in rolled_back[0].events)
        recoveries = tracer.find("control.recover")
        assert recoveries
        drives = tracer.children(recoveries[0])
        assert all(d.name == "control.recover.drive" for d in drives)

    def test_notes_report_the_expected_outcomes(self, drill):
        assert drill.notes["rollback_seen"] == 1.0
        assert drill.notes["reconcile_converged"] == 1.0
        assert drill.notes["retry_attempts"] >= 3.0
        assert drill.notes["anomaly_firings"] == 2.0

    def test_metrics_reconcile_with_subreports(self, drill):
        registry = drill.obs.metrics
        assert registry.sum_counters("scheduler.jobs.completed") == (
            drill.scheduler.completed
        )
        assert registry.sum_counters("reconcile.repaired_circuits") == (
            drill.reconcile.repaired_circuits
        )
        assert registry.sum_counters("resilience.rollbacks") == 1.0
        assert registry.sum_counters("ocs.anomaly.fired") == 2.0

    def test_slo_histograms_populated(self, drill):
        registry = drill.obs.metrics
        assert registry.histogram("fabric.plan.duration_ms").count > 0
        assert registry.histogram("control.recover.duration_ms").count > 0
        assert registry.sum_counters("ocs.loss.observations") > 0


class TestTracingDeterminism:
    def test_drill_digests_reproduce(self, drill):
        again = run_fabric_drill(seed=0, smoke=True)
        assert again.digests() == drill.digests()

    def test_drill_seed_changes_digests(self, drill):
        other = run_fabric_drill(seed=1, smoke=True)
        assert other.digests() != drill.digests()

    def test_crash_recovery_span_tree_reproduces(self):
        def run():
            obs = Observability.sim()
            report = controller_crash_recovery(
                seed=3, num_ocses=2, links_per_ocs=4, obs=obs
            )
            return report.digest(), obs.tracer.tree_digest(), obs.metrics.digest()

        assert run() == run()

    def test_chaos_digest_unchanged_by_observation(self):
        bare = controller_crash_recovery(seed=3, num_ocses=2, links_per_ocs=4)
        observed = controller_crash_recovery(
            seed=3, num_ocses=2, links_per_ocs=4, obs=Observability.sim()
        )
        assert bare.digest() == observed.digest()
