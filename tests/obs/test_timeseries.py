"""The streaming time-series pipeline: windows, retention, determinism."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import MetricsRegistry, Observability
from repro.obs.timeseries import (
    Sample,
    TimeSeriesPipeline,
    WindowSpec,
    samples_from_records,
    samples_to_records,
)


def _feed(pipe, points, series="s"):
    for t, v in points:
        pipe.ingest(t, series, v)


class TestWindowSpec:
    def test_tumbling_covers_one_window(self):
        spec = WindowSpec(width_ms=100.0)
        assert spec.starts_covering(250.0) == (200.0,)
        assert spec.starts_covering(0.0) == (0.0,)

    def test_sliding_covers_overlapping_windows(self):
        spec = WindowSpec(width_ms=100.0, step_ms=50.0)
        assert spec.starts_covering(120.0) == (50.0, 100.0)

    def test_step_larger_than_width_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(width_ms=50.0, step_ms=100.0)

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(width_ms=0.0)


class TestTumblingAggregation:
    def test_windows_close_when_watermark_passes(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0))
        _feed(pipe, [(10.0, 1.0), (60.0, 3.0), (110.0, 5.0)])
        aggs = pipe.aggregates("s")
        assert len(aggs) == 1  # [0,100) closed by the 110 ms sample
        agg = aggs[0]
        assert (agg.start_ms, agg.end_ms) == (0.0, 100.0)
        assert agg.count == 2 and agg.sum == 4.0
        assert agg.min == 1.0 and agg.max == 3.0 and agg.last == 3.0
        assert agg.mean == 2.0

    def test_flush_closes_open_windows(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0))
        _feed(pipe, [(10.0, 1.0), (110.0, 5.0)])
        flushed = pipe.flush()
        assert [a.start_ms for a in flushed] == [100.0]
        assert len(pipe.aggregates("s")) == 2

    def test_multiple_series_emit_in_canonical_order(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0))
        pipe.ingest(10.0, "b", 1.0)
        pipe.ingest(10.0, "a", 2.0)
        pipe.ingest(150.0, "a", 3.0)
        names = [a.series for a in pipe.aggregates()]
        assert names == ["a", "b"]  # same window end: series order

    def test_late_sample_dropped_and_counted(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0))
        _feed(pipe, [(10.0, 1.0), (250.0, 2.0)])
        pipe.ingest(20.0, "s", 9.0)  # its window [0,100) already closed
        assert pipe.dropped("s") == (1, 0)
        closed = pipe.aggregates("s")[0]
        assert closed.count == 1 and closed.sum == 1.0

    def test_allowed_lateness_keeps_window_open(self):
        pipe = TimeSeriesPipeline(
            WindowSpec(width_ms=100.0), allowed_lateness_ms=200.0
        )
        _feed(pipe, [(10.0, 1.0), (250.0, 2.0)])
        pipe.ingest(20.0, "s", 9.0)  # within lateness: still counted
        assert pipe.dropped("s") == (0, 0)
        pipe.flush()
        first = pipe.aggregates("s")[0]
        assert first.count == 2 and first.last == 9.0


class TestSlidingAggregation:
    def test_sample_lands_in_every_covering_window(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0, step_ms=50.0))
        pipe.ingest(120.0, "s", 7.0)
        pipe.flush()
        starts = [a.start_ms for a in pipe.aggregates("s") if a.count]
        assert starts == [50.0, 100.0]


class TestRetention:
    def test_sample_count_bound_decimates_deterministically(self):
        pipe = TimeSeriesPipeline(retention_samples=4)
        _feed(pipe, [(float(i), float(i)) for i in range(6)])
        # 5th sample pushes past 4: pairs merge keeping the newest.
        late, dropped = pipe.dropped("s")
        assert late == 0 and dropped > 0

    def test_age_bound_drops_old_samples(self):
        pipe = TimeSeriesPipeline(
            WindowSpec(width_ms=10.0), retention_ms=50.0
        )
        _feed(pipe, [(0.0, 1.0), (100.0, 2.0), (110.0, 3.0)])
        assert pipe.dropped("s")[1] == 1


class TestDerivedSeries:
    def _pipeline(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=1000.0))
        # Counter at 0, 10, 30, 60 over consecutive 1 s windows.
        for i, v in enumerate([0.0, 10.0, 30.0, 60.0]):
            pipe.ingest(i * 1000.0 + 500.0, "c", v)
        pipe.flush()
        return pipe

    def test_rate_is_per_second_difference(self):
        assert [r for _, r in self._pipeline().rate("c")] == [10.0, 20.0, 30.0]

    def test_delta_is_window_over_window(self):
        assert [d for _, d in self._pipeline().delta("c")] == [10.0, 20.0, 30.0]

    def test_ewma_smooths_toward_level(self):
        points = self._pipeline().ewma("c", alpha=0.5)
        values = [v for _, v in points]
        assert values[0] == 0.0
        assert values == sorted(values)  # monotone input -> monotone ewma
        assert values[-1] < 60.0  # smoothed below the raw level

    def test_rolling_quantile_tracks_window(self):
        pipe = self._pipeline()
        q = pipe.rolling_quantile("c", 1.0, window=2)
        assert [v for _, v in q] == [0.0, 10.0, 30.0, 60.0]

    def test_downsample_merges_groups(self):
        pipe = self._pipeline()
        merged = pipe.downsample("c", 2)
        assert len(merged) == 2
        assert merged[0].count == 2 and merged[0].last == 10.0
        assert merged[0].start_ms == 0.0 and merged[0].end_ms == 2000.0
        assert merged[1].min == 30.0 and merged[1].max == 60.0

    def test_operator_validation(self):
        pipe = self._pipeline()
        with pytest.raises(ConfigurationError):
            pipe.ewma("c", alpha=0.0)
        with pytest.raises(ConfigurationError):
            pipe.rolling_quantile("c", 1.5)
        with pytest.raises(ConfigurationError):
            pipe.downsample("c", 0)


class TestScrape:
    def test_counters_gauges_histograms_become_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("level").set(2.5)
        registry.histogram("lat").observe(1.0)
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0))
        n = pipe.scrape(registry, 50.0)
        assert n == 4  # counter + gauge + histogram count/sum
        pipe.flush()
        assert {a.series for a in pipe.aggregates()} == {
            "jobs", "level", "lat.count", "lat.sum",
        }

    def test_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("serve.ok").inc()
        registry.counter("other").inc()
        pipe = TimeSeriesPipeline()
        assert pipe.scrape(registry, 1.0, prefix="serve.") == 1


class TestDeterminism:
    def _run(self):
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0, step_ms=50.0))
        for i in range(40):
            pipe.ingest(i * 37.0 % 1000.0 + i, f"s{i % 3}", float(i * i))
        pipe.flush()
        return pipe

    def test_replaying_the_same_stream_reproduces_the_digest(self):
        assert self._run().digest() == self._run().digest()

    def test_jsonl_round_trip_preserves_samples(self):
        samples = tuple(
            Sample(float(i), "x", float(i * 2), "counter") for i in range(5)
        )
        records = samples_to_records(samples, drill="test")
        assert records[0]["stream"] == "timeline"
        assert records[0]["schema_version"] >= 1
        assert samples_from_records(records) == samples

    def test_replay_of_export_matches_direct_ingest(self):
        direct = self._run()
        samples = [
            Sample(i * 37.0 % 1000.0 + i, f"s{i % 3}", float(i * i))
            for i in range(40)
        ]
        replayed = TimeSeriesPipeline(WindowSpec(width_ms=100.0, step_ms=50.0))
        replayed.replay(samples_to_records(samples))
        replayed.flush()
        assert replayed.digest() == direct.digest()

    def test_replay_tolerates_unknown_fields_and_types(self):
        records = [
            {"type": "meta", "stream": "timeline", "future_knob": 7},
            {"type": "sample", "t_ms": 1.0, "series": "s", "value": 2.0,
             "kind": "gauge", "future_field": "ignored"},
            {"type": "hologram", "whatever": True},
        ]
        pipe = TimeSeriesPipeline()
        assert pipe.replay(records) == 1


class TestInstrumentation:
    def test_pipeline_reports_through_obs(self):
        obs = Observability.sim()
        pipe = TimeSeriesPipeline(WindowSpec(width_ms=100.0), obs=obs)
        _feed(pipe, [(10.0, 1.0), (250.0, 2.0)])
        pipe.ingest(20.0, "s", 9.0)  # late
        assert obs.metrics.value("obs.ts.samples") == 2.0
        assert obs.metrics.value("obs.ts.dropped_late") == 1.0
        assert obs.metrics.value("obs.ts.series") == 1.0
        assert obs.metrics.histogram("obs.ts.window_lag_ms").count == 1
