"""JSONL export hardening: torn tails, schema versions, tolerance."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    Observability,
    export_metrics,
    export_timeline,
    export_trace,
    read_jsonl,
    write_jsonl,
)
from repro.obs.timeseries import Sample


def _bundle():
    obs = Observability.sim()
    obs.metrics.counter("c").inc(2)
    with obs.tracer.span("op"):
        obs.clock.advance(3.0)
    return obs


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "r.jsonl"
        write_jsonl(path, [{"a": 1}, {"b": 2}])
        records = read_jsonl(path)
        assert records == [{"a": 1}, {"b": 2}]
        assert records.truncated_records == 0

    def test_records_list_behaves_like_a_list(self, tmp_path):
        path = tmp_path / "r.jsonl"
        write_jsonl(path, [{"a": 1}])
        records = read_jsonl(path)
        assert list(records) == [{"a": 1}] and len(records) == 1


class TestTornTail:
    def test_torn_final_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a":1}\n{"b":2}\n{"c":', encoding="utf-8")
        records = read_jsonl(path)
        assert records == [{"a": 1}, {"b": 2}]
        assert records.truncated_records == 1

    def test_torn_tail_followed_by_blank_lines_still_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a":1}\n{"c":\n\n  \n', encoding="utf-8")
        records = read_jsonl(path)
        assert records == [{"a": 1}]
        assert records.truncated_records == 1

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"a":1}\nnot json\n{"b":2}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="corrupt"):
            read_jsonl(path)


class TestSchemaVersion:
    def test_trace_and_metrics_meta_stamped(self, tmp_path):
        obs = _bundle()
        trace = read_jsonl(export_trace(tmp_path / "t.jsonl", obs.tracer))
        metrics = read_jsonl(
            export_metrics(tmp_path / "m.jsonl", obs.metrics, drill="x")
        )
        assert trace[0]["stream"] == "trace"
        assert trace[0]["schema_version"] == SCHEMA_VERSION
        assert metrics[0]["stream"] == "metrics"
        assert metrics[0]["schema_version"] == SCHEMA_VERSION
        assert metrics[0]["drill"] == "x"  # caller meta survives

    def test_timeline_export(self, tmp_path):
        samples = [Sample(1.0, "s", 2.0, "gauge")]
        records = read_jsonl(
            export_timeline(tmp_path / "tl.jsonl", samples, drill="x")
        )
        assert records[0]["stream"] == "timeline"
        assert records[0]["schema_version"] >= 1
        assert records[1]["type"] == "sample"

    def test_reader_tolerates_unknown_future_fields(self, tmp_path):
        path = tmp_path / "future.jsonl"
        write_jsonl(
            path,
            [
                {"type": "meta", "stream": "metrics", "schema_version": 99,
                 "from_the_future": True},
                {"type": "counter", "series": "c", "value": 1,
                 "novel_annotation": "x"},
            ],
        )
        records = read_jsonl(path)
        assert records[0]["schema_version"] == 99
        assert records[1]["value"] == 1


class TestCardinalityGuard:
    def test_warns_once_and_tracks_high_water(self):
        reg = MetricsRegistry(series_warn_limit=4)
        with pytest.warns(RuntimeWarning, match="cardinality|unbounded"):
            for i in range(6):
                reg.counter("c", shard=i).inc()
        # One warning total; the high-water gauge keeps tracking.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reg.counter("c", shard=99).inc()
        high_water = reg.value("obs.registry.series_high_water")
        assert high_water == reg.num_series
        assert high_water > 4

    def test_under_limit_is_silent_and_gaugeless(self):
        import warnings

        reg = MetricsRegistry(series_warn_limit=100)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for i in range(10):
                reg.gauge("g", shard=i).set(1.0)
        assert reg.value("obs.registry.series_high_water") == 0.0

    def test_limit_validation(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry(series_warn_limit=0)
