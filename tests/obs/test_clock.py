"""SimClock invariants, including reuse of one bundle across drills."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import Observability, SimClock


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.advance(0.0) == 5.0
        assert clock.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().advance(-1.0)

    def test_advance_to_never_rewinds(self):
        clock = SimClock()
        clock.advance(100.0)
        assert clock.advance_to(40.0) == 100.0
        assert clock.advance_to(250.0) == 250.0


class TestReuseAcrossDrills:
    def test_spans_stay_monotone_when_bundle_is_reused(self):
        """One Observability bundle driving two back-to-back drills must
        keep producing non-decreasing span start times -- the second
        drill's spans start at or after the first drill's end."""
        obs = Observability.sim()

        def drill(label):
            with obs.tracer.span("drill", label=label):
                for _ in range(3):
                    with obs.tracer.span("step"):
                        obs.clock.advance(7.0)

        drill("first")
        first_end = obs.clock.now()
        drill("second")

        starts = [span.start_ms for span in obs.tracer.spans()]
        assert starts == sorted(starts)
        second_roots = obs.tracer.find("drill", label="second")
        assert len(second_roots) == 1
        assert second_roots[0].start_ms >= first_end
        assert obs.clock.now() == 2 * first_end

    def test_advance_to_replay_of_earlier_timeline_does_not_rewind(self):
        """Replaying an earlier drill's absolute timestamps through
        ``advance_to`` on a reused clock leaves time monotone."""
        obs = Observability.sim()
        for t in (10.0, 30.0, 90.0):
            obs.clock.advance_to(t)
        watermark = obs.clock.now()
        for t in (10.0, 30.0):  # an old timeline replayed
            obs.clock.advance_to(t)
        assert obs.clock.now() == watermark
