"""MetricsRegistry: instruments, labels, snapshots, digests."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    exponential_bounds,
    series_key,
)


class TestCounter:
    def test_inc_and_add(self):
        reg = MetricsRegistry()
        c = reg.counter("fabric.connect.total")
        c.inc()
        c.add(4)
        assert c.value == 5

    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", ocs="a") is not reg.counter("x", ocs="b")

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", ocs="a", kind="m")
        b = reg.counter("x", kind="m", ocs="a")
        assert a is b

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("x").inc(-1)

    def test_value_query(self):
        reg = MetricsRegistry()
        reg.counter("x", ocs="a").inc(3)
        assert reg.value("x", ocs="a") == 3
        assert reg.value("x", ocs="zzz") == 0.0

    def test_sum_counters_label_subset(self):
        reg = MetricsRegistry()
        reg.counter("drift", ocs="a", kind="m").inc(2)
        reg.counter("drift", ocs="b", kind="m").inc(3)
        reg.counter("drift", ocs="a", kind="n").inc(10)
        assert reg.sum_counters("drift") == 15
        assert reg.sum_counters("drift", kind="m") == 5
        assert reg.sum_counters("drift", ocs="a") == 12


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("fleet.held_out.fraction")
        g.set(0.25)
        g.add(-0.05)
        assert g.value == pytest.approx(0.20)


class TestHistogram:
    def test_exponential_bounds_shape(self):
        bounds = exponential_bounds(1.0, 2.0, 4)
        assert bounds == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ConfigurationError):
            exponential_bounds(0.0, 2.0, 4)

    def test_observe_stats(self):
        h = Histogram("d", bounds=exponential_bounds(1.0, 2.0, 4))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(105.0 / 4)
        # 0.5 -> bucket<=1, 1.5 -> <=2, 3.0 -> <=4, 100 -> overflow
        assert h.counts == [1, 1, 1, 0, 1]

    def test_quantile_is_conservative_bucket_bound(self):
        h = Histogram("d", bounds=exponential_bounds(1.0, 2.0, 8))
        for v in (1.0, 1.0, 1.0, 7.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        # p99 lands in the 7.0 bucket (bound 8.0), clamped to max.
        assert h.quantile(0.99) == 7.0
        assert h.quantile(0.0) == 1.0
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_empty_quantile(self):
        h = Histogram("d")
        assert h.quantile(0.99) == 0.0


class TestHistogramQuantileEdges:
    """The degenerate inputs SLO gating actually hits."""

    def test_empty_histogram_is_zero_for_any_q(self):
        h = Histogram("d")
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_q_zero_returns_first_occupied_bucket(self):
        h = Histogram("d", bounds=exponential_bounds(1.0, 2.0, 8))
        for v in (3.0, 3.0, 50.0):
            h.observe(v)
        assert h.quantile(0.0) == 4.0  # bound of the 3.0 bucket

    def test_q_one_returns_observed_max(self):
        h = Histogram("d", bounds=exponential_bounds(1.0, 2.0, 8))
        for v in (1.0, 3.0, 50.0):
            h.observe(v)
        assert h.quantile(1.0) == 50.0

    def test_single_bucket_clamps_to_observed_max(self):
        h = Histogram("d", bounds=exponential_bounds(10.0, 2.0, 1))
        h.observe(5.0)
        # One bucket [0, 10]: the conservative bound would overstate,
        # so the estimate clamps to the true max.
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == 5.0

    def test_overflow_only_histogram(self):
        h = Histogram("d", bounds=exponential_bounds(1.0, 2.0, 1))
        h.observe(100.0)  # lands in the implicit +inf bucket
        assert h.quantile(0.5) == 100.0

    def test_out_of_range_q_rejected(self):
        h = Histogram("d")
        h.observe(1.0)
        for bad in (-0.1, 1.5, 2.0):
            with pytest.raises(ConfigurationError):
                h.quantile(bad)


class TestSnapshot:
    def test_series_key_render(self):
        assert series_key("x", ()) == "x"
        assert series_key("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", ocs="a").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=exponential_bounds(1.0, 2.0, 2)).observe(10.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c{ocs=a}": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["buckets"] == [["inf", 1]]

    def test_digest_stable_and_sensitive(self):
        def build(n):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            return reg.digest()

        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_digest_ignores_creation_order(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        a.counter("y").inc()
        b = MetricsRegistry()
        b.counter("y").inc()
        b.counter("x").inc()
        assert a.digest() == b.digest()

    def test_to_records_roundtrip_types(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1.0)
        kinds = sorted(r["type"] for r in reg.to_records())
        assert kinds == ["counter", "gauge", "histogram"]


class TestNullObs:
    def test_null_surface_is_inert(self):
        NULL_OBS.metrics.counter("x", ocs="a").inc(5)
        NULL_OBS.metrics.gauge("g").set(9)
        NULL_OBS.metrics.histogram("h").observe(1.0)
        assert NULL_OBS.metrics.value("x", ocs="a") == 0.0
        assert NULL_OBS.metrics.num_series == 0
        assert not NULL_OBS.enabled

    def test_null_span_does_not_swallow(self):
        with pytest.raises(ValueError):
            with NULL_OBS.tracer.span("op"):
                raise ValueError("boom")

    def test_real_bundle_digests(self):
        obs = Observability.sim()
        obs.metrics.counter("x").inc()
        with obs.tracer.span("op"):
            obs.clock.advance(5.0)
        trace_digest, metrics_digest = obs.digests()
        assert len(trace_digest) == 64
        assert len(metrics_digest) == 64


class TestBoundHandles:
    """handle()/family(): the hot-loop resolution caches added for the
    serving fast path.  They must hand back the *same* instrument
    objects as the name-based accessors so snapshots, digests, and
    queries are unchanged."""

    def test_handle_returns_the_name_based_instrument(self):
        registry = MetricsRegistry()
        for kind in ("counter", "gauge", "histogram"):
            bound = registry.handle(kind, "h.test", outcome="ok")
            named = getattr(registry, kind)("h.test", outcome="ok")
            assert bound is named, kind

    def test_handle_increments_are_visible_to_queries(self):
        registry = MetricsRegistry()
        bound = registry.handle("counter", "h.hits", route="a")
        for _ in range(5):
            bound.inc()
        assert registry.value("h.hits", route="a") == 5.0
        assert registry.sum_counters("h.hits") == 5.0

    def test_handle_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().handle("timer", "h.test")

    def test_family_series_is_cached_and_identical(self):
        registry = MetricsRegistry()
        family = registry.family("counter", "f.outcomes", "outcome")
        ok = family.series("ok")
        assert family.series("ok") is ok
        assert registry.counter("f.outcomes", outcome="ok") is ok
        ok.inc(3.0)
        assert registry.value("f.outcomes", outcome="ok") == 3.0

    def test_family_coerces_non_string_values(self):
        registry = MetricsRegistry()
        family = registry.family("gauge", "f.shards", "cell")
        assert family.series(7) is registry.gauge("f.shards", cell="7")

    def test_family_arity_is_checked(self):
        family = MetricsRegistry().family("counter", "f.pair", "a", "b")
        with pytest.raises(ConfigurationError):
            family.series("only-one")

    def test_family_rejects_bad_declarations(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.family("timer", "f.test", "a")
        with pytest.raises(ConfigurationError):
            registry.family("counter", "f.test", "a", "a")
