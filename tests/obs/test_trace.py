"""Tracer: nesting, clock-driven timing, query API, determinism."""

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.clock import SimClock, WallClock
from repro.obs.export import export_metrics, export_trace, read_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def build_tree(clock=None):
    tracer = Tracer(clock=clock)
    with tracer.span("reconfigure", ocs="a") as outer:
        tracer.clock.advance(2.0)
        with tracer.span("apply", plan="p1"):
            tracer.clock.advance(5.0)
        with tracer.span("apply", plan="p2"):
            tracer.clock.advance(3.0)
            tracer.event("mirror settled")
        outer.set_attr("applied", 2)
    return tracer


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(10.0)
        clock.advance_to(5.0)  # never backward
        assert clock.now() == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().advance(-1.0)

    def test_wall_clock_moves_on_its_own(self):
        clock = WallClock()
        t0 = clock.now()
        clock.advance(1_000_000.0)  # no-op
        assert clock.now() >= t0
        assert clock.now() < 60_000.0


class TestSpans:
    def test_nesting_and_timing(self):
        tracer = build_tree()
        spans = tracer.spans()
        assert [s.name for s in spans] == ["reconfigure", "apply", "apply"]
        root, a1, a2 = spans
        assert root.parent_id is None
        assert a1.parent_id == root.span_id and a2.parent_id == root.span_id
        assert (root.start_ms, root.end_ms) == (0.0, 10.0)
        assert (a1.start_ms, a1.end_ms) == (2.0, 7.0)
        assert a2.duration_ms == 3.0
        assert root.attr("applied") == "2"
        assert tracer.children(root) == (a1, a2)
        assert tracer.roots() == (root,)

    def test_event_lands_on_innermost_open_span(self):
        tracer = build_tree()
        assert tracer.spans()[2].events == ((10.0, "mirror settled"),)

    def test_error_status_and_reraise(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert span.attr("error") == "RuntimeError"
        assert span.end_ms is not None

    def test_find_by_name_attrs_and_time(self):
        tracer = build_tree()
        assert len(tracer.find("apply")) == 2
        assert len(tracer.find("apply", plan="p2")) == 1
        # Interval overlap: [0, 1] only touches the root span.
        assert [s.name for s in tracer.find(t0_ms=0.0, t1_ms=1.0)] == [
            "reconfigure"
        ]
        assert len(tracer.find(t0_ms=6.5)) == 3

    def test_slowest(self):
        tracer = build_tree()
        top = tracer.slowest(2)
        assert [s.duration_ms for s in top] == [10.0, 5.0]
        assert [s.duration_ms for s in tracer.slowest(5, name="apply")] == [
            5.0,
            3.0,
        ]


class TestDeterminism:
    def test_equal_trees_equal_digests(self):
        assert build_tree().tree_digest() == build_tree().tree_digest()

    def test_digest_sensitive_to_timing(self):
        a = build_tree()
        b = Tracer()
        with b.span("reconfigure", ocs="a"):
            b.clock.advance(11.0)
        assert a.tree_digest() != b.tree_digest()


class TestExport:
    def test_trace_jsonl_roundtrip(self, tmp_path):
        tracer = build_tree()
        path = export_trace(tmp_path / "trace.jsonl", tracer, seed=7)
        records = read_jsonl(path)
        meta, spans = records[0], records[1:]
        assert meta["stream"] == "trace"
        assert meta["spans"] == 3
        assert meta["digest"] == tracer.tree_digest()
        assert meta["seed"] == 7
        assert [r["name"] for r in spans] == ["reconfigure", "apply", "apply"]
        assert spans[1]["attrs"] == {"plan": "p1"}

    def test_metrics_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", ocs="a").inc(2)
        path = export_metrics(tmp_path / "metrics.jsonl", reg, seed=7)
        meta, *rest = read_jsonl(path)
        assert meta["stream"] == "metrics"
        assert meta["digest"] == reg.digest()
        assert rest == [{"type": "counter", "series": "c{ocs=a}", "value": 2}]
