"""Tests for repro.ml.collectives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.ml.collectives import (
    hierarchical_all_reduce_time_s,
    point_to_point_time_s,
    ring_all_gather_time_s,
    ring_all_reduce_time_s,
    ring_reduce_scatter_time_s,
)

BW = 50e9  # bytes/s per direction


class TestRingPrimitives:
    def test_single_node_free(self):
        assert ring_reduce_scatter_time_s(1e9, 1, BW) == 0.0
        assert ring_all_reduce_time_s(1e9, 1, BW) == 0.0

    def test_all_reduce_is_rs_plus_ag(self):
        v, n = 1e9, 16
        assert ring_all_reduce_time_s(v, n, BW) == pytest.approx(
            ring_reduce_scatter_time_s(v, n, BW) + ring_all_gather_time_s(v, n, BW)
        )

    def test_bandwidth_term(self):
        # (n-1)/n * V / (2*bw), overhead off.
        t = ring_reduce_scatter_time_s(1e9, 4, BW, step_overhead_s=0.0)
        assert t == pytest.approx(0.75 * 1e9 / (2 * BW))

    def test_overhead_scales_with_steps(self):
        slow = ring_reduce_scatter_time_s(0.0, 64, BW, step_overhead_s=1e-6)
        assert slow == pytest.approx(63e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ring_all_reduce_time_s(-1, 4, BW)
        with pytest.raises(ConfigurationError):
            ring_all_reduce_time_s(1, 0, BW)
        with pytest.raises(ConfigurationError):
            ring_all_reduce_time_s(1, 4, 0)

    @given(st.integers(2, 256), st.floats(1e6, 1e10))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_volume(self, n, v):
        assert ring_all_reduce_time_s(v, n, BW) <= ring_all_reduce_time_s(2 * v, n, BW)


class TestHierarchical:
    def test_single_dim_matches_ring(self):
        v = 1e9
        assert hierarchical_all_reduce_time_s(v, (16,), BW) == pytest.approx(
            ring_all_reduce_time_s(v, 16, BW)
        )

    def test_empty_dims_free(self):
        assert hierarchical_all_reduce_time_s(1e9, (), BW) == 0.0

    def test_two_dims_cheaper_than_flat_ring_same_size(self):
        """Hierarchical over 16x16 beats a flat 256-ring on latency and
        matches its bandwidth term asymptotically."""
        v = 1e9
        hier = hierarchical_all_reduce_time_s(v, (16, 16), BW, step_overhead_s=1e-5)
        flat = ring_all_reduce_time_s(v, 256, BW, step_overhead_s=1e-5)
        assert hier < flat

    def test_split_order_second_order_only(self):
        """Different factorizations of the same degree are near-equivalent."""
        v = 1e9
        a = hierarchical_all_reduce_time_s(v, (4, 256), BW, step_overhead_s=0.0)
        b = hierarchical_all_reduce_time_s(v, (32, 32), BW, step_overhead_s=0.0)
        assert a == pytest.approx(b, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hierarchical_all_reduce_time_s(1e9, (4, 0), BW)

    @given(st.sampled_from([(4, 256), (16, 64), (32, 32), (256, 4)]))
    @settings(max_examples=8, deadline=None)
    def test_bandwidth_term_bound(self, extents):
        """Any split's bandwidth term approaches 2*V*(D-1)/D / (2*bw)."""
        v = 1e9
        t = hierarchical_all_reduce_time_s(v, extents, BW, step_overhead_s=0.0)
        optimal = 2 * v * (1024 - 1) / 1024 / (2 * BW)
        assert optimal * 0.999 <= t <= optimal * 1.02


class TestPointToPoint:
    def test_transfer_time(self):
        assert point_to_point_time_s(BW, BW) == pytest.approx(1.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            point_to_point_time_s(1e9, BW, hops=0)
