"""Tests for repro.ml.reshaping (§6 mid-training reshaping study)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ml.models import LLM_ZOO, LlmConfig
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.reshaping import ReshapingPlan, ReshapingStudy, TrainingPhase


@pytest.fixture(scope="module")
def study():
    return ReshapingStudy(TrainingStepModel(), reshape_cost_s=120.0)


@pytest.fixture(scope="module")
def mixed_phases():
    # A data-parallel-heavy pretraining phase and a large-model phase
    # whose optima differ (LLM1 -> 4x4x256, LLM2 -> 16x16x16).
    return [
        TrainingPhase("pretrain", LLM_ZOO["llm1"], steps=200),
        TrainingPhase("dense-finetune", LLM_ZOO["llm2"], steps=200),
    ]


class TestPhases:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingPhase("x", LLM_ZOO["llm0"], steps=0)
        with pytest.raises(ConfigurationError):
            ReshapingStudy(TrainingStepModel(), reshape_cost_s=-1)


class TestPlan:
    def test_reshaping_wins_on_mixed_phases(self, study, mixed_phases):
        plan = study.plan(mixed_phases)
        assert plan.num_reshapes == 1
        assert plan.phase_shapes == ((4, 4, 256), (16, 16, 16))
        assert plan.speedup > 1.0

    def test_fixed_shape_feasible_for_all(self, study, mixed_phases):
        plan = study.plan(mixed_phases)
        # LLM2's memory bound forces the fixed shape into tensor >= 16.
        assert plan.fixed_shape[0] >= 16

    def test_breakeven_positive(self, study, mixed_phases):
        plan = study.plan(mixed_phases)
        assert plan.breakeven_reshape_cost_s > 0
        # At a reshape cost above break-even, reshaping loses.
        expensive = ReshapingStudy(
            TrainingStepModel(),
            reshape_cost_s=plan.breakeven_reshape_cost_s * 1.5,
        ).plan(mixed_phases)
        assert expensive.speedup < 1.0

    def test_single_phase_no_reshape(self, study):
        plan = study.plan([TrainingPhase("only", LLM_ZOO["llm0"], steps=50)])
        assert plan.num_reshapes == 0
        assert plan.breakeven_reshape_cost_s == float("inf")
        assert plan.speedup == pytest.approx(1.0)

    def test_identical_phases_no_reshape(self, study):
        phases = [
            TrainingPhase("a", LLM_ZOO["llm1"], steps=10),
            TrainingPhase("b", LLM_ZOO["llm1"], steps=10),
        ]
        plan = study.plan(phases)
        assert plan.num_reshapes == 0

    def test_empty_phases_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.plan([])

    def test_infeasible_everywhere_rejected(self, study):
        giant = LlmConfig.from_params("giant", 5e12, 256, 2048, 4096)
        with pytest.raises(ConfigurationError):
            study.plan([TrainingPhase("x", giant, steps=1)])
