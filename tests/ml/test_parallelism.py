"""Tests for repro.ml.parallelism."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ml.models import LLM_ZOO, LlmConfig
from repro.ml.parallelism import ParallelismPlan


def plan_for(key, shape):
    return ParallelismPlan.for_shape(LLM_ZOO[key], shape)


class TestShapeMapping:
    def test_paper_mapping(self):
        p = plan_for("llm0", (8, 16, 32))
        assert p.tensor == 8
        assert p.data_extents == (16, 32)
        assert p.data == 512
        assert p.pipeline == 1

    def test_num_chips(self):
        assert plan_for("llm1", (4, 4, 256)).num_chips == 4096

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            ParallelismPlan.for_shape(LLM_ZOO["llm0"], (8, 16))
        with pytest.raises(ConfigurationError):
            ParallelismPlan.for_shape(LLM_ZOO["llm0"], (0, 16, 32))


class TestDerived:
    def test_batch_per_replica(self):
        p = plan_for("llm1", (4, 4, 256))
        assert p.batch_seqs_per_replica == LLM_ZOO["llm1"].global_batch_seqs // 1024

    def test_bubble_zero_without_pipeline(self):
        assert plan_for("llm0", (8, 16, 32)).pipeline_bubble_fraction == 0.0

    def test_bubble_with_pipeline(self):
        p = ParallelismPlan(
            model=LLM_ZOO["llm0"], tensor=8, data_extents=(32,), pipeline=4
        )
        m = p.num_microbatches
        assert p.pipeline_bubble_fraction == pytest.approx(3 / m)

    def test_memory_decreases_with_tensor(self):
        low = plan_for("llm2", (4, 16, 64))
        high = plan_for("llm2", (16, 16, 16))
        assert high.memory_per_chip_bytes() < low.memory_per_chip_bytes()


class TestFeasibility:
    def test_llm2_needs_tensor_16(self):
        """150B at 32 GiB HBM forces tensor parallelism >= 16."""
        assert not plan_for("llm2", (8, 16, 32)).feasible
        assert "GiB" in plan_for("llm2", (8, 16, 32)).infeasibility_reason()
        assert plan_for("llm2", (16, 16, 16)).feasible

    def test_llm1_fits_at_tensor_4(self):
        """70B still fits at tensor parallelism 4 (the paper's optimum)."""
        assert plan_for("llm1", (4, 4, 256)).feasible

    def test_llm0_fits_at_tensor_4(self):
        assert plan_for("llm0", (4, 4, 256)).feasible

    def test_data_bounded_by_batch(self):
        small_batch = LlmConfig.from_params("tiny", 35e9, 48, 2048, 64)
        p = ParallelismPlan.for_shape(small_batch, (4, 4, 256))
        assert not p.feasible
        assert "global batch" in p.infeasibility_reason()

    def test_pipeline_bounded_by_layers(self):
        p = ParallelismPlan(
            model=LLM_ZOO["llm0"], tensor=4, data_extents=(4,), pipeline=256
        )
        assert "stages" in p.infeasibility_reason()

    def test_tensor_bounded_by_heads(self):
        p = ParallelismPlan(model=LLM_ZOO["llm0"], tensor=256, data_extents=(16,))
        assert "head" in p.infeasibility_reason()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelismPlan(model=LLM_ZOO["llm0"], tensor=0, data_extents=(4,))
        with pytest.raises(ConfigurationError):
            ParallelismPlan(model=LLM_ZOO["llm0"], tensor=4, data_extents=())


class TestImportHygiene:
    def test_packages_import_standalone_in_either_order(self):
        """repro.ml and repro.tpu must load in a fresh interpreter in any
        order (regression: an ml -> tpu -> ml import cycle that only
        passed when repro.tpu happened to be cached first)."""
        import subprocess
        import sys

        for stmt in (
            "import repro.ml, repro.tpu",
            "import repro.tpu, repro.ml",
            "import repro.tpu.degradation",
        ):
            proc = subprocess.run(
                [sys.executable, "-c", stmt], capture_output=True, text=True
            )
            assert proc.returncode == 0, f"{stmt!r} failed:\n{proc.stderr}"
