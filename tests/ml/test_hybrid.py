"""Tests for repro.ml.hybrid (Fig 2 scale-out)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ml.hybrid import (
    HybridClusterSpec,
    cross_pod_all_reduce_time_s,
    dcn_critical_path_fraction,
)


@pytest.fixture
def spec():
    return HybridClusterSpec()


class TestSpec:
    def test_bandwidth_gap_50_to_100x(self, spec):
        """§2.2: ICI provides 50-100x the DCN bandwidth per TPU."""
        assert 50 <= spec.ici_to_dcn_ratio <= 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HybridClusterSpec(num_pods=0)
        with pytest.raises(ConfigurationError):
            HybridClusterSpec(ici_gbytes_per_s=0)


class TestCollective:
    def test_dcn_dominates_critical_path(self, spec):
        """§2.2.2: the DCN transfers sit on the critical path."""
        frac = dcn_critical_path_fraction(spec, volume_bytes_per_chip=100e6)
        assert frac > 0.5

    def test_more_dcn_bandwidth_helps(self):
        slow = HybridClusterSpec(dcn_gbytes_per_chip_s=0.3)
        fast = HybridClusterSpec(dcn_gbytes_per_chip_s=0.6)
        v = 100e6
        assert cross_pod_all_reduce_time_s(fast, v) < cross_pod_all_reduce_time_s(slow, v)

    def test_single_pod_ring_free_dcn(self):
        spec = HybridClusterSpec(num_pods=1)
        frac = dcn_critical_path_fraction(spec, 100e6)
        assert frac == pytest.approx(0.0, abs=1e-6)

    def test_larger_intra_ring_shrinks_dcn_shard(self, spec):
        v = 100e6
        small = cross_pod_all_reduce_time_s(spec, v, intra_pod_ring=16)
        large = cross_pod_all_reduce_time_s(spec, v, intra_pod_ring=256)
        assert large < small

    def test_zero_volume(self, spec):
        assert cross_pod_all_reduce_time_s(spec, 0.0) < 1e-3

    def test_validation(self, spec):
        with pytest.raises(ConfigurationError):
            cross_pod_all_reduce_time_s(spec, -1.0)
        with pytest.raises(ConfigurationError):
            cross_pod_all_reduce_time_s(spec, 1e6, intra_pod_ring=0)
        with pytest.raises(ConfigurationError):
            cross_pod_all_reduce_time_s(spec, 1e6, intra_pod_ring=10_000)
