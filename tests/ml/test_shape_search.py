"""Tests for repro.ml.shape_search (Table 2 reproduction target)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ml.models import LLM_ZOO, LlmConfig
from repro.ml.perfmodel import TrainingStepModel
from repro.ml.shape_search import (
    BASELINE_SHAPE,
    SliceShapeSearch,
    enumerate_shapes,
)


@pytest.fixture(scope="module")
def search():
    return SliceShapeSearch(TrainingStepModel())


class TestEnumeration:
    def test_all_products_correct(self):
        for shape in enumerate_shapes(4096):
            assert shape[0] * shape[1] * shape[2] == 4096
            assert all(s % 4 == 0 for s in shape)

    def test_includes_paper_shapes(self):
        shapes = enumerate_shapes(4096)
        assert (16, 16, 16) in shapes
        assert (4, 4, 256) in shapes
        assert (8, 16, 32) in shapes

    def test_small_pod(self):
        # 64 = 4*4*4 is the only factorization with all extents
        # multiples of 4.
        assert enumerate_shapes(64) == [(4, 4, 4)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            enumerate_shapes(0)


class TestTable2:
    """The headline reproduction: Table 2's optima and speedups."""

    def test_llm0_optimal_shape(self, search):
        assert search.search(LLM_ZOO["llm0"]).best_shape == (8, 16, 32)

    def test_llm0_speedup(self, search):
        """Paper: 1.54x."""
        assert search.search(LLM_ZOO["llm0"]).speedup_vs_baseline == pytest.approx(
            1.54, abs=0.12
        )

    def test_llm1_optimal_shape(self, search):
        assert search.search(LLM_ZOO["llm1"]).best_shape == (4, 4, 256)

    def test_llm1_speedup(self, search):
        """Paper: 3.32x."""
        assert search.search(LLM_ZOO["llm1"]).speedup_vs_baseline == pytest.approx(
            3.32, abs=0.25
        )

    def test_llm2_optimal_is_baseline(self, search):
        result = search.search(LLM_ZOO["llm2"])
        assert result.best_shape == BASELINE_SHAPE
        assert result.speedup_vs_baseline == pytest.approx(1.0)

    def test_no_one_size_fits_all(self, search):
        """§4.2.1: there is no single optimal configuration."""
        shapes = {k: search.search(m).best_shape for k, m in LLM_ZOO.items()}
        assert len(set(shapes.values())) == 3


class TestSearchMechanics:
    def test_evaluate_infeasible_none(self, search):
        assert search.evaluate(LLM_ZOO["llm2"], (4, 16, 64)) is None

    def test_ranked_sorted(self, search):
        ranked = search.ranked(LLM_ZOO["llm0"], top=5)
        times = [t for _, t in ranked]
        assert times == sorted(times)
        assert len(ranked) == 5

    def test_result_str(self, search):
        assert "x" in str(search.search(LLM_ZOO["llm0"]))

    def test_infeasible_model_raises(self, search):
        huge = LlmConfig.from_params("huge", 5e12, 256, 2048, 4096)
        with pytest.raises(ConfigurationError):
            search.search(huge)

    def test_counts(self, search):
        r = search.search(LLM_ZOO["llm2"])
        assert r.evaluated > 0
        assert r.infeasible > 0  # small-TP classes are memory-infeasible
