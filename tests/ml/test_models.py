"""Tests for repro.ml.models."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ml.models import LLM_ZOO, LlmConfig


class TestLlmConfig:
    def test_from_params_parameter_count(self):
        m = LlmConfig.from_params("x", 35e9, num_layers=48, seq_len=2048, global_batch_seqs=1024)
        # 12 * L * h^2 should approximate the requested parameter count.
        approx = 12 * m.num_layers * m.hidden_dim ** 2
        assert approx == pytest.approx(35e9, rel=0.05)

    def test_hidden_multiple_of_128(self):
        m = LlmConfig.from_params("x", 70e9, 80, 2048, 1024)
        assert m.hidden_dim % 128 == 0

    def test_batch_tokens(self):
        m = LLM_ZOO["llm0"]
        assert m.global_batch_tokens == m.global_batch_seqs * m.seq_len

    def test_flops_per_step(self):
        m = LLM_ZOO["llm1"]
        assert m.flops_per_step == pytest.approx(6 * m.num_params * m.global_batch_tokens)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LlmConfig("x", 0, 1, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            LlmConfig.from_params("x", -1, 48, 2048, 1024)
        with pytest.raises(ConfigurationError):
            LlmConfig("x", 1e9, 0, 128, 2048, 1024)


class TestZoo:
    def test_three_models(self):
        assert set(LLM_ZOO) == {"llm0", "llm1", "llm2"}

    def test_paper_sizes(self):
        assert LLM_ZOO["llm0"].num_params == 35e9
        assert LLM_ZOO["llm1"].num_params == 70e9
        assert LLM_ZOO["llm2"].num_params == 150e9

    def test_llm1_most_data_parallel_skew(self):
        """§4.2.1: LLM1's batch/params ratio is the most skewed."""
        ratios = {
            k: m.global_batch_seqs / (m.num_params / 1e9) for k, m in LLM_ZOO.items()
        }
        assert ratios["llm1"] > ratios["llm0"] > ratios["llm2"]

    def test_str(self):
        assert "70B" in str(LLM_ZOO["llm1"])
