"""Tests for repro.ml.collective_sim: execution validates the analytics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.ml.collective_sim import (
    RingCollectiveSim,
    simulate_hierarchical_all_reduce,
)
from repro.ml.collectives import (
    hierarchical_all_reduce_time_s,
    ring_all_gather_time_s,
    ring_all_reduce_time_s,
    ring_reduce_scatter_time_s,
)

BW = 1e9
OVH = 1e-6


def ring_data(n, vec=64, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=vec) for _ in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_all_reduce_sums(self, n):
        sim = RingCollectiveSim(n, BW, OVH)
        data = ring_data(n, vec=n * 4, seed=n)
        out, _ = sim.all_reduce(data)
        expected = np.sum(data, axis=0)
        assert all(np.allclose(o, expected) for o in out)

    def test_reduce_scatter_owner_convention(self):
        n = 4
        sim = RingCollectiveSim(n, BW, OVH)
        data = ring_data(n, vec=8, seed=3)
        owned, _ = sim.reduce_scatter(data)
        expected = np.sum(data, axis=0)
        shards = np.array_split(expected, n)
        for c in range(n):
            np.testing.assert_allclose(owned[c], shards[sim.owned_shard_index(c)])

    def test_all_gather_reassembles(self):
        n = 4
        sim = RingCollectiveSim(n, BW, OVH)
        full = np.arange(16, dtype=float)
        shards = np.array_split(full, n)
        owned = [shards[sim.owned_shard_index(c)] for c in range(n)]
        gathered, _ = sim.all_gather(owned)
        for g in gathered:
            np.testing.assert_allclose(g, full)

    def test_uneven_vector_split(self):
        """Vectors that don't divide evenly still reduce correctly."""
        n = 4
        sim = RingCollectiveSim(n, BW, OVH)
        data = ring_data(n, vec=10, seed=5)
        out, _ = sim.all_reduce(data)
        assert all(np.allclose(o, np.sum(data, axis=0)) for o in out)

    @given(st.integers(2, 10), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_all_reduce_property(self, n, vec):
        sim = RingCollectiveSim(n, BW, OVH)
        data = ring_data(n, vec=vec, seed=n * 100 + vec)
        out, _ = sim.all_reduce(data)
        expected = np.sum(data, axis=0)
        assert all(np.allclose(o, expected) for o in out)


class TestTimingMatchesAnalytic:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_reduce_scatter_time(self, n):
        vec = n * 16  # even split -> exact match
        sim = RingCollectiveSim(n, BW, OVH)
        data = ring_data(n, vec=vec)
        _, t = sim.reduce_scatter(data)
        analytic = ring_reduce_scatter_time_s(data[0].nbytes, n, BW, OVH)
        assert t == pytest.approx(analytic, rel=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_all_reduce_time(self, n):
        vec = n * 8
        sim = RingCollectiveSim(n, BW, OVH)
        data = ring_data(n, vec=vec)
        _, t = sim.all_reduce(data)
        analytic = ring_all_reduce_time_s(data[0].nbytes, n, BW, OVH)
        assert t == pytest.approx(analytic, rel=1e-9)

    def test_hierarchical_time(self):
        correct, t = simulate_hierarchical_all_reduce((4, 4), 128, BW, OVH, seed=1)
        assert correct
        analytic = hierarchical_all_reduce_time_s(128 * 8, (4, 4), BW, OVH)
        assert t == pytest.approx(analytic, rel=1e-9)


class TestHierarchical:
    @pytest.mark.parametrize("extents", [(2, 2), (4, 4), (2, 3, 4), (1, 4)])
    def test_correct_over_shapes(self, extents):
        import math

        vec = 8 * math.prod(extents)
        correct, t = simulate_hierarchical_all_reduce(extents, vec, BW, OVH, seed=7)
        assert correct
        assert t >= 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_hierarchical_all_reduce((0, 2), 8, BW)
        with pytest.raises(ConfigurationError):
            RingCollectiveSim(0, BW)
        sim = RingCollectiveSim(4, BW)
        with pytest.raises(ConfigurationError):
            sim.reduce_scatter(ring_data(3))
        with pytest.raises(ConfigurationError):
            sim.all_gather([np.zeros(2)] * 3)
