"""Tests for repro.ml.perfmodel."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel


@pytest.fixture(scope="module")
def model():
    return TrainingStepModel()


def plan(key, shape):
    return ParallelismPlan.for_shape(LLM_ZOO[key], shape)


class TestComponents:
    def test_compute_independent_of_shape(self, model):
        a = model.compute_time_s(plan("llm0", (8, 16, 32)))
        b = model.compute_time_s(plan("llm0", (4, 4, 256)))
        assert a == pytest.approx(b)

    def test_tensor_comm_grows_with_tensor_dim(self, model):
        """More tensor parallelism means more activation all-reduce."""
        p4 = model.tensor_comm_time_s(plan("llm1", (4, 4, 256)))
        p8 = model.tensor_comm_time_s(plan("llm1", (8, 4, 128)))
        p16 = model.tensor_comm_time_s(plan("llm1", (16, 16, 16)))
        assert p4 < p8 < p16

    def test_tensor_comm_zero_without_tp(self, model):
        p = ParallelismPlan(model=LLM_ZOO["llm0"], tensor=1, data_extents=(64, 64))
        assert model.tensor_comm_time_s(p) == 0.0

    def test_data_comm_shrinks_with_tensor_dim(self, model):
        """More model sharding means smaller gradient all-reduces."""
        d4 = model.data_comm_time_s(plan("llm1", (4, 4, 256)))
        d16 = model.data_comm_time_s(plan("llm1", (16, 16, 16)))
        assert d16 < d4

    def test_data_comm_zero_without_dp(self, model):
        p = ParallelismPlan(model=LLM_ZOO["llm0"], tensor=16, data_extents=(1,))
        assert model.data_comm_time_s(p) == 0.0

    def test_overlap_reduces_data_comm(self):
        p = plan("llm1", (4, 4, 256))
        none = TrainingStepModel(dp_overlap=0.0).data_comm_time_s(p)
        half = TrainingStepModel(dp_overlap=0.5).data_comm_time_s(p)
        assert half == pytest.approx(none / 2)


class TestStepTime:
    def test_breakdown_sums(self, model):
        p = plan("llm0", (8, 16, 32))
        b = model.breakdown(p)
        expected = (b.compute_s + b.tensor_comm_s + b.pipeline_comm_s) * (
            1 + b.bubble_fraction
        ) + b.data_comm_s
        assert b.total_s == pytest.approx(expected)

    def test_infeasible_plan_raises(self, model):
        with pytest.raises(ConfigurationError):
            model.step_time_s(plan("llm2", (4, 16, 64)))

    def test_throughput_inverse_of_step(self, model):
        p = plan("llm1", (4, 4, 256))
        assert model.throughput_seqs_per_s(p) == pytest.approx(
            LLM_ZOO["llm1"].global_batch_seqs / model.step_time_s(p)
        )

    def test_comm_fraction_bounds(self, model):
        b = model.breakdown(plan("llm2", (16, 16, 16)))
        assert 0 < b.comm_fraction < 1

    def test_u_shape_in_tensor_dim(self, model):
        """The tensor/data tradeoff is U-shaped for LLM0 (optimum at 8)."""
        t4 = model.step_time_s(plan("llm0", (4, 16, 64)))
        t8 = model.step_time_s(plan("llm0", (8, 16, 32)))
        t16 = model.step_time_s(plan("llm0", (16, 16, 16)))
        assert t8 < t4
        assert t8 < t16


class TestValidation:
    def test_bad_mfu(self):
        with pytest.raises(ConfigurationError):
            TrainingStepModel(mfu=0.0)
        with pytest.raises(ConfigurationError):
            TrainingStepModel(mfu=1.5)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            TrainingStepModel(link_gbytes_per_s=0)

    def test_bad_overlap(self):
        with pytest.raises(ConfigurationError):
            TrainingStepModel(dp_overlap=1.5)
