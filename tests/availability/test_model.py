"""Tests for repro.availability.model (Fig 15a)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.availability.model import (
    TRANSCEIVER_TECHS,
    TransceiverTech,
    fabric_availability,
    fig15a_curves,
    ocses_required,
)


class TestOcsCounts:
    def test_paper_counts(self):
        """§4.2.2: 96 OCSes duplex, 48 CWDM4 bidi, 24 CWDM8 bidi."""
        assert ocses_required(TRANSCEIVER_TECHS["cwdm4_duplex"]) == 96
        assert ocses_required(TRANSCEIVER_TECHS["cwdm4_bidi"]) == 48
        assert ocses_required(TRANSCEIVER_TECHS["cwdm8_bidi"]) == 24

    def test_bidi_halves_ocses(self):
        duplex = TRANSCEIVER_TECHS["cwdm4_duplex"].num_ocses
        bidi = TRANSCEIVER_TECHS["cwdm4_bidi"].num_ocses
        assert bidi == duplex // 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransceiverTech("bad", strands_per_connection=0)


class TestFabricAvailability:
    def test_fig15a_anchor_points(self):
        """Paper: 90% / 95% / 98% fabric availability at 99.9% per OCS."""
        assert fabric_availability(96, 0.999) == pytest.approx(0.908, abs=0.003)
        assert fabric_availability(48, 0.999) == pytest.approx(0.953, abs=0.003)
        assert fabric_availability(24, 0.999) == pytest.approx(0.976, abs=0.003)

    def test_perfect_ocs(self):
        assert fabric_availability(96, 1.0) == 1.0

    def test_monotone_in_ocs_availability(self):
        assert fabric_availability(48, 0.9999) > fabric_availability(48, 0.999)

    def test_fewer_ocses_better(self):
        assert fabric_availability(24, 0.999) > fabric_availability(96, 0.999)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fabric_availability(0, 0.999)
        with pytest.raises(ConfigurationError):
            fabric_availability(48, 0.0)
        with pytest.raises(ConfigurationError):
            fabric_availability(48, 1.1)


class TestCurves:
    def test_fig15a_curve_shapes(self):
        avails = np.linspace(0.995, 1.0, 11)
        curves = fig15a_curves(avails)
        assert set(curves) == set(TRANSCEIVER_TECHS)
        for arr in curves.values():
            assert arr.shape == (11,)
            assert np.all(np.diff(arr) > 0)  # monotone in OCS availability

    def test_cwdm8_dominates(self):
        avails = np.linspace(0.995, 0.9999, 9)
        curves = fig15a_curves(avails)
        assert np.all(curves["cwdm8_bidi"] >= curves["cwdm4_bidi"])
        assert np.all(curves["cwdm4_bidi"] >= curves["cwdm4_duplex"])
