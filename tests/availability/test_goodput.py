"""Tests for repro.availability.goodput (Fig 15b)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.availability.goodput import (
    GoodputModel,
    cube_availability,
    pooled_holdback,
    reconfigurable_goodput,
    spares_for_slice,
    static_goodput,
)


class TestCubeAvailability:
    def test_sixteen_hosts(self):
        assert cube_availability(0.999) == pytest.approx(0.999 ** 16)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cube_availability(0.0)
        with pytest.raises(ConfigurationError):
            cube_availability(1.1)


class TestPaperAnchors:
    """The quantitative claims of §4.2.2."""

    def test_1024_slice_at_999(self):
        """99.9% servers: static 25% vs reconfigurable 75% at 1024 TPUs."""
        assert reconfigurable_goodput(16, 0.999) == pytest.approx(0.75)
        assert static_goodput(16, 0.999) == pytest.approx(0.25)

    def test_1024_converges_999_and_995(self):
        """Green and red curves converge to 75% at 1024 TPUs."""
        assert reconfigurable_goodput(16, 0.999) == reconfigurable_goodput(16, 0.995)

    def test_1024_at_99_only_two_slices(self):
        """99% servers: only two 1024 slices -> 50%."""
        assert reconfigurable_goodput(16, 0.99) == pytest.approx(0.50)

    def test_2048_always_50(self):
        """Half-pod slices: exactly one composable regardless of servers."""
        for sa in (0.999, 0.995, 0.99):
            assert reconfigurable_goodput(32, sa) == pytest.approx(0.50)

    def test_single_cube_same_for_both_fabrics(self):
        """No reconfiguration within a cube: identical goodput."""
        for sa in (0.999, 0.995, 0.99):
            assert reconfigurable_goodput(1, sa) == static_goodput(1, sa)

    def test_goodput_rises_with_server_availability(self):
        assert reconfigurable_goodput(1, 0.999) > reconfigurable_goodput(1, 0.99)

    def test_static_degrades_faster_than_reconfigurable(self):
        """Fig 15b: dashed (static) falls away from solid as slices grow."""
        for sa in (0.999, 0.995):
            assert static_goodput(16, sa) < reconfigurable_goodput(16, sa)
            assert static_goodput(32, sa) < reconfigurable_goodput(32, sa)


class TestMechanics:
    def test_spares_grow_with_failure_rate(self):
        a_good = cube_availability(0.999)
        a_bad = cube_availability(0.99)
        assert spares_for_slice(16, a_bad) > spares_for_slice(16, a_good)

    def test_holdback_grows_with_failure_rate(self):
        assert pooled_holdback(64, cube_availability(0.99)) > pooled_holdback(
            64, cube_availability(0.999)
        )

    def test_perfect_cubes_no_spares(self):
        assert spares_for_slice(16, 1.0) == 0
        assert reconfigurable_goodput(16, 1.0) == pytest.approx(1.0)

    def test_static_zero_when_unattainable(self):
        assert static_goodput(32, 0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reconfigurable_goodput(0, 0.999)
        with pytest.raises(ConfigurationError):
            static_goodput(65, 0.999)


class TestGoodputModel:
    def test_curve_keys(self):
        model = GoodputModel()
        curve = model.curve(0.999, slice_cubes=(1, 16, 32))
        assert set(curve) == {1, 16, 32}
        assert curve[16] == (pytest.approx(0.75), pytest.approx(0.25))

    def test_advantage_3x(self):
        """Abstract: up to 3x better system availability/goodput."""
        assert GoodputModel().advantage(16, 0.999) == pytest.approx(3.0)

    def test_advantage_infinite_when_static_zero(self):
        assert GoodputModel().advantage(32, 0.99) == float("inf")
