"""Tests for repro.availability.montecarlo."""

import tracemalloc

import numpy as np
import pytest
from scipy.stats import binom

from repro.core.errors import ConfigurationError
from repro.availability.goodput import cube_availability
from repro.availability.montecarlo import (
    AvailabilityTask,
    GoodputMonteCarlo,
    availability_grid,
    availability_grid_serial,
)
from repro.parallel import SweepEngine


class TestMonteCarlo:
    def test_cube_availability_matches_analytic(self):
        mc = GoodputMonteCarlo(server_availability=0.995, seed=1, trials=4000)
        empirical = mc.empirical_cube_availability()
        assert empirical == pytest.approx(cube_availability(0.995), abs=0.01)

    def test_reconfigurable_slice_meets_target(self):
        """The spare pools sized analytically hit >= 97% empirically."""
        for sa in (0.999, 0.995, 0.99):
            mc = GoodputMonteCarlo(server_availability=sa, seed=2, trials=20_000)
            availability, spares = mc.reconfigurable_slice_availability(16)
            assert availability >= 0.96  # sampling tolerance below 0.97
            assert spares >= 1

    def test_static_partition_matches_binomial(self):
        sa = 0.999
        mc = GoodputMonteCarlo(server_availability=sa, seed=3, trials=30_000)
        a_cube = cube_availability(sa)
        q = a_cube ** 16
        analytic = float(binom.sf(0, 4, q))  # P(at least 1 of 4 slices up)
        empirical = mc.static_partition_survival(16, k=1)
        assert empirical == pytest.approx(analytic, abs=0.01)

    def test_static_two_slices_below_target(self):
        """At 99.9% servers, two static 1024 slices miss the 97% target."""
        mc = GoodputMonteCarlo(server_availability=0.999, seed=4, trials=30_000)
        assert mc.static_partition_survival(16, k=2) < 0.97

    def test_deterministic(self):
        a = GoodputMonteCarlo(0.995, seed=7, trials=2000).empirical_cube_availability()
        b = GoodputMonteCarlo(0.995, seed=7, trials=2000).empirical_cube_availability()
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GoodputMonteCarlo(server_availability=0.0)
        with pytest.raises(ConfigurationError):
            GoodputMonteCarlo(server_availability=0.99, trials=0)
        mc = GoodputMonteCarlo(server_availability=0.99, trials=10)
        with pytest.raises(ConfigurationError):
            mc.static_partition_survival(16, k=-1)


class TestChunkedSampling:
    """The bounded-memory sampler must be invisible except in footprint."""

    def test_chunked_matches_reference_bitwise(self):
        """Chunked draws consume the identical RNG stream as one shot."""
        mc = GoodputMonteCarlo(server_availability=0.995, seed=11, trials=20_000)
        chunked = mc._cube_states(np.random.default_rng(11), 256)
        reference = mc._cube_states_reference(np.random.default_rng(11), 256)
        assert chunked.tobytes() == reference.tobytes()

    def test_small_draws_delegate_to_reference(self):
        mc = GoodputMonteCarlo(server_availability=0.995, seed=5, trials=500)
        chunked = mc._cube_states(np.random.default_rng(5), 16)
        reference = mc._cube_states_reference(np.random.default_rng(5), 16)
        assert chunked.tobytes() == reference.tobytes()

    def test_peak_memory_bounded(self):
        """256 cubes x 20k trials stays under 64 MB peak (was ~650 MB)."""
        mc = GoodputMonteCarlo(server_availability=0.995, seed=1, trials=20_000)
        tracemalloc.start()
        try:
            mc.empirical_cube_availability()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak <= 64 * 2**20

    def test_public_results_unchanged(self):
        """Seeded public results are identical to the reference sampler."""
        mc = GoodputMonteCarlo(server_availability=0.999, seed=2, trials=20_000)
        availability, spares = mc.reconfigurable_slice_availability(16)
        states = mc._cube_states_reference(
            np.random.default_rng(2), 16 + spares
        )
        failures = (~states).sum(axis=1)
        assert availability == float((failures <= spares).mean())


class TestAvailabilityGrid:
    def test_grid_matches_serial_for_any_workers(self):
        ref_a, ref_s = availability_grid_serial(
            [0.995, 0.99], [4, 16], trials=2000, seed=1
        )
        for workers in (1, 2, 4):
            a, s = availability_grid(
                [0.995, 0.99], [4, 16], trials=2000, seed=1,
                engine=SweepEngine(workers=workers, chunk_size=1),
            )
            assert a.tobytes() == ref_a.tobytes()
            assert np.array_equal(s, ref_s)

    def test_grid_matches_pointwise_montecarlo(self):
        a, s = availability_grid([0.995], [16], trials=2000, seed=3)
        mc = GoodputMonteCarlo(server_availability=0.995, seed=3, trials=2000)
        availability, spares = mc.reconfigurable_slice_availability(16)
        assert a[0, 0] == availability
        assert s[0, 0] == spares

    def test_tasks_carry_explicit_seeds(self):
        task = AvailabilityTask(0.99, 4, 1000, 7)
        assert task.seed == 7
