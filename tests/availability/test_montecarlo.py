"""Tests for repro.availability.montecarlo."""

import pytest
from scipy.stats import binom

from repro.core.errors import ConfigurationError
from repro.availability.goodput import cube_availability
from repro.availability.montecarlo import GoodputMonteCarlo


class TestMonteCarlo:
    def test_cube_availability_matches_analytic(self):
        mc = GoodputMonteCarlo(server_availability=0.995, seed=1, trials=4000)
        empirical = mc.empirical_cube_availability()
        assert empirical == pytest.approx(cube_availability(0.995), abs=0.01)

    def test_reconfigurable_slice_meets_target(self):
        """The spare pools sized analytically hit >= 97% empirically."""
        for sa in (0.999, 0.995, 0.99):
            mc = GoodputMonteCarlo(server_availability=sa, seed=2, trials=20_000)
            availability, spares = mc.reconfigurable_slice_availability(16)
            assert availability >= 0.96  # sampling tolerance below 0.97
            assert spares >= 1

    def test_static_partition_matches_binomial(self):
        sa = 0.999
        mc = GoodputMonteCarlo(server_availability=sa, seed=3, trials=30_000)
        a_cube = cube_availability(sa)
        q = a_cube ** 16
        analytic = float(binom.sf(0, 4, q))  # P(at least 1 of 4 slices up)
        empirical = mc.static_partition_survival(16, k=1)
        assert empirical == pytest.approx(analytic, abs=0.01)

    def test_static_two_slices_below_target(self):
        """At 99.9% servers, two static 1024 slices miss the 97% target."""
        mc = GoodputMonteCarlo(server_availability=0.999, seed=4, trials=30_000)
        assert mc.static_partition_survival(16, k=2) < 0.97

    def test_deterministic(self):
        a = GoodputMonteCarlo(0.995, seed=7, trials=2000).empirical_cube_availability()
        b = GoodputMonteCarlo(0.995, seed=7, trials=2000).empirical_cube_availability()
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GoodputMonteCarlo(server_availability=0.0)
        with pytest.raises(ConfigurationError):
            GoodputMonteCarlo(server_availability=0.99, trials=0)
        mc = GoodputMonteCarlo(server_availability=0.99, trials=10)
        with pytest.raises(ConfigurationError):
            mc.static_partition_survival(16, k=-1)
