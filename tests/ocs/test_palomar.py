"""Tests for repro.ocs.palomar."""

import numpy as np
import pytest

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import CrossConnectError
from repro.core.reconfig import plan_reconfiguration
from repro.ocs.mirror import MirrorState
from repro.ocs.palomar import (
    PALOMAR_MAX_POWER_W,
    PALOMAR_RADIX,
    PALOMAR_USABLE_PORTS,
    PalomarOcs,
)


@pytest.fixture(scope="module")
def ocs():
    return PalomarOcs.build(seed=3)


@pytest.fixture
def fresh_ocs():
    return PalomarOcs.build(seed=11)


class TestConstruction:
    def test_radix(self, ocs):
        assert ocs.radix == PALOMAR_RADIX == 136
        assert PALOMAR_USABLE_PORTS == 128

    def test_initially_empty_and_healthy(self, ocs):
        assert ocs.state.num_circuits == 0 or ocs.state.is_bijective()
        assert PalomarOcs.build(seed=5).is_healthy


class TestCircuits:
    def test_connect_steers_mirrors(self, fresh_ocs):
        fresh_ocs.connect(3, 41)
        assert fresh_ocs.state.south_of(3) == 41
        assert fresh_ocs.array_north.mirror_for_port(3).target_port == 41
        assert fresh_ocs.array_south.mirror_for_port(41).target_port == 3

    def test_disconnect_parks_mirrors(self, fresh_ocs):
        fresh_ocs.connect(3, 41)
        fresh_ocs.disconnect(3)
        assert fresh_ocs.array_north.mirror_for_port(3).state is MirrorState.PARKED
        assert fresh_ocs.array_south.mirror_for_port(41).state is MirrorState.PARKED

    def test_connect_duration_positive(self, fresh_ocs):
        assert fresh_ocs.connect(0, 0) > 0

    def test_full_permutation(self, fresh_ocs):
        rng = np.random.default_rng(0)
        perm = rng.permutation(fresh_ocs.radix)
        target = CrossConnectMap.from_circuits(
            fresh_ocs.radix, {i: int(perm[i]) for i in range(fresh_ocs.radix)}
        )
        plan = plan_reconfiguration(fresh_ocs.state, target)
        fresh_ocs.apply_plan(plan)
        assert fresh_ocs.state.is_full_permutation()

    def test_nonblocking_any_permutation(self, fresh_ocs):
        """Any permutation is realizable: non-blocking fabric."""
        rng = np.random.default_rng(1)
        for trial in range(3):
            perm = rng.permutation(fresh_ocs.radix)
            target = CrossConnectMap.from_circuits(
                fresh_ocs.radix, {i: int(perm[i]) for i in range(fresh_ocs.radix)}
            )
            fresh_ocs.apply_plan(plan_reconfiguration(fresh_ocs.state, target))
            assert fresh_ocs.state == target


class TestOptics:
    def test_loss_matrix_typical(self, ocs):
        matrix = ocs.insertion_loss_matrix_db()
        assert matrix.shape == (136, 136)
        assert np.mean(matrix < 2.0) > 0.7

    def test_return_loss_spec(self, ocs):
        assert np.all(ocs.return_loss_profile_db() <= -38.0)

    def test_circuit_loss_query(self, ocs):
        loss = ocs.insertion_loss_db(0, 1)
        assert 0.5 < loss < 4.0


class TestFailures:
    def test_driver_board_failure_drops_circuits(self, fresh_ocs):
        fresh_ocs.connect(0, 100)
        fresh_ocs.connect(50, 3)
        dropped = fresh_ocs.fail_driver_board("north", 0)  # covers ports 0..16
        assert (0, 100) in dropped
        assert fresh_ocs.state.south_of(0) is None
        assert fresh_ocs.state.south_of(50) == 3  # unaffected circuit survives
        assert not fresh_ocs.is_healthy

    def test_connect_rejected_without_drive(self, fresh_ocs):
        fresh_ocs.fail_driver_board("north", 0)
        with pytest.raises(CrossConnectError):
            fresh_ocs.connect(0, 10)

    def test_replace_board_restores(self, fresh_ocs):
        fresh_ocs.fail_driver_board("north", 0)
        channels = fresh_ocs.replace_driver_board("north", 0)
        assert 0 in channels
        fresh_ocs.connect(0, 10)  # works again
        assert fresh_ocs.state.south_of(0) == 10

    def test_mirror_failure_and_repair(self, fresh_ocs):
        fresh_ocs.connect(7, 7)
        dropped = fresh_ocs.fail_mirror("north", 7)
        assert dropped == (7, 7)
        with pytest.raises(CrossConnectError):
            fresh_ocs.connect(7, 8)
        fresh_ocs.repair_mirror("north", 7)
        fresh_ocs.connect(7, 8)
        assert fresh_ocs.state.south_of(7) == 8

    def test_south_mirror_failure(self, fresh_ocs):
        fresh_ocs.connect(2, 9)
        dropped = fresh_ocs.fail_mirror("south", 9)
        assert dropped == (2, 9)
        assert fresh_ocs.state.south_of(2) is None

    def test_healthy_ports_excludes_failures(self, fresh_ocs):
        fresh_ocs.fail_mirror("north", 5)
        fresh_ocs.fail_driver_board("south", 1)
        healthy = fresh_ocs.healthy_ports()
        assert 5 not in healthy
        board_channels = set(fresh_ocs.drivers_south.boards[1].channels)
        assert healthy.isdisjoint(board_channels)


class TestPower:
    def test_power_bounds(self, fresh_ocs):
        idle = fresh_ocs.power_w()
        assert 0 < idle < PALOMAR_MAX_POWER_W
        for i in range(fresh_ocs.radix):
            fresh_ocs.state.connect(i, i)
        assert fresh_ocs.power_w() == pytest.approx(PALOMAR_MAX_POWER_W)

    def test_power_increases_with_circuits(self, fresh_ocs):
        before = fresh_ocs.power_w()
        fresh_ocs.connect(0, 0)
        assert fresh_ocs.power_w() > before


class TestTelemetryIntegration:
    def test_connect_recorded(self, fresh_ocs):
        fresh_ocs.connect(1, 2)
        assert fresh_ocs.telemetry.connects == 1
        assert fresh_ocs.telemetry.alignment_runs >= 1

    def test_board_failure_recorded(self, fresh_ocs):
        fresh_ocs.connect(0, 0)
        fresh_ocs.fail_driver_board("north", 0)
        assert fresh_ocs.telemetry.board_failures == 1
        assert fresh_ocs.telemetry.circuits_dropped_by_failures == 1


class TestApplyPlanAtomicity:
    def test_doomed_plan_leaves_state_untouched(self, fresh_ocs):
        """A plan whose make targets an undriven port changes nothing."""
        from repro.core.crossconnect import CrossConnectMap
        from repro.core.reconfig import plan_reconfiguration

        fresh_ocs.connect(50, 60)
        fresh_ocs.fail_driver_board("north", 0)  # ports 0..16 undriven
        target = CrossConnectMap.from_circuits(
            fresh_ocs.radix, {50: 61, 0: 70}  # move one, make one doomed
        )
        plan = plan_reconfiguration(fresh_ocs.state, target)
        with pytest.raises(CrossConnectError):
            fresh_ocs.apply_plan(plan)
        # The pre-existing circuit survived untouched.
        assert fresh_ocs.state.south_of(50) == 60
        assert fresh_ocs.state.num_circuits == 1

    def test_valid_plan_after_repair(self, fresh_ocs):
        from repro.core.crossconnect import CrossConnectMap
        from repro.core.reconfig import plan_reconfiguration

        fresh_ocs.fail_driver_board("north", 0)
        fresh_ocs.replace_driver_board("north", 0)
        target = CrossConnectMap.from_circuits(fresh_ocs.radix, {0: 70})
        fresh_ocs.apply_plan(plan_reconfiguration(fresh_ocs.state, target))
        assert fresh_ocs.state.south_of(0) == 70
