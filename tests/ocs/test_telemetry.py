"""Tests for repro.ocs.telemetry."""

import pytest

from repro.ocs.telemetry import DRIFT_THRESHOLD_DB, Anomaly, OcsTelemetry


@pytest.fixture
def tel():
    return OcsTelemetry()


class TestCounters:
    def test_connect_disconnect(self, tel):
        tel.record_connect(0, 1, 1.5)
        tel.record_disconnect(0, 1)
        assert tel.connects == 1
        assert tel.disconnects == 1

    def test_alignment_mean(self, tel):
        tel.record_alignment(10)
        tel.record_alignment(20)
        assert tel.mean_alignment_iterations == 15.0

    def test_alignment_mean_empty(self, tel):
        assert tel.mean_alignment_iterations == 0.0


class TestLossMonitoring:
    def test_baseline_from_connect(self, tel):
        tel.record_connect(0, 1, 1.5)
        assert tel.observe_loss(0, 1, 1.6) is None  # within drift budget

    def test_drift_anomaly(self, tel):
        tel.record_connect(0, 1, 1.5)
        anomaly = tel.observe_loss(0, 1, 1.5 + DRIFT_THRESHOLD_DB + 0.1)
        assert anomaly is not None
        assert anomaly.kind == "loss-drift"
        assert tel.anomalies == (anomaly,)

    def test_over_max_anomaly(self, tel):
        tel.record_connect(0, 1, 2.9)
        anomaly = tel.observe_loss(0, 1, 3.2)
        assert anomaly is not None
        assert anomaly.kind == "loss-over-max"

    def test_history_kept(self, tel):
        tel.record_connect(0, 1, 1.0)
        for loss in (1.1, 1.2, 1.3):
            tel.observe_loss(0, 1, loss)
        assert tel.loss_history(0, 1) == (1.0, 1.1, 1.2, 1.3)

    def test_history_cleared_on_disconnect(self, tel):
        tel.record_connect(0, 1, 1.0)
        tel.record_disconnect(0, 1)
        assert tel.loss_history(0, 1) == ()

    def test_observe_without_connect_sets_baseline(self, tel):
        assert tel.observe_loss(5, 6, 1.8) is None
        assert tel.loss_history(5, 6) == (1.8,)

    def test_anomaly_str(self):
        a = Anomaly((1, 2), "loss-drift", "x")
        assert "N1<->S2" in str(a)


class TestAnomalyDedup:
    def test_repeats_collapse_but_count_accumulates(self, tel):
        tel.record_connect(0, 1, 1.0)
        for _ in range(5):
            tel.observe_loss(0, 1, 1.0 + DRIFT_THRESHOLD_DB + 0.1)
        assert len(tel.anomalies) == 1
        assert tel.anomaly_count(0, 1, "loss-drift") == 5

    def test_distinct_kinds_kept_separately(self, tel):
        tel.record_connect(0, 1, 1.0)
        tel.observe_loss(0, 1, 1.0 + DRIFT_THRESHOLD_DB + 0.1)  # drift
        tel.observe_loss(0, 1, 3.5)  # over max
        assert {a.kind for a in tel.anomalies} == {"loss-drift", "loss-over-max"}
        assert tel.anomaly_count(0, 1) == 2

    def test_stored_anomalies_bounded(self):
        tel = OcsTelemetry(max_anomalies=4)
        for n in range(6):
            tel.record_connect(n, n, 1.0)
            tel.observe_loss(n, n, 1.0 + DRIFT_THRESHOLD_DB + 0.1)
        assert len(tel.anomalies) == 4
        # The oldest circuits were evicted, the newest retained.
        assert {a.circuit for a in tel.anomalies} == {(n, n) for n in range(2, 6)}

    def test_disconnect_clears_anomalies_but_keeps_counts(self, tel):
        tel.record_connect(0, 1, 1.0)
        tel.observe_loss(0, 1, 1.0 + DRIFT_THRESHOLD_DB + 0.1)
        tel.record_disconnect(0, 1)
        assert tel.anomalies == ()
        assert tel.anomaly_count(0, 1) == 1  # flap frequency survives

    def test_count_zero_for_clean_circuit(self, tel):
        assert tel.anomaly_count(3, 3) == 0


class TestRegistryBacking:
    def test_counters_live_on_registry(self, tel):
        tel.record_connect(0, 1, 1.5)
        tel.record_alignment(7)
        assert tel.registry.value("ocs.circuit.connect") == 1
        assert tel.registry.value("ocs.alignment.iterations") == 7
        assert tel.connects == 1  # property view agrees

    def test_loss_observations_counted(self, tel):
        tel.record_connect(0, 1, 1.0)
        tel.observe_loss(0, 1, 1.1)
        tel.observe_loss(0, 1, 1.2)
        assert tel.loss_observations == 2

    def test_shared_registry_with_ocs_labels(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        a = OcsTelemetry(registry=reg, ocs="a")
        b = OcsTelemetry(registry=reg, ocs="b")
        a.record_connect(0, 1, 1.0)
        a.record_connect(2, 3, 1.0)
        b.record_connect(0, 1, 1.0)
        assert a.connects == 2
        assert b.connects == 1
        assert reg.sum_counters("ocs.circuit.connect") == 3

    def test_anomaly_counts_isolated_per_switch(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        a = OcsTelemetry(registry=reg, ocs="a")
        b = OcsTelemetry(registry=reg, ocs="b")
        a.record_connect(0, 1, 1.0)
        a.observe_loss(0, 1, 1.0 + DRIFT_THRESHOLD_DB + 0.1)
        assert a.anomaly_count(0, 1) == 1
        assert b.anomaly_count(0, 1) == 0
        assert a.total_anomaly_firings() == 1


class TestDriftThresholdOverride:
    def test_instance_override_tightens(self):
        tel = OcsTelemetry(drift_threshold_db=0.1)
        tel.record_connect(0, 1, 1.0)
        anomaly = tel.observe_loss(0, 1, 1.2)  # below module default 0.5
        assert anomaly is not None and anomaly.kind == "loss-drift"

    def test_instance_override_loosens(self):
        tel = OcsTelemetry(drift_threshold_db=2.0)
        tel.record_connect(0, 1, 1.0)
        assert tel.observe_loss(0, 1, 1.0 + DRIFT_THRESHOLD_DB + 0.1) is None

    def test_module_global_still_honored(self, tel, monkeypatch):
        import repro.ocs.telemetry as mod

        monkeypatch.setattr(mod, "DRIFT_THRESHOLD_DB", 0.05)
        tel.record_connect(0, 1, 1.0)
        assert tel.observe_loss(0, 1, 1.1) is not None
