"""Tests for repro.ocs.optics_model (Fig 10 statistics)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.ocs.optics_model import (
    INSERTION_LOSS_MAX_DB,
    RETURN_LOSS_SPEC_DB,
    OcsOpticsModel,
    summarize_insertion_loss,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(1)
    radix = 136
    mirror_loss = rng.uniform(0.25, 0.5, radix)
    return OcsOpticsModel(
        radix=radix,
        rng=rng,
        mirror_loss_north=mirror_loss,
        mirror_loss_south=rng.uniform(0.25, 0.5, radix),
    )


class TestInsertionLoss:
    def test_matrix_shape(self, model):
        assert model.insertion_loss_matrix_db().shape == (136, 136)

    def test_typical_below_2db(self, model):
        matrix = model.insertion_loss_matrix_db()
        # Paper: "Insertion losses are typically less than 2dB".
        assert np.mean(matrix < 2.0) > 0.7

    def test_tail_bounded(self, model):
        matrix = model.insertion_loss_matrix_db()
        assert np.percentile(matrix, 99.9) < INSERTION_LOSS_MAX_DB + 1.0

    def test_positive(self, model):
        assert np.all(model.insertion_loss_matrix_db() > 0)

    def test_scalar_matches_matrix(self, model):
        matrix = model.insertion_loss_matrix_db()
        assert model.insertion_loss_db(3, 77) == pytest.approx(matrix[3, 77])

    def test_out_of_range(self, model):
        with pytest.raises(ConfigurationError):
            model.insertion_loss_db(136, 0)
        with pytest.raises(ConfigurationError):
            model.insertion_loss_db(0, -1)


class TestReturnLoss:
    def test_profile_shape(self, model):
        assert model.return_loss_profile_db().shape == (136,)

    def test_meets_spec(self, model):
        assert model.meets_spec()
        assert np.all(model.return_loss_profile_db() <= RETURN_LOSS_SPEC_DB)

    def test_typical_around_minus_46(self, model):
        profile = model.return_loss_profile_db()
        assert -49 < np.median(profile) < -43

    def test_worst_path_reflection(self, model):
        worst = model.worst_path_reflection_db(0, 1)
        assert worst == max(model.return_loss_db(0), model.return_loss_db(1))

    def test_port_out_of_range(self, model):
        with pytest.raises(ConfigurationError):
            model.return_loss_db(200)


class TestValidation:
    def test_bad_radix(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            OcsOpticsModel(0, rng, np.array([]), np.array([]))

    def test_mismatched_profiles(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            OcsOpticsModel(4, rng, np.zeros(3) + 0.3, np.zeros(4) + 0.3)


class TestSummary:
    def test_summary_keys(self, model):
        s = summarize_insertion_loss(model.insertion_loss_matrix_db())
        assert s["mean_db"] < s["p95_db"] < s["max_db"]
        assert 0 <= s["fraction_below_2db"] <= 1
        assert s["fraction_below_3db"] >= s["fraction_below_2db"]
