"""Tests for repro.ocs.driver."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ocs.driver import DriverBank, DriverBoard


class TestDriverBoard:
    def test_channels(self):
        b = DriverBoard(index=0, first_channel=10, num_channels=5)
        assert list(b.channels) == [10, 11, 12, 13, 14]
        assert b.covers(12)
        assert not b.covers(15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriverBoard(0, 0, 0)
        with pytest.raises(ConfigurationError):
            DriverBoard(0, -1, 4)


class TestDriverBank:
    def test_build_covers_all_channels(self):
        bank = DriverBank.build(136, num_boards=8)
        assert bank.num_channels == 136
        covered = sorted(c for b in bank.boards for c in b.channels)
        assert covered == list(range(136))

    def test_build_uneven_remainder(self):
        bank = DriverBank.build(10, num_boards=3)
        assert [b.num_channels for b in bank.boards] == [3, 3, 4]

    def test_build_validation(self):
        with pytest.raises(ConfigurationError):
            DriverBank.build(0, 4)
        with pytest.raises(ConfigurationError):
            DriverBank.build(4, 0)
        with pytest.raises(ConfigurationError):
            DriverBank.build(4, 8)

    def test_board_for(self):
        bank = DriverBank.build(16, num_boards=4)
        assert bank.board_for(0).index == 0
        assert bank.board_for(15).index == 3
        with pytest.raises(ConfigurationError):
            bank.board_for(16)

    def test_fail_and_replace(self):
        bank = DriverBank.build(16, num_boards=4)
        assert bank.healthy
        affected = bank.fail_board(1)
        assert affected == (4, 5, 6, 7)
        assert not bank.healthy
        assert not bank.is_channel_driven(5)
        assert bank.is_channel_driven(0)
        assert bank.undriven_channels() == {4, 5, 6, 7}
        restored = bank.replace_board(1)
        assert restored == (4, 5, 6, 7)
        assert bank.healthy
        assert bank.undriven_channels() == set()

    def test_unknown_board(self):
        bank = DriverBank.build(16, num_boards=4)
        with pytest.raises(ConfigurationError):
            bank.fail_board(9)
