"""Tests for repro.ocs.technologies (Table C.1)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ocs.technologies import (
    TECHNOLOGY_REGISTRY,
    CostClass,
    qualifying_technologies,
    technology,
)


class TestRegistry:
    def test_all_five_rows_present(self):
        assert set(TECHNOLOGY_REGISTRY) == {
            "mems",
            "robotic",
            "piezo",
            "guided_wave",
            "wavelength",
        }

    def test_mems_row_matches_table(self):
        mems = technology("MEMS")
        assert mems.port_count == (320, 320)
        assert mems.insertion_loss_db <= 3.0
        assert mems.driving_voltage_v == pytest.approx(100.0)
        assert not mems.latching

    def test_robotic_is_latching_but_slow(self):
        robotic = technology("robotic")
        assert robotic.latching
        assert robotic.switching_time_s >= 60

    def test_lookup_case_insensitive(self):
        assert technology("Guided Wave").name == "Guided Wave"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            technology("quantum")


class TestRequirements:
    def test_mems_qualifies(self):
        assert technology("mems").meets_requirements()

    def test_guided_wave_fails_radix_and_loss(self):
        assert not technology("guided_wave").meets_requirements()

    def test_robotic_fails_switching_time(self):
        assert not technology("robotic").meets_requirements()

    def test_qualifying_ranked_by_cost(self):
        quals = qualifying_technologies()
        names = [t.name for t in quals]
        assert "MEMS" in names
        assert "Robotic" not in names
        assert "Guided Wave" not in names
        # MEMS (medium cost) ranks before Piezo (high cost).
        if "Piezo" in names:
            assert names.index("MEMS") < names.index("Piezo")

    def test_relaxed_requirements_admit_more(self):
        strict = qualifying_technologies()
        relaxed = qualifying_technologies(min_radix=16, max_loss_db=10, max_switching_time_s=1e9)
        assert len(relaxed) >= len(strict)
        assert len(relaxed) == 5
