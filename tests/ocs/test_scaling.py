"""Tests for repro.ocs.scaling (§6: the 300x300 OCS)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.availability.model import TRANSCEIVER_TECHS
from repro.ocs.scaling import (
    NEXT_GEN_RADIX,
    OCS_GENERATIONS,
    OcsGeneration,
    superpod_scaling_table,
)


class TestGenerations:
    def test_palomar_envelope(self):
        palomar = OCS_GENERATIONS["palomar"]
        assert palomar.usable_ports == 128
        assert palomar.max_cubes() == 128
        assert palomar.max_chips() == 128 * 64  # 8192 chips

    def test_next_gen_envelope(self):
        gen = OCS_GENERATIONS["next_gen"]
        assert gen.radix == NEXT_GEN_RADIX == 300
        assert gen.max_cubes() == 292
        assert gen.max_chips() == 292 * 64

    def test_next_gen_more_than_doubles(self):
        assert (
            OCS_GENERATIONS["next_gen"].max_chips()
            > 2 * OCS_GENERATIONS["palomar"].max_chips()
        )

    def test_ocs_count_per_tech(self):
        gen = OCS_GENERATIONS["palomar"]
        assert gen.ocses_per_pod(strands_per_connection=2) == 48
        assert gen.ocses_per_pod(strands_per_connection=4) == 96
        assert gen.ocses_per_pod(strands_per_connection=1) == 24

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OcsGeneration("bad", radix=8, spare_ports=8)
        with pytest.raises(ConfigurationError):
            OCS_GENERATIONS["palomar"].ocses_per_pod(0)


class TestScalingTable:
    def test_table_contents(self):
        table = superpod_scaling_table(TRANSCEIVER_TECHS["cwdm4_bidi"])
        assert table["palomar"]["ocses"] == 48
        assert table["next_gen"]["max_chips"] == 292 * 64
        assert table["next_gen"]["exaflops_bf16"] > table["palomar"]["exaflops_bf16"]

    def test_current_pod_fits_palomar(self):
        """The 64-cube superpod uses half of Palomar's port budget."""
        assert OCS_GENERATIONS["palomar"].max_cubes() >= 64
