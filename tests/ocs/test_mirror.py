"""Tests for repro.ocs.mirror."""

import numpy as np
import pytest

from repro.core.errors import CapacityError, ConfigurationError
from repro.ocs.mirror import (
    FABRICATED_MIRRORS,
    QUALIFIED_MIRRORS,
    MemsMirror,
    MirrorArray,
    MirrorState,
    camera_alignment_iterations,
)


@pytest.fixture
def array():
    return MirrorArray.fabricate("die-A", np.random.default_rng(42))


class TestMemsMirror:
    def test_loss_bounds(self):
        best = MemsMirror(0, quality=1.0)
        worst = MemsMirror(1, quality=0.01)
        assert best.loss_db == pytest.approx(0.25)
        assert worst.loss_db < 0.56
        assert worst.loss_db > best.loss_db

    def test_steer_and_park(self):
        m = MemsMirror(0, quality=0.9)
        m.steer(17)
        assert m.state is MirrorState.ACTIVE
        assert m.target_port == 17
        m.park()
        assert m.state is MirrorState.PARKED
        assert m.target_port is None

    def test_failed_mirror_rejects_steer(self):
        m = MemsMirror(0, quality=0.9)
        m.fail()
        with pytest.raises(ConfigurationError):
            m.steer(3)
        with pytest.raises(ConfigurationError):
            m.park()

    def test_bad_quality_rejected(self):
        with pytest.raises(ConfigurationError):
            MemsMirror(0, quality=0.0)
        with pytest.raises(ConfigurationError):
            MemsMirror(0, quality=1.5)


class TestMirrorArray:
    def test_fabrication_counts(self, array):
        assert array.num_ports == QUALIFIED_MIRRORS
        assert len(array.spares) == FABRICATED_MIRRORS - QUALIFIED_MIRRORS

    def test_qualified_are_best(self, array):
        worst_qualified = min(m.quality for m in array.qualified)
        best_spare = max(m.quality for m in array.spares)
        assert worst_qualified >= best_spare

    def test_cannot_overqualify(self):
        with pytest.raises(ConfigurationError):
            MirrorArray.fabricate("x", np.random.default_rng(0), fabricated=10, qualified=11)

    def test_mirror_for_port_range(self, array):
        with pytest.raises(ConfigurationError):
            array.mirror_for_port(QUALIFIED_MIRRORS)
        with pytest.raises(ConfigurationError):
            array.mirror_for_port(-1)

    def test_replace_with_spare(self, array):
        old = array.mirror_for_port(3)
        old.fail()
        assert array.failed_ports == (3,)
        new = array.replace_with_spare(3)
        assert array.mirror_for_port(3) is new
        assert new.state is not MirrorState.FAILED
        assert array.failed_ports == ()
        assert old in array.spares

    def test_spare_exhaustion(self, array):
        for _ in range(len(array.spares)):
            array.mirror_for_port(0).fail()
            array.replace_with_spare(0)
        # All spares now failed mirrors swapped out... fail remaining healthy spares
        for spare in array.spares:
            spare.fail()
        array.mirror_for_port(0).fail()
        with pytest.raises(CapacityError):
            array.replace_with_spare(0)

    def test_loss_profile_shape(self, array):
        profile = array.loss_profile_db()
        assert profile.shape == (QUALIFIED_MIRRORS,)
        assert np.all(profile > 0.2)
        assert np.all(profile < 0.6)

    def test_deterministic_with_seed(self):
        a = MirrorArray.fabricate("a", np.random.default_rng(7))
        b = MirrorArray.fabricate("b", np.random.default_rng(7))
        np.testing.assert_allclose(a.loss_profile_db(), b.loss_profile_db())


class TestCameraAlignment:
    def test_converges(self):
        rng = np.random.default_rng(0)
        iters = camera_alignment_iterations(rng)
        assert 1 <= iters <= 64

    def test_fast_for_small_misalignment(self):
        rng = np.random.default_rng(0)
        iters = camera_alignment_iterations(rng, initial_misalignment_urad=6.0)
        assert iters <= 5

    def test_bounded_by_max(self):
        rng = np.random.default_rng(0)
        iters = camera_alignment_iterations(
            rng, initial_misalignment_urad=1e9, gain=0.01, max_iterations=10
        )
        assert iters == 10
