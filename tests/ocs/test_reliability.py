"""Tests for repro.ocs.reliability."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ocs.reliability import (
    AvailabilityModel,
    FleetReliabilitySimulator,
    k_of_n_availability,
    series_availability,
)


class TestAvailabilityModel:
    def test_availability_formula(self):
        m = AvailabilityModel(mtbf_hours=999.0, mttr_hours=1.0)
        assert m.availability == pytest.approx(0.999)

    def test_from_availability_roundtrip(self):
        m = AvailabilityModel.from_availability(0.999, mttr_hours=4.0)
        assert m.availability == pytest.approx(0.999)

    def test_from_availability_range(self):
        with pytest.raises(ConfigurationError):
            AvailabilityModel.from_availability(1.0)
        with pytest.raises(ConfigurationError):
            AvailabilityModel.from_availability(0.0)

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            AvailabilityModel(0, 1)

    def test_series_and_parallel(self):
        a = AvailabilityModel.from_availability(0.99)
        b = AvailabilityModel.from_availability(0.98)
        assert a.series(b) == pytest.approx(0.99 * 0.98)
        assert a.parallel(b) == pytest.approx(1 - 0.01 * 0.02)


class TestSeriesAvailability:
    def test_fig15a_numbers(self):
        """Fabric availability for 96/48/24 OCSes at 99.9% each (Fig 15a)."""
        assert series_availability([0.999] * 96) == pytest.approx(0.908, abs=0.002)
        assert series_availability([0.999] * 48) == pytest.approx(0.953, abs=0.002)
        assert series_availability([0.999] * 24) == pytest.approx(0.976, abs=0.002)

    def test_empty_is_one(self):
        assert series_availability([]) == 1.0

    def test_range_checked(self):
        with pytest.raises(ConfigurationError):
            series_availability([1.2])


class TestKofN:
    def test_all_needed(self):
        assert k_of_n_availability(2, 2, 0.9) == pytest.approx(0.81)

    def test_any_suffices(self):
        assert k_of_n_availability(1, 2, 0.9) == pytest.approx(1 - 0.01)

    def test_k_zero(self):
        assert k_of_n_availability(0, 5, 0.5) == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            k_of_n_availability(3, 2, 0.9)


class TestFleetSimulator:
    def test_empirical_matches_analytic(self):
        model = AvailabilityModel.from_availability(0.999, mttr_hours=4.0)
        sim = FleetReliabilitySimulator(num_units=50, model=model, seed=1)
        availability, outages = sim.run(horizon_hours=50_000.0)
        assert availability == pytest.approx(0.999, abs=0.001)
        assert len(outages) > 0

    def test_outage_records_well_formed(self):
        model = AvailabilityModel.from_availability(0.99, mttr_hours=8.0)
        sim = FleetReliabilitySimulator(num_units=10, model=model, seed=2)
        _, outages = sim.run(horizon_hours=10_000.0)
        for o in outages:
            assert 0 <= o.start_h <= 10_000
            assert o.duration_h > 0
            assert 0 <= o.unit < 10

    def test_any_down_fraction(self):
        model = AvailabilityModel.from_availability(0.999)
        sim = FleetReliabilitySimulator(num_units=48, model=model)
        assert sim.any_down_fraction(1000) == pytest.approx(1 - 0.999 ** 48)

    def test_bad_horizon(self):
        model = AvailabilityModel.from_availability(0.999)
        sim = FleetReliabilitySimulator(num_units=1, model=model)
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestDowntimeHelpers:
    def test_palomar_field_figure(self):
        from repro.ocs.reliability import downtime_minutes_per_month

        # >99.98% availability is under ~9 minutes/month of downtime.
        assert downtime_minutes_per_month(0.9998) == pytest.approx(8.64)

    def test_fig15_assumption(self):
        from repro.ocs.reliability import downtime_minutes_per_month

        assert downtime_minutes_per_month(0.999) == pytest.approx(43.2)

    def test_roundtrip(self):
        from repro.ocs.reliability import (
            availability_from_downtime,
            downtime_minutes_per_month,
        )

        for a in (0.99, 0.999, 0.9998):
            assert availability_from_downtime(
                downtime_minutes_per_month(a)
            ) == pytest.approx(a)

    def test_validation(self):
        from repro.ocs.reliability import (
            availability_from_downtime,
            downtime_minutes_per_month,
        )

        with pytest.raises(ConfigurationError):
            downtime_minutes_per_month(0.0)
        with pytest.raises(ConfigurationError):
            availability_from_downtime(-1.0)
        with pytest.raises(ConfigurationError):
            availability_from_downtime(50_000.0)
