"""Tests for repro.core.crossconnect, including bijection property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import CrossConnectError, PortInUseError


class TestBasicOperations:
    def test_connect_and_query(self):
        m = CrossConnectMap(8)
        m.connect(0, 5)
        assert m.south_of(0) == 5
        assert m.north_of(5) == 0
        assert m.num_circuits == 1

    def test_disconnect_returns_south(self):
        m = CrossConnectMap(8)
        m.connect(2, 7)
        assert m.disconnect(2) == 7
        assert m.num_circuits == 0
        assert m.south_of(2) is None

    def test_disconnect_missing_raises(self):
        m = CrossConnectMap(4)
        with pytest.raises(CrossConnectError):
            m.disconnect(0)

    def test_double_connect_north_raises(self):
        m = CrossConnectMap(4)
        m.connect(0, 1)
        with pytest.raises(PortInUseError):
            m.connect(0, 2)

    def test_double_connect_south_raises(self):
        m = CrossConnectMap(4)
        m.connect(0, 1)
        with pytest.raises(PortInUseError):
            m.connect(2, 1)

    def test_out_of_range_rejected(self):
        m = CrossConnectMap(4)
        with pytest.raises(CrossConnectError):
            m.connect(4, 0)
        with pytest.raises(CrossConnectError):
            m.connect(0, -1)

    def test_zero_radix_rejected(self):
        with pytest.raises(CrossConnectError):
            CrossConnectMap(0)

    def test_clear(self):
        m = CrossConnectMap.identity(4)
        m.clear()
        assert m.num_circuits == 0

    def test_free_ports(self):
        m = CrossConnectMap(4)
        m.connect(1, 2)
        assert m.free_north == {0, 2, 3}
        assert m.free_south == {0, 1, 3}


class TestConstruction:
    def test_identity(self):
        m = CrossConnectMap.identity(5)
        assert m.is_full_permutation()
        assert m.as_permutation() == (0, 1, 2, 3, 4)

    def test_from_circuits(self):
        m = CrossConnectMap.from_circuits(4, {0: 3, 1: 2})
        assert m.south_of(0) == 3
        assert m.num_circuits == 2

    def test_from_circuits_conflict_raises(self):
        with pytest.raises(PortInUseError):
            CrossConnectMap.from_circuits(4, {0: 3, 1: 3})

    def test_copy_is_independent(self):
        m = CrossConnectMap.from_circuits(4, {0: 1})
        c = m.copy()
        c.connect(2, 3)
        assert m.num_circuits == 1
        assert c.num_circuits == 2

    def test_equality(self):
        a = CrossConnectMap.from_circuits(4, {0: 1, 2: 3})
        b = CrossConnectMap.from_circuits(4, {2: 3, 0: 1})
        assert a == b
        b.disconnect(0)
        assert a != b


class TestPermutation:
    def test_as_permutation_partial_raises(self):
        m = CrossConnectMap(4)
        m.connect(0, 0)
        with pytest.raises(CrossConnectError):
            m.as_permutation()

    def test_compose(self):
        # first: 0->1, 1->0 ; second: 1->2 => composed: 0->2
        a = CrossConnectMap.from_circuits(4, {0: 1, 1: 0})
        b = CrossConnectMap.from_circuits(4, {1: 2})
        c = a.compose(b)
        assert c.south_of(0) == 2
        assert c.south_of(1) is None

    def test_compose_radix_mismatch(self):
        with pytest.raises(CrossConnectError):
            CrossConnectMap(4).compose(CrossConnectMap(5))

    def test_iteration_sorted(self):
        m = CrossConnectMap.from_circuits(4, {3: 0, 1: 2})
        assert list(m) == [(1, 2), (3, 0)]


@st.composite
def circuit_sequences(draw):
    """Random sequences of (connect|disconnect) operations on a radix-16 map."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["connect", "disconnect"]),
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=40,
        )
    )
    return ops


class TestBijectionProperty:
    @given(circuit_sequences())
    @settings(max_examples=200)
    def test_always_bijective(self, ops):
        """The map stays a partial bijection under any operation sequence."""
        m = CrossConnectMap(16)
        for op, north, south in ops:
            try:
                if op == "connect":
                    m.connect(north, south)
                else:
                    m.disconnect(north)
            except CrossConnectError:
                pass  # rejected operations must not corrupt state
            assert m.is_bijective()
            # Inverse consistency both ways:
            for n, s in m.circuits:
                assert m.north_of(s) == n
                assert m.south_of(n) == s

    @given(st.permutations(list(range(12))))
    def test_full_permutation_roundtrip(self, perm):
        m = CrossConnectMap.from_circuits(12, dict(enumerate(perm)))
        assert m.is_full_permutation()
        assert list(m.as_permutation()) == list(perm)
