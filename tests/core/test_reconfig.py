"""Tests for repro.core.reconfig."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import CrossConnectError
from repro.core.reconfig import ReconfigStats, plan_reconfiguration


def _map(radix, circuits):
    return CrossConnectMap.from_circuits(radix, circuits)


class TestPlanning:
    def test_noop_plan(self):
        m = _map(8, {0: 1, 2: 3})
        plan = plan_reconfiguration(m, m.copy())
        assert plan.is_noop
        assert plan.duration_ms() == 0.0
        assert plan.unchanged == frozenset({(0, 1), (2, 3)})

    def test_pure_makes(self):
        plan = plan_reconfiguration(_map(8, {}), _map(8, {0: 1}))
        assert plan.makes == frozenset({(0, 1)})
        assert not plan.breaks

    def test_pure_breaks(self):
        plan = plan_reconfiguration(_map(8, {0: 1}), _map(8, {}))
        assert plan.breaks == frozenset({(0, 1)})
        assert not plan.makes

    def test_hitless_shared_circuits_untouched(self):
        current = _map(8, {0: 1, 2: 3, 4: 5})
        target = _map(8, {0: 1, 2: 6, 4: 5})
        plan = plan_reconfiguration(current, target)
        assert plan.unchanged == frozenset({(0, 1), (4, 5)})
        assert plan.breaks == frozenset({(2, 3)})
        assert plan.makes == frozenset({(2, 6)})
        assert plan.num_disturbed == 2

    def test_radix_mismatch(self):
        with pytest.raises(CrossConnectError):
            plan_reconfiguration(CrossConnectMap(4), CrossConnectMap(8))

    def test_duration_single_batch(self):
        plan = plan_reconfiguration(_map(8, {}), _map(8, {0: 1, 2: 3}))
        # One make batch only: overhead + one settle time.
        assert plan.duration_ms(switch_time_ms=10, control_overhead_ms=5) == 15.0

    def test_duration_two_batches(self):
        plan = plan_reconfiguration(_map(8, {0: 1}), _map(8, {2: 3}))
        assert plan.duration_ms(switch_time_ms=10, control_overhead_ms=5) == 25.0

    def test_duration_independent_of_circuit_count(self):
        small = plan_reconfiguration(_map(64, {}), _map(64, {0: 0}))
        big = plan_reconfiguration(_map(64, {}), _map(64, {i: i for i in range(64)}))
        assert small.duration_ms() == big.duration_ms()


class TestApply:
    def test_apply_reaches_target(self):
        current = _map(8, {0: 1, 2: 3})
        target = _map(8, {0: 1, 2: 6, 7: 3})
        plan = plan_reconfiguration(current, target)
        plan.apply(current)
        assert current == target

    def test_apply_radix_mismatch(self):
        plan = plan_reconfiguration(_map(4, {}), _map(4, {0: 1}))
        with pytest.raises(CrossConnectError):
            plan.apply(CrossConnectMap(8))

    def test_apply_detects_stale_state(self):
        current = _map(8, {0: 1})
        target = _map(8, {0: 2})
        plan = plan_reconfiguration(current, target)
        # Mutate behind the plan's back.
        current.disconnect(0)
        current.connect(0, 3)
        with pytest.raises(CrossConnectError):
            plan.apply(current)

    @given(
        st.dictionaries(st.integers(0, 11), st.integers(0, 11), max_size=12),
        st.dictionaries(st.integers(0, 11), st.integers(0, 11), max_size=12),
    )
    @settings(max_examples=100)
    def test_apply_property(self, cur_dict, tgt_dict):
        """plan(current, target).apply(current) always yields target."""

        def dedup(d):
            out, used = {}, set()
            for n, s in sorted(d.items()):
                if s not in used:
                    out[n] = s
                    used.add(s)
            return out

        current = _map(12, dedup(cur_dict))
        target = _map(12, dedup(tgt_dict))
        plan = plan_reconfiguration(current, target)
        plan.apply(current)
        assert current == target


class TestStats:
    def test_record_accumulates(self):
        stats = ReconfigStats()
        plan = plan_reconfiguration(_map(8, {0: 1, 4: 4}), _map(8, {0: 2, 4: 4}))
        stats.record(plan, plan.duration_ms())
        assert stats.transactions == 1
        assert stats.circuits_broken == 1
        assert stats.circuits_made == 1
        assert stats.circuits_preserved == 1
        assert stats.mean_duration_ms == plan.duration_ms()

    def test_hitless_fraction(self):
        stats = ReconfigStats()
        plan = plan_reconfiguration(_map(8, {0: 1, 4: 4, 5: 5}), _map(8, {0: 2, 4: 4, 5: 5}))
        stats.record(plan, 0.0)
        assert stats.hitless_fraction == pytest.approx(2 / 4)

    def test_empty_stats(self):
        stats = ReconfigStats()
        assert stats.mean_duration_ms == 0.0
        assert stats.hitless_fraction == 1.0
