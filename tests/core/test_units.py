"""Tests for repro.core.units."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units


class TestDbConversions:
    def test_db_to_linear_zero(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_3db(self):
        assert units.db_to_linear(3.0) == pytest.approx(1.9953, rel=1e-3)

    def test_db_to_linear_negative(self):
        assert units.db_to_linear(-10.0) == pytest.approx(0.1)

    def test_linear_to_db(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_array_roundtrip(self):
        x = np.array([-30.0, -3.0, 0.0, 3.0, 10.0])
        back = units.linear_to_db(units.db_to_linear(x))
        np.testing.assert_allclose(back, x, rtol=1e-12)

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_roundtrip_property(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestPowerConversions:
    def test_dbm_zero_is_one_mw(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_mw_to_dbm(self):
        assert units.mw_to_dbm(2.0) == pytest.approx(3.0103, rel=1e-4)

    def test_dbm_to_w(self):
        assert units.dbm_to_w(30.0) == pytest.approx(1.0)

    def test_w_to_dbm(self):
        assert units.w_to_dbm(0.001) == pytest.approx(0.0, abs=1e-9)

    def test_sum_powers_equal(self):
        # Two equal powers sum to +3 dB.
        assert units.sum_powers_dbm([-10.0, -10.0]) == pytest.approx(-6.9897, rel=1e-4)

    def test_sum_powers_single(self):
        assert units.sum_powers_dbm([-5.0]) == pytest.approx(-5.0)

    def test_sum_powers_empty_raises(self):
        with pytest.raises(ValueError):
            units.sum_powers_dbm([])

    @given(st.lists(st.floats(min_value=-40, max_value=10), min_size=1, max_size=8))
    def test_sum_at_least_max(self, powers):
        # Total power can never be below the strongest contributor.
        assert units.sum_powers_dbm(powers) >= max(powers) - 1e-9


class TestWavelength:
    def test_1310nm_is_about_229thz(self):
        assert units.wavelength_nm_to_freq_thz(1310.0) == pytest.approx(228.85, rel=1e-3)

    def test_roundtrip(self):
        freq = units.wavelength_nm_to_freq_thz(1271.0)
        assert units.freq_thz_to_wavelength_nm(freq) == pytest.approx(1271.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wavelength_nm_to_freq_thz(0)
        with pytest.raises(ValueError):
            units.freq_thz_to_wavelength_nm(-1)


class TestFiberLatency:
    def test_one_km_about_4_9_us(self):
        assert units.fiber_latency_ns(1000.0) == pytest.approx(4896, rel=1e-2)

    def test_zero_length(self):
        assert units.fiber_latency_ns(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.fiber_latency_ns(-1.0)


class TestQBer:
    def test_q_of_common_ber(self):
        # BER 2e-4 (KP4 threshold) corresponds to Q about 3.54.
        assert units.q_from_ber(2e-4) == pytest.approx(3.54, abs=0.01)

    def test_roundtrip(self):
        for ber in (1e-3, 2e-4, 1e-6, 1e-9):
            assert units.ber_from_q(units.q_from_ber(ber)) == pytest.approx(ber, rel=1e-6)

    def test_monotonic(self):
        assert units.q_from_ber(1e-9) > units.q_from_ber(1e-3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            units.q_from_ber(0.7)
        with pytest.raises(ValueError):
            units.q_from_ber(0.0)
