"""Tests for repro.core.topology."""

import pytest

from repro.core.errors import TopologyError
from repro.core.topology import Direction, Endpoint, Link, Port


class TestPort:
    def test_str(self):
        assert str(Port("cube-00", 3)) == "cube-00:3/bidi"

    def test_direction(self):
        p = Port("x", 0, Direction.TX)
        assert p.direction is Direction.TX

    def test_negative_index_rejected(self):
        with pytest.raises(TopologyError):
            Port("x", -1)

    def test_ordering(self):
        assert Port("a", 0) < Port("a", 1) < Port("b", 0)


class TestEndpoint:
    def test_port_creation(self):
        ep = Endpoint("cube-00", num_ports=4)
        assert ep.port(2) == Port("cube-00", 2)

    def test_port_out_of_range(self):
        ep = Endpoint("e", num_ports=2)
        with pytest.raises(TopologyError):
            ep.port(2)

    def test_zero_ports_rejected(self):
        with pytest.raises(TopologyError):
            Endpoint("e", num_ports=0)

    def test_attach_detach(self):
        ep = Endpoint("e", num_ports=3)
        ep.attach(1, "ocs-0:N5")
        assert ep.attachment(1) == "ocs-0:N5"
        assert ep.free_ports == (0, 2)
        ep.detach(1)
        assert ep.free_ports == (0, 1, 2)

    def test_double_attach_rejected(self):
        ep = Endpoint("e", num_ports=2)
        ep.attach(0, "a")
        with pytest.raises(TopologyError):
            ep.attach(0, "b")

    def test_detach_unattached_rejected(self):
        ep = Endpoint("e", num_ports=2)
        with pytest.raises(TopologyError):
            ep.detach(0)

    def test_iter_yields_all_ports(self):
        ep = Endpoint("e", num_ports=3)
        assert [p.index for p in ep] == [0, 1, 2]


class TestLink:
    def test_other(self):
        a, b = Port("x", 0), Port("y", 0)
        link = Link(a, b)
        assert link.other(a) == b
        assert link.other(b) == a

    def test_other_unknown_port(self):
        link = Link(Port("x", 0), Port("y", 0))
        with pytest.raises(TopologyError):
            link.other(Port("z", 0))

    def test_self_loop_rejected(self):
        p = Port("x", 0)
        with pytest.raises(TopologyError):
            Link(p, p)

    def test_bad_rate_rejected(self):
        with pytest.raises(TopologyError):
            Link(Port("x", 0), Port("y", 0), rate_gbps=0)

    def test_negative_length_rejected(self):
        with pytest.raises(TopologyError):
            Link(Port("x", 0), Port("y", 0), length_m=-5)

    def test_str(self):
        link = Link(Port("x", 0), Port("y", 1), rate_gbps=400)
        assert "400G" in str(link)
