"""Tests for repro.core.ids."""

import pytest

from repro.core.ids import BlockId, CubeId, JobId, LinkId, OcsId, PortId, SliceId


class TestOcsId:
    def test_str(self):
        assert str(OcsId(7)) == "ocs-7"

    def test_ordering(self):
        assert OcsId(1) < OcsId(2)

    def test_hashable(self):
        assert len({OcsId(0), OcsId(0), OcsId(1)}) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OcsId(-1)


class TestPortId:
    def test_str(self):
        assert str(PortId("N", 3)) == "N3"

    def test_bad_side(self):
        with pytest.raises(ValueError):
            PortId("X", 0)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            PortId("S", -2)

    def test_equality(self):
        assert PortId("N", 1) == PortId("N", 1)
        assert PortId("N", 1) != PortId("S", 1)


class TestCubeId:
    def test_str_padding(self):
        assert str(CubeId(3)) == "cube-03"
        assert str(CubeId(63)) == "cube-63"

    def test_sortable(self):
        ids = [CubeId(5), CubeId(1), CubeId(3)]
        assert sorted(ids) == [CubeId(1), CubeId(3), CubeId(5)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CubeId(-4)


class TestOtherIds:
    def test_block_str(self):
        assert str(BlockId(12)) == "ab-12"

    def test_block_negative(self):
        with pytest.raises(ValueError):
            BlockId(-1)

    def test_job_and_slice(self):
        assert str(JobId("llm0-train")) == "llm0-train"
        assert str(SliceId("slice-a")) == "slice-a"
        assert str(LinkId("l1")) == "l1"

    def test_distinct_types_not_equal(self):
        assert JobId("x") != SliceId("x")
