"""Tests for repro.core.fabric_manager."""

import pytest

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import ConfigurationError, CrossConnectError, TopologyError
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId


@pytest.fixture
def mgr():
    m = FabricManager()
    m.add_switch(OcsId(0), SimpleSwitch(8))
    m.add_switch(OcsId(1), SimpleSwitch(8))
    return m


class TestInventory:
    def test_add_and_get(self, mgr):
        assert mgr.switch(OcsId(0)).radix == 8
        assert mgr.switch_ids == (OcsId(0), OcsId(1))

    def test_duplicate_rejected(self, mgr):
        with pytest.raises(ConfigurationError):
            mgr.add_switch(OcsId(0), SimpleSwitch(8))

    def test_unknown_switch(self, mgr):
        with pytest.raises(TopologyError):
            mgr.switch(OcsId(9))


class TestLogicalLinks:
    def test_establish_and_lookup(self, mgr):
        link = mgr.establish(LinkId("a-b"), OcsId(0), north=1, south=2)
        assert mgr.link(LinkId("a-b")) == link
        assert mgr.switch(OcsId(0)).state.south_of(1) == 2
        assert mgr.num_circuits == 1

    def test_duplicate_link_rejected(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 0)
        with pytest.raises(ConfigurationError):
            mgr.establish(LinkId("x"), OcsId(1), 0, 0)

    def test_teardown(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        mgr.teardown(LinkId("x"))
        assert mgr.num_circuits == 0
        with pytest.raises(TopologyError):
            mgr.link(LinkId("x"))

    def test_teardown_unknown(self, mgr):
        with pytest.raises(TopologyError):
            mgr.teardown(LinkId("nope"))

    def test_links_sorted(self, mgr):
        mgr.establish(LinkId("b"), OcsId(0), 0, 0)
        mgr.establish(LinkId("a"), OcsId(0), 1, 1)
        assert [str(l.link_id) for l in mgr.links] == ["a", "b"]

    def test_verify_links_clean(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        assert mgr.verify_links() == ()

    def test_verify_links_detects_missing(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        mgr.switch(OcsId(0)).state.disconnect(0)  # out-of-band break
        assert mgr.verify_links() == (LinkId("x"),)


class TestTransactions:
    def test_reconfigure_applies_targets(self, mgr):
        target = CrossConnectMap.from_circuits(8, {0: 1, 2: 3})
        duration = mgr.reconfigure({OcsId(0): target})
        assert mgr.switch(OcsId(0)).state == target
        assert duration > 0

    def test_reconfigure_parallel_duration_is_max(self, mgr):
        t0 = CrossConnectMap.from_circuits(8, {0: 1})
        t1 = CrossConnectMap.from_circuits(8, {0: 1, 2: 3})
        duration = mgr.reconfigure({OcsId(0): t0, OcsId(1): t1})
        plans = mgr.plan({OcsId(0): t0, OcsId(1): t1})
        # After application both plans are noops; duration returned earlier
        # equals the max of the individual (equal-batch) plans.
        assert all(p.is_noop for p in plans.values())
        assert duration == pytest.approx(15.0)

    def test_reconfigure_radix_mismatch_aborts(self, mgr):
        bad = CrossConnectMap(16)
        with pytest.raises(CrossConnectError):
            mgr.reconfigure({OcsId(0): bad})
        # No partial application.
        assert mgr.num_circuits == 0

    def test_reconfigure_drops_stale_links(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        target = CrossConnectMap.from_circuits(8, {1: 1})
        mgr.reconfigure({OcsId(0): target})
        with pytest.raises(TopologyError):
            mgr.link(LinkId("x"))

    def test_reconfigure_preserves_matching_links(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        target = CrossConnectMap.from_circuits(8, {0: 5, 1: 1})
        mgr.reconfigure({OcsId(0): target})
        assert mgr.link(LinkId("x")).south == 5

    def test_stats_recorded(self, mgr):
        mgr.reconfigure({OcsId(0): CrossConnectMap.from_circuits(8, {0: 1})})
        assert mgr.stats.transactions == 1
        assert mgr.stats.circuits_made == 1

    def test_snapshot_is_deep(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        snap = mgr.snapshot()
        snap[OcsId(0)].disconnect(0)
        assert mgr.switch(OcsId(0)).state.south_of(0) == 5
