"""Tests for repro.core.fabric_manager."""

import pytest

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import (
    ConfigurationError,
    CrossConnectError,
    PartialTransactionError,
    TopologyError,
)
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId


class FlakySwitch(SimpleSwitch):
    """A switch whose apply_plan raises on command (programming fault)."""

    def __init__(self, radix: int):
        super().__init__(radix)
        self.fail_next = False

    def apply_plan(self, plan):
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("injected programming failure")
        return super().apply_plan(plan)


@pytest.fixture
def mgr():
    m = FabricManager()
    m.add_switch(OcsId(0), SimpleSwitch(8))
    m.add_switch(OcsId(1), SimpleSwitch(8))
    return m


class TestInventory:
    def test_add_and_get(self, mgr):
        assert mgr.switch(OcsId(0)).radix == 8
        assert mgr.switch_ids == (OcsId(0), OcsId(1))

    def test_duplicate_rejected(self, mgr):
        with pytest.raises(ConfigurationError):
            mgr.add_switch(OcsId(0), SimpleSwitch(8))

    def test_unknown_switch(self, mgr):
        with pytest.raises(TopologyError):
            mgr.switch(OcsId(9))


class TestLogicalLinks:
    def test_establish_and_lookup(self, mgr):
        link = mgr.establish(LinkId("a-b"), OcsId(0), north=1, south=2)
        assert mgr.link(LinkId("a-b")) == link
        assert mgr.switch(OcsId(0)).state.south_of(1) == 2
        assert mgr.num_circuits == 1

    def test_duplicate_link_rejected(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 0)
        with pytest.raises(ConfigurationError):
            mgr.establish(LinkId("x"), OcsId(1), 0, 0)

    def test_teardown(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        mgr.teardown(LinkId("x"))
        assert mgr.num_circuits == 0
        with pytest.raises(TopologyError):
            mgr.link(LinkId("x"))

    def test_teardown_unknown(self, mgr):
        with pytest.raises(TopologyError):
            mgr.teardown(LinkId("nope"))

    def test_links_sorted(self, mgr):
        mgr.establish(LinkId("b"), OcsId(0), 0, 0)
        mgr.establish(LinkId("a"), OcsId(0), 1, 1)
        assert [str(l.link_id) for l in mgr.links] == ["a", "b"]

    def test_verify_links_clean(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        assert mgr.verify_links() == ()

    def test_verify_links_detects_missing(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        mgr.switch(OcsId(0)).state.disconnect(0)  # out-of-band break
        assert mgr.verify_links() == (LinkId("x"),)


class TestTransactions:
    def test_reconfigure_applies_targets(self, mgr):
        target = CrossConnectMap.from_circuits(8, {0: 1, 2: 3})
        duration = mgr.reconfigure({OcsId(0): target})
        assert mgr.switch(OcsId(0)).state == target
        assert duration > 0

    def test_reconfigure_parallel_duration_is_max(self, mgr):
        t0 = CrossConnectMap.from_circuits(8, {0: 1})
        t1 = CrossConnectMap.from_circuits(8, {0: 1, 2: 3})
        duration = mgr.reconfigure({OcsId(0): t0, OcsId(1): t1})
        plans = mgr.plan({OcsId(0): t0, OcsId(1): t1})
        # After application both plans are noops; duration returned earlier
        # equals the max of the individual (equal-batch) plans.
        assert all(p.is_noop for p in plans.values())
        assert duration == pytest.approx(15.0)

    def test_reconfigure_radix_mismatch_aborts(self, mgr):
        bad = CrossConnectMap(16)
        with pytest.raises(CrossConnectError):
            mgr.reconfigure({OcsId(0): bad})
        # No partial application.
        assert mgr.num_circuits == 0

    def test_reconfigure_drops_stale_links(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        target = CrossConnectMap.from_circuits(8, {1: 1})
        mgr.reconfigure({OcsId(0): target})
        with pytest.raises(TopologyError):
            mgr.link(LinkId("x"))

    def test_reconfigure_preserves_matching_links(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        target = CrossConnectMap.from_circuits(8, {0: 5, 1: 1})
        mgr.reconfigure({OcsId(0): target})
        assert mgr.link(LinkId("x")).south == 5

    def test_stats_recorded(self, mgr):
        mgr.reconfigure({OcsId(0): CrossConnectMap.from_circuits(8, {0: 1})})
        assert mgr.stats.transactions == 1
        assert mgr.stats.circuits_made == 1

    def test_snapshot_is_deep(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        snap = mgr.snapshot()
        snap[OcsId(0)].disconnect(0)
        assert mgr.switch(OcsId(0)).state.south_of(0) == 5


class TestPartialTransactionRollback:
    @pytest.fixture
    def flaky_mgr(self):
        m = FabricManager()
        for i in range(3):
            m.add_switch(OcsId(i), FlakySwitch(8))
            m.establish(LinkId(f"l{i}"), OcsId(i), 0, 4)
        return m

    def test_failure_on_second_switch_restores_first(self, flaky_mgr):
        targets = {
            OcsId(i): CrossConnectMap.from_circuits(8, {0: 5}) for i in range(3)
        }
        flaky_mgr.switch(OcsId(1)).fail_next = True
        with pytest.raises(PartialTransactionError) as exc:
            flaky_mgr.reconfigure(targets)
        err = exc.value
        assert err.ocs_id == OcsId(1)
        assert err.applied == (OcsId(0),)
        assert err.unapplied == (OcsId(1), OcsId(2))
        assert err.rolled_back
        # Every switch is back at its pre-transaction state: no partial
        # application survives, and the link table still verifies clean.
        for i in range(3):
            assert flaky_mgr.switch(OcsId(i)).state.south_of(0) == 4
        assert flaky_mgr.verify_links() == ()

    def test_failure_on_first_switch_rolls_nothing(self, flaky_mgr):
        targets = {OcsId(0): CrossConnectMap.from_circuits(8, {0: 5})}
        flaky_mgr.switch(OcsId(0)).fail_next = True
        with pytest.raises(PartialTransactionError) as exc:
            flaky_mgr.reconfigure(targets)
        assert exc.value.applied == ()
        assert exc.value.rolled_back  # vacuously restored
        assert flaky_mgr.switch(OcsId(0)).state.south_of(0) == 4

    def test_chains_original_cause(self, flaky_mgr):
        flaky_mgr.switch(OcsId(0)).fail_next = True
        with pytest.raises(PartialTransactionError) as exc:
            flaky_mgr.reconfigure({OcsId(0): CrossConnectMap.from_circuits(8, {0: 5})})
        assert isinstance(exc.value.__cause__, RuntimeError)


class TestTeardownValidatesFirst:
    def test_drifted_circuit_keeps_record(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        state = mgr.switch(OcsId(0)).state
        state.disconnect(0)
        state.connect(0, 6)  # out-of-band drift to the wrong peer
        with pytest.raises(CrossConnectError):
            mgr.teardown(LinkId("x"))
        # The record survives for the reconciler, and the wrong-peer
        # circuit was not torn down blindly.
        assert mgr.link(LinkId("x")).south == 5
        assert state.south_of(0) == 6
        assert mgr.verify_links() == (LinkId("x"),)

    def test_missing_circuit_keeps_record(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        mgr.switch(OcsId(0)).state.disconnect(0)
        with pytest.raises(CrossConnectError):
            mgr.teardown(LinkId("x"))
        assert mgr.link(LinkId("x")).south == 5


class TestDurability:
    def test_checkpoint_restore_roundtrip(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        mgr.establish(LinkId("y"), OcsId(1), 2, 3)
        snapshot = mgr.checkpoint()
        digest = mgr.state_digest()
        fresh = FabricManager()
        fresh.add_switch(OcsId(0), SimpleSwitch(8))
        fresh.add_switch(OcsId(1), SimpleSwitch(8))
        fresh.restore(snapshot)
        assert fresh.state_digest() == digest
        assert fresh.link(LinkId("y")).north == 2
        assert fresh.verify_links() == ()

    def test_restore_rejects_radix_mismatch(self, mgr):
        snapshot = mgr.checkpoint()
        bad = FabricManager()
        bad.add_switch(OcsId(0), SimpleSwitch(4))
        bad.add_switch(OcsId(1), SimpleSwitch(4))
        with pytest.raises(ConfigurationError):
            bad.restore(snapshot)

    def test_digest_tracks_links_not_just_hardware(self, mgr):
        mgr.establish(LinkId("x"), OcsId(0), 0, 5)
        with_link = mgr.state_digest()
        other = FabricManager()
        other.add_switch(OcsId(0), SimpleSwitch(8))
        other.add_switch(OcsId(1), SimpleSwitch(8))
        other.switch(OcsId(0)).state.connect(0, 5)  # same circuit, no link
        assert other.state_digest() != with_link
