"""Tests for repro.parallel.cache: the content-addressed result store."""

import json

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.obs import Observability
from repro.parallel.cache import CACHE_SCHEMA_VERSION, ResultCache


class TestKeys:
    def test_key_depends_on_tag_and_spec(self):
        assert ResultCache.key("a", {"x": 1}) != ResultCache.key("b", {"x": 1})
        assert ResultCache.key("a", {"x": 1}) != ResultCache.key("a", {"x": 2})

    def test_key_is_stable(self):
        assert ResultCache.key("t", {"x": 1}) == ResultCache.key("t", {"x": 1})

    def test_empty_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache.key("", {"x": 1})


class TestInMemory:
    def test_miss_then_hit(self):
        cache = ResultCache.in_memory()
        key = cache.key("t", {"x": 1})
        hit, value = cache.get(key)
        assert not hit and value is None
        cache.put(key, [1.0, 2.0])
        hit, value = cache.get(key)
        assert hit and value == [1.0, 2.0]
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_pickle_round_trip_exact(self):
        cache = ResultCache.in_memory()
        payload = {"arr": np.linspace(0, 1, 7), "f": 0.1 + 0.2}
        key = cache.key("t", {"p": 1})
        cache.put(key, payload)
        _, value = cache.get(key)
        assert value["arr"].tobytes() == payload["arr"].tobytes()
        assert value["f"].hex() == payload["f"].hex()

    def test_invalidate_by_tag(self):
        cache = ResultCache.in_memory()
        k1, k2 = cache.key("a", 1), cache.key("b", 2)
        cache.put(k1, "one", tag="a")
        cache.put(k2, "two", tag="b")
        assert cache.invalidate("a") == 1
        assert not cache.get(k1)[0]
        assert cache.get(k2)[0]
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache.in_memory()
        cache.put(cache.key("t", 1), "v", tag="t")
        assert cache.clear() == 1
        assert len(cache) == 0


class TestOnDisk:
    def test_layout_and_reload(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("t", {"x": 1})
        cache.put(key, 3.14, tag="t")
        assert (tmp_path / "objects" / f"{key}.pkl").exists()
        manifest = (tmp_path / "manifest.jsonl").read_text().splitlines()
        record = json.loads(manifest[0])
        assert record["key"] == key
        assert record["tag"] == "t"
        assert record["version"] == CACHE_SCHEMA_VERSION

        reloaded = ResultCache(tmp_path)
        hit, value = reloaded.get(key)
        assert hit and value == 3.14
        assert len(reloaded) == 1

    def test_invalidate_rewrites_manifest(self, tmp_path):
        cache = ResultCache(tmp_path)
        ka, kb = cache.key("a", 1), cache.key("b", 2)
        cache.put(ka, "one", tag="a")
        cache.put(kb, "two", tag="b")
        assert cache.invalidate("a") == 1
        assert not (tmp_path / "objects" / f"{ka}.pkl").exists()
        reloaded = ResultCache(tmp_path)
        assert [r["tag"] for r in reloaded.entries()] == ["b"]
        assert not reloaded.get(ka)[0]
        assert reloaded.get(kb)[0]

    def test_entries_filter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("a", 1), 1, tag="a")
        cache.put(cache.key("b", 2), 2, tag="b")
        assert len(cache.entries("a")) == 1
        assert len(cache.entries()) == 2

    def test_manifest_byte_identical_across_runs(self, tmp_path):
        """Same stores => same manifest bytes: the default ``created_s``
        stamp is the store ordinal, not wall-clock."""

        def populate(root):
            cache = ResultCache(root)
            for k in range(3):
                cache.put(cache.key("sweep", {"x": k}), float(k), tag="sweep")
            return (root / "manifest.jsonl").read_bytes()

        a = populate(tmp_path / "run_a")
        b = populate(tmp_path / "run_b")
        assert a == b
        stamps = [
            json.loads(line)["created_s"] for line in a.decode().splitlines()
        ]
        assert stamps == [0.0, 1.0, 2.0]

    def test_injected_clock_stamps_wall_time(self, tmp_path):
        ticks = iter([100.0004, 200.0])
        cache = ResultCache(tmp_path, now_fn=lambda: next(ticks))
        cache.put(cache.key("t", 1), 1, tag="t")
        cache.put(cache.key("t", 2), 2, tag="t")
        assert [r["created_s"] for r in cache.entries()] == [100.0, 200.0]


class TestObservability:
    def test_counters_land(self):
        obs = Observability.sim()
        cache = ResultCache.in_memory(obs=obs)
        key = cache.key("t", {"x": 1})
        cache.get(key, tag="t")
        cache.put(key, 1, tag="t")
        cache.get(key, tag="t")
        reg = obs.metrics
        assert reg.counter("sweep.cache.misses", tag="t").value == 1
        assert reg.counter("sweep.cache.hits", tag="t").value == 1
        assert reg.counter("sweep.cache.stores", tag="t").value == 1
