"""Tests for repro.parallel.canon: the canonical encoding and digests."""

from dataclasses import dataclass
from enum import Enum

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.parallel.canon import canonical_bytes, fn_identity, spec_digest


@dataclass(frozen=True)
class Spec:
    x: float
    n: int


class Color(Enum):
    RED = 1
    BLUE = 2


class TestCanonicalBytes:
    def test_deterministic(self):
        spec = {"a": 1, "b": [1.5, None, True], "c": (np.float64(2.0),)}
        assert canonical_bytes(spec) == canonical_bytes(spec)

    def test_dict_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_type_tags_distinguish(self):
        """1, 1.0, True, and "1" must not collide."""
        encodings = {
            canonical_bytes(1),
            canonical_bytes(1.0),
            canonical_bytes(True),
            canonical_bytes("1"),
        }
        assert len(encodings) == 4

    def test_float_bit_exact(self):
        a = canonical_bytes(0.1 + 0.2)
        b = canonical_bytes(0.3)
        assert a != b  # 0.1 + 0.2 != 0.3 bitwise; hex encoding preserves it

    def test_ndarray_includes_dtype_and_shape(self):
        x = np.zeros(4, dtype=np.float64)
        assert canonical_bytes(x) != canonical_bytes(x.astype(np.float32))
        assert canonical_bytes(x) != canonical_bytes(x.reshape(2, 2))

    def test_dataclass_qualname_scoped(self):
        assert b"Spec" in canonical_bytes(Spec(1.0, 2))

    def test_enum(self):
        assert canonical_bytes(Color.RED) != canonical_bytes(Color.BLUE)

    def test_seed_sequence_identity(self):
        root = np.random.SeedSequence(42)
        a, b = root.spawn(2)
        assert canonical_bytes(a) != canonical_bytes(b)
        again = np.random.SeedSequence(42).spawn(2)[0]
        assert canonical_bytes(a) == canonical_bytes(again)

    def test_unencodable_raises(self):
        with pytest.raises(ConfigurationError):
            canonical_bytes(object())


class TestDigests:
    def test_spec_digest_is_hex_sha256(self):
        d = spec_digest({"k": 1})
        assert len(d) == 64
        int(d, 16)  # parses as hex

    def test_fn_identity(self):
        assert fn_identity(canonical_bytes).endswith("canonical_bytes")
        assert "repro.parallel.canon" in fn_identity(canonical_bytes)
