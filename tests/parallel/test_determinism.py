"""Property suite: pmap is bit-identical for any worker count/chunking.

The tentpole guarantee -- ``SweepEngine.pmap`` returns byte-identical
results for any worker count and any chunk size, with ``pmap_serial``
as the oracle -- checked with Hypothesis over random task lists, seeds,
chunk sizes, and worker counts {1, 2, 4}, and over the real sweep
surfaces.  Equality is on pickled bytes per element (floats compare
bit-exact; no tolerance anywhere).
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ResultCache, SweepEngine

WORKER_COUNTS = (1, 2, 4)


def _draw_stats(task, seed):
    """Seeded worker: summary stats of the task's own stream."""
    rng = np.random.default_rng(seed)
    x = rng.random(int(task) % 17 + 3)
    return {"task": task, "mean": float(x.mean()), "first": float(x[0])}


def _collatz_len(task):
    """Unseeded worker: deterministic, uneven per-task cost."""
    n = int(task) + 1
    steps = 0
    while n != 1 and steps < 1000:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
    return steps


def _dumps(results):
    return [pickle.dumps(r) for r in results]


class TestPmapProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        num_tasks=st.integers(min_value=0, max_value=25),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_seeded_pmap_matches_oracle(self, num_tasks, seed, chunk_size, workers):
        tasks = list(range(num_tasks))
        ref = SweepEngine(workers=1).pmap_serial(_draw_stats, tasks, seed=seed)
        engine = SweepEngine(workers=workers, chunk_size=chunk_size)
        got = engine.pmap(_draw_stats, tasks, seed=seed)
        assert _dumps(got) == _dumps(ref)

    @settings(max_examples=20, deadline=None)
    @given(
        tasks=st.lists(st.integers(min_value=0, max_value=500), max_size=20),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=7)),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_unseeded_pmap_matches_oracle(self, tasks, chunk_size, workers):
        ref = SweepEngine(workers=1).pmap_serial(_collatz_len, tasks)
        engine = SweepEngine(workers=workers, chunk_size=chunk_size)
        assert _dumps(engine.pmap(_collatz_len, tasks)) == _dumps(ref)

    @settings(max_examples=15, deadline=None)
    @given(
        num_tasks=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_cache_round_trip_exact(self, num_tasks, seed, workers):
        """A warm cached run returns byte-identical values, computing 0."""
        tasks = list(range(num_tasks))
        cache = ResultCache.in_memory()
        cold_engine = SweepEngine(workers=workers, chunk_size=1, cache=cache)
        cold = cold_engine.pmap(_draw_stats, tasks, seed=seed, cache_tag="p")
        warm_engine = SweepEngine(workers=1, cache=cache)
        warm = warm_engine.pmap(_draw_stats, tasks, seed=seed, cache_tag="p")
        assert warm_engine.last_run.computed == 0
        assert warm_engine.last_run.cache_hits == num_tasks
        assert _dumps(warm) == _dumps(cold)

    @settings(max_examples=10, deadline=None)
    @given(
        prefix=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_grid_extension_reuses_prefix(self, prefix, extra, seed):
        """Positional seed splitting: growing a task list keeps the
        cached prefix valid and bit-identical."""
        cache = ResultCache.in_memory()
        engine = SweepEngine(workers=1, cache=cache)
        small = engine.pmap(
            _draw_stats, list(range(prefix)), seed=seed, cache_tag="p"
        )
        large = engine.pmap(
            _draw_stats, list(range(prefix + extra)), seed=seed, cache_tag="p"
        )
        assert engine.last_run.cache_hits == prefix
        assert engine.last_run.computed == extra
        assert _dumps(large[:prefix]) == _dumps(small)


class TestSurfaceDeterminism:
    """The real sweep surfaces, pinned to their serial oracles."""

    def test_optics_grid(self):
        from repro.optics import Pam4LinkModel
        from repro.optics.mc_sweep import (
            monte_carlo_ber_grid,
            monte_carlo_ber_grid_serial,
        )

        model = Pam4LinkModel()
        powers = np.linspace(-12.0, -7.0, 5)
        ref = monte_carlo_ber_grid_serial(model, powers, num_symbols=5000, seed=3)
        for workers in WORKER_COUNTS:
            got = monte_carlo_ber_grid(
                model, powers, num_symbols=5000, seed=3,
                engine=SweepEngine(workers=workers, chunk_size=1),
            )
            assert got.tobytes() == ref.tobytes()

    def test_chaos_ensemble(self):
        from repro.faults import chaos_ensemble, chaos_ensemble_serial, ensemble_digest
        from repro.faults.chaos import SMOKE_KWARGS

        kwargs = SMOKE_KWARGS["repair_race"]
        seeds = [0, 1, 2]
        ref = ensemble_digest(
            chaos_ensemble_serial("repair_race", seeds, kwargs=kwargs)
        )
        for workers in WORKER_COUNTS:
            got = chaos_ensemble(
                "repair_race", seeds, kwargs=kwargs,
                engine=SweepEngine(workers=workers, chunk_size=1),
            )
            assert ensemble_digest(got) == ref

    def test_scheduler_sweep(self):
        from repro.scheduler import (
            sweep_points,
            utilization_sweep,
            utilization_sweep_serial,
        )

        points = sweep_points([1 / 270.0], num_jobs=60, warmup_s=2000.0)
        ref = utilization_sweep_serial(points)
        for workers in WORKER_COUNTS:
            got = utilization_sweep(
                points, engine=SweepEngine(workers=workers, chunk_size=1)
            )
            assert _dumps(got) == _dumps(ref)

    def test_shape_search_grid(self):
        from repro.ml import shape_search_grid, shape_search_grid_serial

        ref = shape_search_grid_serial(["llm2"], num_chips=(1024, 4096))
        for workers in WORKER_COUNTS:
            got = shape_search_grid(
                ["llm2"], num_chips=(1024, 4096),
                engine=SweepEngine(workers=workers, chunk_size=1),
            )
            assert _dumps(got) == _dumps(ref)
