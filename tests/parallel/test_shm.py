"""Property suite for zero-copy shared-memory shipping.

Two contracts:

1. **Round-trip is byte-identical.**  Any ndarray packed into a
   :class:`ShmArena` and rebuilt from the attached spec must come back
   with the same dtype, shape, and bytes -- across dtypes (ints,
   floats, complex, bools), shapes (0-d scalars, empty axes, ragged
   mixes), and non-contiguous inputs.
2. **Ship mode is invisible.**  ``SweepEngine(ship="shm")`` must return
   results bit-identical to pickle shipping and to the serial oracle,
   for any worker count, with caching composing unchanged (keys are
   computed on the original specs).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.parallel import ResultCache, SweepEngine
from repro.parallel.shm import (
    ArrayRef,
    ShmArena,
    extract_arrays,
    restore_arrays,
)

DTYPES = ["u1", "i2", "i4", "i8", "f4", "f8", "c16", "?"]

shapes = st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=3).map(
    tuple
)


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(DTYPES)))
    shape = draw(shapes)
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    raw = rng.integers(0, 255, size=shape, dtype=np.uint8)
    count = int(np.prod(shape)) if shape else 1
    nbytes = count * dtype.itemsize
    buf = rng.integers(0, 255, size=max(nbytes, 1), dtype=np.uint8).tobytes()
    a = np.frombuffer(buf[:nbytes], dtype=dtype).reshape(shape).copy()
    del raw
    return a


class TestArenaRoundTrip:
    @given(st.lists(arrays(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_pack_attach_views_byte_identical(self, arrs):
        arena = ShmArena.pack(arrs)
        try:
            twin = ShmArena.attach(arena.spec)
            try:
                views = twin.views()
                assert len(views) == len(arrs)
                for a, v in zip(arrs, views):
                    c = np.ascontiguousarray(a)
                    assert v.dtype == c.dtype
                    assert v.shape == c.shape
                    assert v.tobytes() == c.tobytes()
                    assert not v.flags.writeable
            finally:
                twin.close()
        finally:
            arena.destroy()

    def test_non_contiguous_input_packs_contiguously(self):
        base = np.arange(100, dtype=np.float64).reshape(10, 10)
        sliced = base[::2, ::3]
        arena = ShmArena.pack([sliced])
        try:
            # Views are valid only while their arena is referenced and
            # open -- dropping the arena unmaps the segment under them.
            twin = ShmArena.attach(arena.spec)
            try:
                (v,) = twin.views()
                assert np.array_equal(v, sliced)
            finally:
                twin.close()
        finally:
            arena.destroy()

    def test_views_are_read_only(self):
        arena = ShmArena.pack([np.zeros(8)])
        try:
            (v,) = arena.views()
            with pytest.raises(ValueError):
                v[0] = 1.0
        finally:
            arena.destroy()

    def test_only_owner_may_unlink(self):
        arena = ShmArena.pack([np.ones(4)])
        try:
            twin = ShmArena.attach(arena.spec)
            with pytest.raises(ConfigurationError):
                twin.unlink()
            twin.close()
        finally:
            arena.destroy()

    def test_empty_arena_rejected(self):
        with pytest.raises(ConfigurationError):
            ShmArena.pack([])


class TestExtractRestore:
    def test_round_trips_nested_structures(self):
        big = np.arange(2048, dtype=np.float64)
        spec = {
            "grid": big,
            "nested": [{"again": big}, (1, "x", big)],
            "small": np.ones(2),
            "scalar": 3.5,
        }
        stripped, arrs = extract_arrays([spec], min_bytes=1024)
        assert len(arrs) == 1 and arrs[0] is big
        # Dedup: the same object became the same slot everywhere.
        s = stripped[0]
        assert s["grid"] == ArrayRef(0)
        assert s["nested"][0]["again"] == ArrayRef(0)
        assert s["nested"][1][2] == ArrayRef(0)
        # Small arrays and scalars ride along untouched.
        assert s["small"] is spec["small"]
        assert s["scalar"] == 3.5
        restored = restore_arrays(s, [big])
        assert restored["grid"] is big
        assert restored["nested"][0]["again"] is big

    def test_min_bytes_threshold(self):
        a = np.zeros(10, dtype=np.float64)  # 80 bytes
        stripped, arrs = extract_arrays([{"a": a}], min_bytes=81)
        assert arrs == [] and stripped[0]["a"] is a
        stripped, arrs = extract_arrays([{"a": a}], min_bytes=80)
        assert len(arrs) == 1 and stripped[0]["a"] == ArrayRef(0)


def _row_stat(task, seed):
    rng = np.random.default_rng(seed)
    row = task["grid"][task["row"]]
    return float(row.sum() + np.quantile(row, task["q"]) + rng.standard_normal())


class TestEngineShipParity:
    @pytest.fixture()
    def tasks(self):
        rng = np.random.default_rng(42)
        grid = rng.standard_normal((64, 257))
        return [{"grid": grid, "row": i % 64, "q": 0.25} for i in range(12)]

    def test_shm_matches_pickle_and_serial(self, tasks):
        oracle = SweepEngine(workers=1).pmap_serial(_row_stat, tasks, seed=9)
        for workers in (1, 2, 4):
            for ship in ("pickle", "shm"):
                got = SweepEngine(workers=workers, ship=ship).pmap(
                    _row_stat, tasks, seed=9
                )
                assert got == oracle, (workers, ship)

    def test_shm_stats_recorded(self, tasks):
        eng = SweepEngine(workers=2, ship="shm")
        eng.pmap(_row_stat, tasks, seed=9)
        assert eng.last_run.shm_arrays == 1  # the grid deduped to one slot
        assert eng.last_run.shm_bytes == tasks[0]["grid"].nbytes

    def test_no_qualifying_arrays_falls_back_to_pickle(self):
        tasks = [{"x": float(i)} for i in range(8)]

        def f(t, s):
            return t["x"] * 2

        eng = SweepEngine(workers=1, ship="shm")
        got = eng.pmap(f, tasks, seed=1)
        assert got == [t["x"] * 2 for t in tasks]
        assert eng.last_run.shm_arrays == 0

    def test_cache_keys_are_ship_mode_independent(self, tasks, tmp_path):
        cache = ResultCache(tmp_path)
        warm = SweepEngine(workers=1, cache=cache, ship="pickle")
        a = warm.pmap(_row_stat, tasks, seed=9, cache_tag="shmtest")
        assert warm.last_run.cache_misses == len(tasks)
        replay = SweepEngine(workers=1, cache=cache, ship="shm")
        b = replay.pmap(_row_stat, tasks, seed=9, cache_tag="shmtest")
        assert replay.last_run.cache_hits == len(tasks)
        assert a == b

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=5))
    @settings(max_examples=8, deadline=None)
    def test_chunking_never_affects_shm_results(self, workers, chunk_size):
        rng = np.random.default_rng(3)
        grid = rng.standard_normal((16, 311))
        tasks = [{"grid": grid, "row": i, "q": 0.5} for i in range(16)]
        oracle = SweepEngine(workers=1).pmap_serial(_row_stat, tasks, seed=5)
        got = SweepEngine(
            workers=workers, chunk_size=chunk_size, ship="shm"
        ).pmap(_row_stat, tasks, seed=5)
        assert got == oracle
