"""Tests for repro.parallel.engine: the deterministic fan-out."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.obs import Observability
from repro.parallel import ResultCache, SweepEngine


def _draw(task, seed):
    """A seeded task: the first uniform of the task's stream."""
    return (task, float(np.random.default_rng(seed).random()))


def _square(task):
    return task * task


class TestTaskSeeds:
    def test_positional_children(self):
        """Seed i is always child i: growing the grid keeps a prefix."""
        short = SweepEngine.task_seeds(42, 3)
        long = SweepEngine.task_seeds(42, 5)
        for a, b in zip(short, long):
            assert a.entropy == b.entropy and a.spawn_key == b.spawn_key

    def test_none_seed(self):
        assert SweepEngine.task_seeds(None, 3) == [None, None, None]


class TestPmap:
    def test_unseeded_matches_serial(self):
        engine = SweepEngine(workers=2, chunk_size=2)
        tasks = list(range(7))
        assert engine.pmap(_square, tasks) == engine.pmap_serial(_square, tasks)

    def test_seeded_matches_serial(self):
        engine = SweepEngine(workers=4, chunk_size=3)
        tasks = list(range(9))
        got = engine.pmap(_draw, tasks, seed=5)
        ref = engine.pmap_serial(_draw, tasks, seed=5)
        assert [g[1].hex() for g in got] == [r[1].hex() for r in ref]

    def test_order_preserved(self):
        engine = SweepEngine(workers=2, chunk_size=1)
        assert engine.pmap(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_tasks(self):
        engine = SweepEngine(workers=2)
        assert engine.pmap(_square, []) == []
        assert engine.last_run.tasks == 0

    def test_run_stats(self):
        engine = SweepEngine(workers=2, chunk_size=2)
        engine.pmap(_square, list(range(6)))
        stats = engine.last_run
        assert stats.tasks == 6
        assert stats.computed == 6
        assert stats.chunks == 3
        assert stats.parallel

    def test_single_chunk_stays_serial(self):
        engine = SweepEngine(workers=4, chunk_size=100)
        engine.pmap(_square, list(range(5)))
        assert not engine.last_run.parallel

    def test_serial_accepts_closures(self):
        """workers=1 never pickles, so lambdas are fine."""
        engine = SweepEngine(workers=1)
        assert engine.pmap(lambda t: t + 1, [1, 2]) == [2, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(workers=0)
        with pytest.raises(ConfigurationError):
            SweepEngine(chunk_size=0)


class TestPmapCache:
    def test_warm_run_computes_nothing(self):
        cache = ResultCache.in_memory()
        engine = SweepEngine(workers=1, cache=cache)
        tasks = list(range(5))
        cold = engine.pmap(_draw, tasks, seed=1, cache_tag="t")
        assert engine.last_run.cache_misses == 5
        warm = engine.pmap(_draw, tasks, seed=1, cache_tag="t")
        assert engine.last_run.cache_hits == 5
        assert engine.last_run.computed == 0
        assert [c[1].hex() for c in cold] == [w[1].hex() for w in warm]

    def test_partial_hits_compute_only_missing(self):
        cache = ResultCache.in_memory()
        engine = SweepEngine(workers=1, cache=cache)
        engine.pmap(_draw, list(range(4)), seed=1, cache_tag="t")
        engine.pmap(_draw, list(range(6)), seed=1, cache_tag="t")
        assert engine.last_run.cache_hits == 4
        assert engine.last_run.computed == 2

    def test_different_seed_misses(self):
        cache = ResultCache.in_memory()
        engine = SweepEngine(workers=1, cache=cache)
        engine.pmap(_draw, [0, 1], seed=1, cache_tag="t")
        engine.pmap(_draw, [0, 1], seed=2, cache_tag="t")
        assert engine.last_run.cache_hits == 0

    def test_invalidate_forces_recompute(self):
        cache = ResultCache.in_memory()
        engine = SweepEngine(workers=1, cache=cache)
        engine.pmap(_draw, [0, 1], seed=1, cache_tag="t")
        cache.invalidate("t")
        engine.pmap(_draw, [0, 1], seed=1, cache_tag="t")
        assert engine.last_run.computed == 2

    def test_no_tag_means_no_cache(self):
        cache = ResultCache.in_memory()
        engine = SweepEngine(workers=1, cache=cache)
        engine.pmap(_draw, [0, 1], seed=1)
        assert len(cache) == 0

    def test_disk_cache_round_trip(self, tmp_path):
        cold = SweepEngine(workers=1, cache=ResultCache(tmp_path))
        a = cold.pmap(_draw, list(range(3)), seed=7, cache_tag="t")
        warm = SweepEngine(workers=2, chunk_size=1, cache=ResultCache(tmp_path))
        b = warm.pmap(_draw, list(range(3)), seed=7, cache_tag="t")
        assert warm.last_run.cache_hits == 3
        assert [x[1].hex() for x in a] == [y[1].hex() for y in b]


class TestObservability:
    def test_spans_and_counters(self):
        obs = Observability.sim()
        engine = SweepEngine(workers=1, chunk_size=2, obs=obs)
        engine.pmap(_square, list(range(5)))
        assert len(obs.tracer.find("sweep.pmap")) == 1
        assert len(obs.tracer.find("sweep.chunk")) == 3
        assert obs.metrics.sum_counters("sweep.tasks.completed") == 5.0
        assert obs.metrics.sum_counters("sweep.chunks.completed") == 3.0
        hist = obs.metrics.histogram("sweep.chunk.duration_ms")
        assert hist.count == 3
