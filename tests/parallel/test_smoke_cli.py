"""Tests for the ``python -m repro.parallel.smoke`` cache gate."""

import json

from repro.parallel.smoke import main, run_smoke


class TestSmokeCli:
    def test_run_smoke_passes(self, tmp_path):
        stats = run_smoke(tmp_path / "cache", points=4, num_symbols=20_000)
        assert stats["ok"]
        assert stats["results_identical"]
        assert stats["all_hits"]
        assert stats["speedup"] >= 5.0

    def test_main_writes_artifact(self, tmp_path):
        out = tmp_path / "artifacts" / "cache_smoke.json"
        code = main(
            [
                "--points", "4", "--symbols", "20000",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out),
            ]
        )
        assert code == 0
        stats = json.loads(out.read_text())
        assert stats["ok"] and stats["warm_computed"] == 0

    def test_unreachable_speedup_fails(self, tmp_path):
        code = main(
            [
                "--points", "2", "--symbols", "5000",
                "--min-speedup", "1e12",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 1
