"""Tests for repro.scheduler.model_aware."""

import pytest

from repro.core.errors import ConfigurationError, SchedulingError
from repro.core.ids import JobId
from repro.ml.models import LLM_ZOO, LlmConfig
from repro.scheduler.model_aware import ModelAwareAllocator
from repro.tpu.superpod import Superpod


@pytest.fixture
def alloc():
    return ModelAwareAllocator(Superpod())


class TestShapeSelection:
    def test_full_pod_reproduces_table2(self, alloc):
        shape, _ = alloc.best_shape_for(LLM_ZOO["llm1"], cubes=64)
        assert shape == (4, 4, 256)
        shape, _ = alloc.best_shape_for(LLM_ZOO["llm2"], cubes=64)
        assert shape == (16, 16, 16)

    def test_partial_pod_budget(self, alloc):
        shape, t = alloc.best_shape_for(LLM_ZOO["llm0"], cubes=16)
        assert shape[0] * shape[1] * shape[2] == 1024
        assert t > 0

    def test_infeasible_budget(self, alloc):
        # 150B cannot fit 4 cubes (256 chips) at tensor <= 16... memory.
        with pytest.raises(SchedulingError):
            alloc.best_shape_for(LLM_ZOO["llm2"], cubes=1)

    def test_validation(self, alloc):
        with pytest.raises(ConfigurationError):
            alloc.best_shape_for(LLM_ZOO["llm0"], cubes=0)


class TestPlacement:
    def test_place_configures_fabric(self, alloc):
        placement = alloc.place(JobId("train-llm1"), LLM_ZOO["llm1"], cubes=64)
        assert placement.chip_shape == (4, 4, 256)
        assert placement.throughput_seqs_per_s > 0
        assert alloc.pod.utilization() == 1.0
        topo = alloc.pod.slice(placement.slice_id)
        assert topo.chip_shape == placement.chip_shape

    def test_two_jobs_share_pod(self, alloc):
        small = LlmConfig.from_params("small", 8e9, 32, 2048, 2048)
        a = alloc.place(JobId("a"), small, cubes=16)
        b = alloc.place(JobId("b"), small, cubes=16)
        assert a.slice_id != b.slice_id
        assert len(alloc.pod.allocated_cubes()) == 32

    def test_duplicate_rejected(self, alloc):
        small = LlmConfig.from_params("small", 8e9, 32, 2048, 2048)
        alloc.place(JobId("a"), small, cubes=8)
        with pytest.raises(SchedulingError):
            alloc.place(JobId("a"), small, cubes=8)

    def test_capacity_respected(self, alloc):
        with pytest.raises(SchedulingError):
            alloc.place(JobId("big"), LLM_ZOO["llm1"], cubes=65)

    def test_release(self, alloc):
        small = LlmConfig.from_params("small", 8e9, 32, 2048, 2048)
        alloc.place(JobId("a"), small, cubes=8)
        alloc.release(JobId("a"))
        assert alloc.pod.allocated_cubes() == set()
        with pytest.raises(SchedulingError):
            alloc.release(JobId("a"))


class TestSpeedup:
    def test_llm1_beats_balanced(self, alloc):
        """The model-aware placement is the per-job reconfigurability win."""
        speedup = alloc.speedup_over_balanced(LLM_ZOO["llm1"], cubes=64)
        assert speedup == pytest.approx(3.31, abs=0.25)

    def test_llm2_balanced_is_optimal(self, alloc):
        assert alloc.speedup_over_balanced(LLM_ZOO["llm2"], cubes=64) == pytest.approx(
            1.0
        )
