"""Tests for repro.scheduler.simulator."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ids import JobId
from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.requests import JobRequest, WorkloadGenerator
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod


def job(name, cubes, duration, arrival):
    return JobRequest(JobId(name), cubes=cubes, duration_s=duration, arrival_s=arrival)


class TestBasics:
    def test_single_job_completes(self):
        pod = Superpod(num_cubes=8)
        sim = SchedulerSimulation(ReconfigurableAllocator(pod))
        metrics = sim.run([job("a", 4, 100.0, 0.0)])
        assert metrics.completed == 1
        assert metrics.cube_busy_s == pytest.approx(400.0)

    def test_queueing_when_full(self):
        pod = Superpod(num_cubes=4)
        sim = SchedulerSimulation(ReconfigurableAllocator(pod))
        metrics = sim.run(
            [job("a", 4, 100.0, 0.0), job("b", 4, 100.0, 10.0)]
        )
        assert metrics.completed == 2
        # Job b waited from t=10 until a finished at t=100.
        assert metrics.waits_s[1] == pytest.approx(90.0)

    def test_backfill_lets_small_jobs_pass(self):
        pod = Superpod(num_cubes=4)
        trace = [
            job("big0", 4, 100.0, 0.0),
            job("big1", 4, 100.0, 1.0),  # blocks the head
            job("tiny", 1, 10.0, 2.0),
        ]
        with_bf = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=4)), backfill=True
        ).run(trace)
        without = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=4)), backfill=False
        ).run(trace)
        # tiny's wait should shrink... it cannot run while big0 holds all
        # 4 cubes, so backfill only helps after big0 ends; the orders differ.
        assert with_bf.completed == without.completed == 3
        assert with_bf.mean_wait_s <= without.mean_wait_s

    def test_empty_trace_rejected(self):
        sim = SchedulerSimulation(ReconfigurableAllocator(Superpod(num_cubes=4)))
        with pytest.raises(ConfigurationError):
            sim.run([])


class TestUtilizationComparison:
    """§4.2.4: the OCS pod sustains higher utilization."""

    @pytest.fixture(scope="class")
    def trace(self):
        gen = WorkloadGenerator(
            arrival_rate_per_s=1 / 120.0,
            mean_duration_s=3600.0,
            seed=11,
        )
        return gen.generate(220)

    def test_reconfigurable_utilization_high(self, trace):
        pod = Superpod()
        metrics = SchedulerSimulation(ReconfigurableAllocator(pod)).run(trace)
        assert metrics.utilization > 0.9

    def test_reconfigurable_beats_contiguous(self, trace):
        rec = SchedulerSimulation(ReconfigurableAllocator(Superpod())).run(trace)
        con = SchedulerSimulation(ContiguousAllocator(Superpod())).run(trace)
        assert rec.utilization > con.utilization


class TestFailures:
    def test_reconfigurable_jobs_survive(self):
        pod = Superpod(num_cubes=16)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod),
            cube_failure_rate_per_s=1 / 5000.0,
            repair_s=2000.0,
            seed=5,
        )
        trace = [job(f"j{i}", 2, 4000.0, i * 100.0) for i in range(10)]
        metrics = sim.run(trace)
        assert metrics.completed == 10
        assert metrics.failures_injected > 0
        assert metrics.requeued_after_failure == 0 or metrics.survived_failures > 0

    def test_static_jobs_requeue(self):
        pod = Superpod(num_cubes=8)
        sim = SchedulerSimulation(
            ContiguousAllocator(pod),
            cube_failure_rate_per_s=1 / 3000.0,
            repair_s=1000.0,
            seed=6,
        )
        trace = [job(f"j{i}", 8, 5000.0, i * 50.0) for i in range(6)]
        metrics = sim.run(trace)
        assert metrics.failures_injected > 0
        # The static policy cannot swap: any hit job requeues.
        assert metrics.survived_failures == 0

    def test_metrics_properties(self):
        pod = Superpod(num_cubes=4)
        metrics = SchedulerSimulation(ReconfigurableAllocator(pod)).run(
            [job("a", 1, 10.0, 0.0)]
        )
        assert 0 <= metrics.utilization <= 1
        assert metrics.p95_wait_s >= 0
