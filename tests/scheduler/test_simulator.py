"""Tests for repro.scheduler.simulator."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ids import JobId
from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.requests import JobRequest, WorkloadGenerator
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod


def job(name, cubes, duration, arrival):
    return JobRequest(JobId(name), cubes=cubes, duration_s=duration, arrival_s=arrival)


class TestBasics:
    def test_single_job_completes(self):
        pod = Superpod(num_cubes=8)
        sim = SchedulerSimulation(ReconfigurableAllocator(pod))
        metrics = sim.run([job("a", 4, 100.0, 0.0)])
        assert metrics.completed == 1
        assert metrics.cube_busy_s == pytest.approx(400.0)

    def test_queueing_when_full(self):
        pod = Superpod(num_cubes=4)
        sim = SchedulerSimulation(ReconfigurableAllocator(pod))
        metrics = sim.run(
            [job("a", 4, 100.0, 0.0), job("b", 4, 100.0, 10.0)]
        )
        assert metrics.completed == 2
        # Job b waited from t=10 until a finished at t=100.
        assert metrics.waits_s[1] == pytest.approx(90.0)

    def test_backfill_lets_small_jobs_pass(self):
        pod = Superpod(num_cubes=4)
        trace = [
            job("big0", 4, 100.0, 0.0),
            job("big1", 4, 100.0, 1.0),  # blocks the head
            job("tiny", 1, 10.0, 2.0),
        ]
        with_bf = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=4)), backfill=True
        ).run(trace)
        without = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=4)), backfill=False
        ).run(trace)
        # tiny's wait should shrink... it cannot run while big0 holds all
        # 4 cubes, so backfill only helps after big0 ends; the orders differ.
        assert with_bf.completed == without.completed == 3
        assert with_bf.mean_wait_s <= without.mean_wait_s

    def test_empty_trace_rejected(self):
        sim = SchedulerSimulation(ReconfigurableAllocator(Superpod(num_cubes=4)))
        with pytest.raises(ConfigurationError):
            sim.run([])


class TestUtilizationComparison:
    """§4.2.4: the OCS pod sustains higher utilization."""

    @pytest.fixture(scope="class")
    def trace(self):
        gen = WorkloadGenerator(
            arrival_rate_per_s=1 / 120.0,
            mean_duration_s=3600.0,
            seed=11,
        )
        return gen.generate(220)

    def test_reconfigurable_utilization_high(self, trace):
        pod = Superpod()
        metrics = SchedulerSimulation(ReconfigurableAllocator(pod)).run(trace)
        assert metrics.utilization > 0.9

    def test_reconfigurable_beats_contiguous(self, trace):
        rec = SchedulerSimulation(ReconfigurableAllocator(Superpod())).run(trace)
        con = SchedulerSimulation(ContiguousAllocator(Superpod())).run(trace)
        assert rec.utilization > con.utilization


class TestFailures:
    def test_reconfigurable_jobs_survive(self):
        pod = Superpod(num_cubes=16)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod),
            cube_failure_rate_per_s=1 / 5000.0,
            repair_s=2000.0,
            seed=5,
        )
        trace = [job(f"j{i}", 2, 4000.0, i * 100.0) for i in range(10)]
        metrics = sim.run(trace)
        assert metrics.completed == 10
        assert metrics.failures_injected > 0
        assert metrics.requeued_after_failure == 0 or metrics.survived_failures > 0

    def test_static_jobs_requeue(self):
        pod = Superpod(num_cubes=8)
        sim = SchedulerSimulation(
            ContiguousAllocator(pod),
            cube_failure_rate_per_s=1 / 3000.0,
            repair_s=1000.0,
            seed=6,
        )
        trace = [job(f"j{i}", 8, 5000.0, i * 50.0) for i in range(6)]
        metrics = sim.run(trace)
        assert metrics.failures_injected > 0
        # The static policy cannot swap: any hit job requeues.
        assert metrics.survived_failures == 0

    def test_metrics_properties(self):
        pod = Superpod(num_cubes=4)
        metrics = SchedulerSimulation(ReconfigurableAllocator(pod)).run(
            [job("a", 1, 10.0, 0.0)]
        )
        assert 0 <= metrics.utilization <= 1
        assert metrics.p95_wait_s >= 0


class TestFabricSlowdown:
    """Held-out fabric capacity stretches job runtimes (health feed)."""

    def test_slowdown_stretches_durations(self):
        pod = Superpod(num_cubes=8)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod), fabric_slowdown=lambda: 0.25
        )
        metrics = sim.run([job("a", 4, 100.0, 0.0)])
        assert metrics.completed == 1
        # 100 s of work at 1.25x step time busies 4 cubes for 125 s.
        assert metrics.cube_busy_s == pytest.approx(500.0)

    def test_none_hook_preserves_baseline(self):
        trace = [job("a", 4, 100.0, 0.0), job("b", 4, 100.0, 10.0)]
        base = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=4))
        ).run(trace)
        hooked = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=4)),
            fabric_slowdown=lambda: 0.0,
        ).run(trace)
        assert hooked.cube_busy_s == base.cube_busy_s
        assert hooked.waits_s == base.waits_s

    def test_slowdown_sampled_at_start_time(self):
        # The hook is consulted when each job starts, so quarantines
        # lifted between arrivals stop charging new jobs.
        charges = iter([0.5, 0.0])
        pod = Superpod(num_cubes=4)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod), fabric_slowdown=lambda: next(charges)
        )
        metrics = sim.run([job("a", 4, 100.0, 0.0), job("b", 4, 100.0, 10.0)])
        # Job a ran 150 s, job b (started after a ended) ran 100 s.
        assert metrics.cube_busy_s == pytest.approx(4 * 250.0)
        assert metrics.waits_s[1] == pytest.approx(140.0)

    def test_negative_slowdown_rejected(self):
        pod = Superpod(num_cubes=4)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod), fabric_slowdown=lambda: -0.1
        )
        with pytest.raises(ConfigurationError):
            sim.run([job("a", 1, 10.0, 0.0)])


class TestInjectorBacked:
    """The simulator sources cube faults from a FaultInjector timeline."""

    def test_explicit_schedule_kills_and_repairs(self):
        from repro.faults.events import FaultKind, cube_target
        from repro.faults.injector import FaultInjector

        pod = Superpod(num_cubes=8)
        injector = FaultInjector(seed=0)
        # Kill the first cube mid-job; the reconfigurable policy swaps a
        # spare in, so the job still completes.
        injector.schedule(500.0, FaultKind.CUBE_POWER_LOSS, cube_target(0))
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod), injector=injector, repair_s=200.0
        )
        metrics = sim.run([job("a", 2, 2000.0, 0.0)])
        assert metrics.failures_injected == 1
        assert metrics.survived_failures == 1
        assert metrics.completed == 1

    def test_host_crash_events_also_count(self):
        from repro.faults.events import FaultKind, host_target
        from repro.faults.injector import FaultInjector

        pod = Superpod(num_cubes=4)
        injector = FaultInjector(seed=0)
        injector.schedule(
            100.0, FaultKind.HOST_CRASH, host_target(0, 3), params=(("host", 3),)
        )
        sim = SchedulerSimulation(
            ContiguousAllocator(pod), injector=injector, repair_s=50.0
        )
        metrics = sim.run([job("a", 4, 1000.0, 0.0)])
        assert metrics.failures_injected == 1
        # Static policy loses the slice; the job requeues and finishes late.
        assert metrics.requeued_after_failure == 1
        assert metrics.completed == 1

    def test_unrelated_kinds_are_ignored(self):
        from repro.faults.events import FaultKind
        from repro.faults.injector import FaultInjector

        pod = Superpod(num_cubes=4)
        injector = FaultInjector(seed=0)
        injector.schedule(10.0, FaultKind.RPC_TIMEOUT, "ocs-0")
        sim = SchedulerSimulation(ReconfigurableAllocator(pod), injector=injector)
        metrics = sim.run([job("a", 1, 100.0, 0.0)])
        assert metrics.failures_injected == 0
        assert metrics.completed == 1

    def test_rate_path_matches_pre_injector_rng_draws(self):
        """The classic constructor path draws the same seeded schedule the
        old private-event-code implementation did: one exponential per
        cube, in cube order, from ``default_rng(seed)``."""
        import numpy as np

        from repro.faults.injector import FaultInjector

        rate, seed, num_cubes = 1 / 5000.0, 5, 16
        fail_window = 900.0 + 4000.0
        injector = FaultInjector(seed=seed)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(Superpod(num_cubes=num_cubes)),
            cube_failure_rate_per_s=rate,
            repair_s=2000.0,
            seed=seed,
            injector=injector,
        )
        sim.run([job(f"j{i}", 2, 4000.0, i * 100.0) for i in range(10)])
        rng = np.random.default_rng(seed)
        expected = [
            (i, t)
            for i in range(num_cubes)
            for t in [float(rng.exponential(1.0 / rate))]
            if t < fail_window
        ]
        initial = [
            (int(e.target.rsplit("-", 1)[1]), e.time_s)
            for e in injector.delivered()
            if not e.recovery
        ]
        # Every initially-armed failure appears verbatim in the delivered log.
        for item in expected:
            assert item in initial
