"""Property suite for the scheduling DES: conservation laws under random
traces and policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import JobId
from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.requests import JobRequest
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod


@st.composite
def traces(draw):
    n = draw(st.integers(1, 12))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(0.0, 50.0))
        jobs.append(
            JobRequest(
                JobId(f"j{i}"),
                cubes=draw(st.integers(1, 8)),
                duration_s=draw(st.floats(1.0, 200.0)),
                arrival_s=t,
            )
        )
    return jobs


class TestConservation:
    @given(traces(), st.booleans(), st.sampled_from([0, 1]))
    @settings(max_examples=30, deadline=None)
    def test_every_job_completes_without_failures(self, trace, backfill, policy):
        pod = Superpod(num_cubes=8)
        allocator = (
            ReconfigurableAllocator(pod) if policy == 0 else ContiguousAllocator(pod)
        )
        metrics = SchedulerSimulation(allocator, backfill=backfill).run(trace)
        assert metrics.completed == len(trace)
        # All resources returned.
        assert pod.allocated_cubes() == set()
        assert pod.total_circuits() == 0
        # Waits are non-negative and one per start.
        assert len(metrics.waits_s) == len(trace)
        assert all(w >= -1e-9 for w in metrics.waits_s)
        # Busy accounting: exactly sum(cubes * duration).
        expected = sum(j.cubes * j.duration_s for j in trace)
        assert metrics.cube_busy_s == pytest.approx(expected, rel=1e-9)

    @given(traces())
    @settings(max_examples=15, deadline=None)
    def test_utilization_bounded(self, trace):
        pod = Superpod(num_cubes=8)
        metrics = SchedulerSimulation(ReconfigurableAllocator(pod)).run(trace)
        assert 0.0 <= metrics.utilization <= 1.0 + 1e-9

    @given(traces(), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_failure_injection_conserves_jobs(self, trace, seed):
        """With failures, every job either completes or sits in the queue
        at drain time -- none vanish."""
        pod = Superpod(num_cubes=8)
        sim = SchedulerSimulation(
            ReconfigurableAllocator(pod),
            cube_failure_rate_per_s=1 / 500.0,
            repair_s=100.0,
            seed=seed,
        )
        metrics = sim.run(trace)
        assert metrics.completed + metrics.requeued_after_failure >= metrics.completed
        assert metrics.completed <= len(trace) + metrics.requeued_after_failure
