"""Tests for repro.scheduler.defrag."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ids import CubeId, JobId
from repro.scheduler.allocator import ReconfigurableAllocator
from repro.scheduler.defrag import (
    compact_contiguous,
    fragmentation,
    free_runs,
    largest_placeable_job,
)
from repro.scheduler.requests import JobRequest
from repro.tpu.superpod import Superpod


def checkerboard_pod(n=16):
    """Pod with every even cube allocated (scattered free singles)."""
    pod = Superpod(num_cubes=n)
    alloc = ReconfigurableAllocator(pod)
    jobs = [JobRequest(JobId(f"j{i}"), 1, 10.0, 0.0) for i in range(n)]
    for j in jobs:
        alloc.try_allocate(j)
    for j in jobs[1::2]:
        alloc.release(j)
    return pod


class TestFreeRuns:
    def test_empty_pod_one_run(self):
        pod = Superpod(num_cubes=8)
        assert free_runs(pod) == [(0, 8)]

    def test_checkerboard_runs(self):
        pod = checkerboard_pod(8)
        assert free_runs(pod) == [(1, 1), (3, 1), (5, 1), (7, 1)]

    def test_unhealthy_excluded(self):
        pod = Superpod(num_cubes=4)
        pod.cube(CubeId(1)).fail_host(0)
        assert free_runs(pod) == [(0, 1), (2, 2)]


class TestFragmentation:
    def test_empty_pod_zero(self):
        assert fragmentation(Superpod(num_cubes=8)) == 0.0

    def test_checkerboard_high(self):
        assert fragmentation(checkerboard_pod(16)) == pytest.approx(1 - 1 / 8)

    def test_full_pod_zero(self):
        pod = Superpod(num_cubes=4)
        alloc = ReconfigurableAllocator(pod)
        alloc.try_allocate(JobRequest(JobId("a"), 4, 10.0, 0.0))
        assert fragmentation(pod) == 0.0


class TestLargestPlaceable:
    def test_ocs_ignores_fragmentation(self):
        pod = checkerboard_pod(16)
        assert largest_placeable_job(pod, contiguous=False) == 8
        assert largest_placeable_job(pod, contiguous=True) == 1

    def test_empty_pod(self):
        pod = Superpod(num_cubes=8)
        assert largest_placeable_job(pod, contiguous=True) == 8


class TestCompaction:
    def test_checkerboard_compaction_moves(self):
        pod = checkerboard_pod(8)  # allocated at 0,2,4,6
        moves, downtime = compact_contiguous(pod, migration_s_per_cube=100.0)
        # Targets 0..3: cubes at 2,4,6 move.
        assert moves == 3
        assert downtime == 300.0

    def test_already_compact(self):
        pod = Superpod(num_cubes=8)
        alloc = ReconfigurableAllocator(pod)
        alloc.try_allocate(JobRequest(JobId("a"), 4, 10.0, 0.0))
        moves, downtime = compact_contiguous(pod)
        assert moves == 0 and downtime == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compact_contiguous(Superpod(num_cubes=4), migration_s_per_cube=-1)
