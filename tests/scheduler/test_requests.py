"""Tests for repro.scheduler.requests."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.ids import JobId
from repro.scheduler.requests import JobRequest, WorkloadGenerator, balanced_cube_shape


class TestBalancedShape:
    def test_perfect_cube(self):
        assert balanced_cube_shape(64) == (4, 4, 4)
        assert balanced_cube_shape(8) == (2, 2, 2)

    def test_non_cube(self):
        assert balanced_cube_shape(2) == (1, 1, 2)
        assert balanced_cube_shape(16) == (2, 2, 4)
        assert balanced_cube_shape(32) == (2, 4, 4)

    def test_prime(self):
        assert balanced_cube_shape(7) == (1, 1, 7)

    def test_product_invariant(self):
        for n in range(1, 65):
            shape = balanced_cube_shape(n)
            assert shape[0] * shape[1] * shape[2] == n

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            balanced_cube_shape(0)


class TestJobRequest:
    def test_chips(self):
        job = JobRequest(JobId("j"), cubes=4, duration_s=100, arrival_s=0)
        assert job.chips == 256

    def test_shape(self):
        job = JobRequest(JobId("j"), cubes=8, duration_s=100, arrival_s=0)
        assert job.shape == (2, 2, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobRequest(JobId("j"), cubes=0, duration_s=100, arrival_s=0)
        with pytest.raises(ConfigurationError):
            JobRequest(JobId("j"), cubes=1, duration_s=0, arrival_s=0)
        with pytest.raises(ConfigurationError):
            JobRequest(JobId("j"), cubes=1, duration_s=1, arrival_s=-1)


class TestWorkloadGenerator:
    def test_generates_requested_count(self):
        jobs = WorkloadGenerator(seed=1).generate(50)
        assert len(jobs) == 50

    def test_arrivals_sorted(self):
        jobs = WorkloadGenerator(seed=2).generate(100)
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_sizes_from_mix(self):
        gen = WorkloadGenerator(size_mix={2: 1.0}, seed=3)
        assert all(j.cubes == 2 for j in gen.generate(20))

    def test_deterministic(self):
        a = WorkloadGenerator(seed=4).generate(10)
        b = WorkloadGenerator(seed=4).generate(10)
        assert a == b

    def test_mean_duration_calibrated(self):
        gen = WorkloadGenerator(mean_duration_s=1000.0, seed=5)
        jobs = gen.generate(4000)
        mean = sum(j.duration_s for j in jobs) / len(jobs)
        assert mean == pytest.approx(1000.0, rel=0.1)

    def test_offered_load(self):
        gen = WorkloadGenerator(
            arrival_rate_per_s=0.01, mean_duration_s=100.0, size_mix={4: 1.0}
        )
        assert gen.offered_load_cubes() == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(arrival_rate_per_s=0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(size_mix={})
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(size_mix={1: -1.0})
        with pytest.raises(ConfigurationError):
            WorkloadGenerator().generate(0)


class TestOpenLoop:
    def test_prefix_stable_across_consumption_lengths(self):
        from itertools import islice

        gen = WorkloadGenerator(seed=6)
        short = list(islice(gen.open_loop(), 20))
        long = list(islice(gen.open_loop(), 60))
        assert long[:20] == short

    def test_matches_between_instances(self):
        from itertools import islice

        a = list(islice(WorkloadGenerator(seed=7).open_loop(), 30))
        b = list(islice(WorkloadGenerator(seed=7).open_loop(), 30))
        assert a == b
        c = list(islice(WorkloadGenerator(seed=8).open_loop(), 30))
        assert a != c

    def test_arrivals_increase_and_jobs_are_valid(self):
        from itertools import islice

        jobs = list(islice(WorkloadGenerator(seed=9).open_loop(), 50))
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)
        assert len({j.job_id for j in jobs}) == len(jobs)
        sizes = set(WorkloadGenerator().size_mix)
        assert all(j.cubes in sizes and j.duration_s > 0 for j in jobs)
