"""Tests for repro.scheduler.deployment (§4.2.3)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.scheduler.deployment import (
    DeploymentModel,
    ocs_and_fiber_savings,
)


@pytest.fixture
def model():
    return DeploymentModel(racks=64, rack_interval_d=1.0, rack_verify_d=2.0, pod_verify_d=14.0)


class TestIncremental:
    def test_first_capacity_fast(self, model):
        inc = model.incremental_outcome()
        assert inc.time_to_first_capacity_d == pytest.approx(2.0)

    def test_static_waits_for_everything(self, model):
        st = model.static_outcome()
        # 63 days of deliveries + 2 verify + 14 pod verification.
        assert st.time_to_first_capacity_d == pytest.approx(79.0)

    def test_incremental_much_earlier(self, model):
        inc = model.incremental_outcome()
        st = model.static_outcome()
        assert inc.time_to_first_capacity_d < st.time_to_first_capacity_d / 10

    def test_integrated_capacity_advantage(self, model):
        inc = model.incremental_outcome()
        st = model.static_outcome()
        assert inc.ramp_advantage_over(st) == float("inf")  # static has 0 in-window
        # Over a longer horizon the advantage is finite but > 1.
        longer = DeploymentModel(horizon_d=160.0)
        inc2, st2 = longer.incremental_outcome(), longer.static_outcome()
        assert 1.0 < inc2.ramp_advantage_over(st2) < 3.0

    def test_timeline_monotone(self, model):
        timeline = model.capacity_timeline("incremental", days=80)
        assert all(b >= a for a, b in zip(timeline, timeline[1:]))
        assert timeline[-1] == 64

    def test_timeline_static_step(self, model):
        timeline = model.capacity_timeline("static", days=80)
        assert timeline[0] == 0
        assert timeline[-1] == 64
        assert set(timeline) <= {0, 64}

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            DeploymentModel(racks=0)
        with pytest.raises(ConfigurationError):
            DeploymentModel(rack_interval_d=-1)
        with pytest.raises(ConfigurationError):
            model.capacity_timeline("magic", 10)
        with pytest.raises(ConfigurationError):
            model.capacity_timeline("static", 0)


class TestHardwareSavings:
    def test_fifty_percent_ocs_saving(self):
        """§4.2.3: 48 OCSes instead of 96 -- 50% OCS and fiber savings."""
        duplex, bidi, saving = ocs_and_fiber_savings()
        assert (duplex, bidi) == (96, 48)
        assert saving == pytest.approx(0.5)
