"""Tests for repro.scheduler.allocator."""

import pytest

from repro.core.ids import CubeId, JobId
from repro.scheduler.allocator import ContiguousAllocator, ReconfigurableAllocator
from repro.scheduler.requests import JobRequest
from repro.tpu.superpod import Superpod


def job(name, cubes):
    return JobRequest(JobId(name), cubes=cubes, duration_s=100.0, arrival_s=0.0)


@pytest.fixture
def pod():
    return Superpod(num_cubes=16)


class TestReconfigurable:
    def test_allocates_any_free_cubes(self, pod):
        alloc = ReconfigurableAllocator(pod)
        assert alloc.try_allocate(job("a", 4)) is not None
        assert len(pod.allocated_cubes()) == 4

    def test_skips_unhealthy(self, pod):
        pod.cube(CubeId(0)).fail_host(0)
        alloc = ReconfigurableAllocator(pod)
        alloc.try_allocate(job("a", 4))
        assert CubeId(0) not in pod.allocated_cubes()

    def test_fails_when_short(self, pod):
        alloc = ReconfigurableAllocator(pod)
        assert alloc.try_allocate(job("a", 17)) is None

    def test_fragmentation_immune(self, pod):
        """Non-contiguous free cubes still host a large job."""
        alloc = ReconfigurableAllocator(pod)
        jobs = [job(f"j{i}", 1) for i in range(16)]
        for j in jobs:
            alloc.try_allocate(j)
        # Free every second cube: 8 scattered singles.
        for j in jobs[::2]:
            alloc.release(j)
        assert alloc.try_allocate(job("big", 8)) is not None

    def test_release(self, pod):
        alloc = ReconfigurableAllocator(pod)
        j = job("a", 2)
        alloc.try_allocate(j)
        alloc.release(j)
        assert len(pod.allocated_cubes()) == 0

    def test_placement_options_binomial(self, pod):
        alloc = ReconfigurableAllocator(pod)
        from math import comb

        assert alloc.placement_options(job("a", 4)) == comb(16, 4)

    def test_failure_swap_keeps_job(self, pod):
        alloc = ReconfigurableAllocator(pod)
        j = job("a", 4)
        alloc.try_allocate(j)
        victim = next(iter(pod.allocated_cubes()))
        pod.cube(victim).fail_host(0)
        affected = alloc.handle_cube_failure(victim)
        assert affected is not None
        assert any(t.slice_id == affected for t in pod.slices())  # survived

    def test_failure_without_spare_kills_job(self):
        pod = Superpod(num_cubes=4)
        alloc = ReconfigurableAllocator(pod)
        j = job("a", 4)
        alloc.try_allocate(j)
        victim = CubeId(0)
        pod.cube(victim).fail_host(0)
        affected = alloc.handle_cube_failure(victim)
        assert affected is not None
        assert pod.slices() == ()  # released

    def test_idle_cube_failure_noop(self, pod):
        alloc = ReconfigurableAllocator(pod)
        assert alloc.handle_cube_failure(CubeId(3)) is None


class TestContiguous:
    def test_needs_contiguous_run(self, pod):
        alloc = ContiguousAllocator(pod)
        jobs = [job(f"j{i}", 1) for i in range(16)]
        for j in jobs:
            alloc.try_allocate(j)
        for j in jobs[::2]:
            alloc.release(j)
        # 8 free cubes but no run of 8.
        assert alloc.try_allocate(job("big", 8)) is None
        assert alloc.try_allocate(job("small", 1)) is not None

    def test_allocates_first_fit(self, pod):
        alloc = ContiguousAllocator(pod)
        alloc.try_allocate(job("a", 4))
        assert pod.allocated_cubes() == {CubeId(i) for i in range(4)}

    def test_placement_options_runs(self, pod):
        alloc = ContiguousAllocator(pod)
        assert alloc.placement_options(job("a", 4)) == 13  # 16-4+1

    def test_fewer_options_than_reconfigurable(self, pod):
        """§4.2.4: many more placement solutions with the OCS."""
        contiguous = ContiguousAllocator(pod).placement_options(job("a", 4))
        flexible = ReconfigurableAllocator(pod).placement_options(job("a", 4))
        assert flexible > 100 * contiguous

    def test_failure_kills_slice(self, pod):
        alloc = ContiguousAllocator(pod)
        j = job("a", 4)
        alloc.try_allocate(j)
        affected = alloc.handle_cube_failure(CubeId(0))
        assert affected is not None
        assert pod.slices() == ()

    def test_unhealthy_breaks_run(self, pod):
        pod.cube(CubeId(8)).fail_host(0)
        alloc = ContiguousAllocator(pod)
        alloc.try_allocate(job("a", 8))  # takes 0..7
        assert alloc.try_allocate(job("b", 8)) is None  # 9..15 is only 7
