"""Hypothesis properties of WAL compaction under crashes.

Compaction rewrites the log, which is exactly when a crash is most
dangerous: a half-rewritten log would lose committed history.  The
implementation stages the rewrite off to the side and swaps it in at
one point, so for *any* record set, *any* compaction horizon, and a
crash at *every* instrumented step of the rewrite:

- the surviving bytes are exactly the pre-compaction log (atomicity) --
  composed with a torn appended tail, ``repair_tail`` still recovers
  the full committed record set;
- a checkpoint interrupted at every step (the torn checkpoint append,
  the durability point, each compact-record, the swap) recovers to the
  committed state digest, byte for byte.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.journal import DurableController, recover
from repro.control.wal import CrashSchedule, WalRecord, WriteAheadLog
from repro.core.errors import ControllerCrash
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId

payloads = st.lists(
    st.fixed_dictionaries({"x": st.integers(min_value=0, max_value=999)}),
    min_size=3,
    max_size=8,
)


def filled_log(records):
    wal = WriteAheadLog()
    for payload in records:
        wal.append("op", payload)
    return wal


@settings(max_examples=20, deadline=None)
@given(
    records=payloads,
    keep_from=st.integers(min_value=0, max_value=8),
    torn_bytes=st.integers(min_value=1, max_value=48),
)
def test_compaction_crash_at_every_step_leaves_old_log_intact(
    records, keep_from, torn_bytes
):
    # A torn tail from a crashed append rides along into compaction.
    wal = filled_log(records)
    wal.crash = CrashSchedule(at_step=1, torn_bytes=torn_bytes)
    with pytest.raises(ControllerCrash):
        wal.append("op", {"x": -1})
    pristine = bytes(wal.storage)
    committed = wal.records()
    assert len(committed) == len(records)  # the torn frame never counts

    kept = [r for r in committed if r.seq >= keep_from]
    # Crash at every instrumented step of the rewrite: one per kept
    # record plus the swap point.
    for step in range(1, len(kept) + 2):
        storage = bytearray(pristine)
        crashing = WriteAheadLog(storage)
        crashing.crash = CrashSchedule(at_step=step)
        with pytest.raises(ControllerCrash):
            crashing.compact(keep_from)
        assert bytes(storage) == pristine  # atomicity: old log untouched
        reopened = WriteAheadLog(storage)
        assert reopened.repair_tail() > 0  # the torn tail is still there
        assert reopened.records() == committed

    # Uninterrupted compaction from the same bytes: exactly the kept
    # suffix survives (the torn tail is dropped by the scan), appends
    # continue the sequence, and a second compaction drops nothing new
    # -- unless the fresh append itself landed below the horizon (a
    # keep_from beyond the whole log), in which case it drops just that.
    storage = bytearray(pristine)
    wal2 = WriteAheadLog(storage)
    dropped = wal2.compact(keep_from)
    assert dropped == len(committed) - len(kept)
    assert [(r.seq, r.payload) for r in wal2.records()] == [
        (r.seq, r.payload) for r in kept
    ]
    appended = wal2.append("op", {"x": 1000})
    assert appended.seq == len(records)
    assert wal2.compact(keep_from) == (1 if appended.seq < keep_from else 0)


def build_manager() -> FabricManager:
    mgr = FabricManager()
    mgr.add_switch(OcsId(0), SimpleSwitch(16))
    return mgr


link_ops = st.lists(
    st.integers(min_value=0, max_value=7), min_size=2, max_size=5, unique=True
)


@settings(max_examples=10, deadline=None)
@given(norths=link_ops, torn_bytes=st.integers(min_value=1, max_value=48))
def test_checkpoint_crash_sweep_recovers_committed_digest(norths, torn_bytes):
    """Kill the controller at every step inside ``checkpoint()`` -- the
    (possibly torn) checkpoint append, its durability point, every
    compact-record, and the swap -- and recovery must reach the same
    committed digest every time."""

    def establish_all(ctl: DurableController) -> None:
        for n in norths:
            ctl.establish(LinkId(f"lk-{n}"), OcsId(0), n, n + 8)

    # Straight-line run: the digest every crash must recover to.
    baseline = DurableController(manager=build_manager())
    establish_all(baseline)
    committed_digest = baseline.state_digest()

    step = 1
    crash_points = 0
    while True:
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        establish_all(ctl)
        crash = CrashSchedule(at_step=step, torn_bytes=torn_bytes)
        ctl.crash = crash
        ctl.wal.crash = crash
        try:
            ctl.checkpoint()
        except ControllerCrash:
            crash_points += 1
            recovered, report = recover(mgr, ctl.wal.storage)
            assert report.state_digest == committed_digest
            assert recovered.state_digest() == committed_digest
            # The recovered controller can checkpoint cleanly, and the
            # compacted log still replays to the same state.
            recovered.checkpoint()
            replayed, _ = recover(build_manager(), recovered.wal.storage)
            assert replayed.state_digest() == committed_digest
            step += 1
            continue
        break
    # The sweep covered the append, the durability point, at least one
    # compact-record, and the swap.
    assert crash_points >= 4
