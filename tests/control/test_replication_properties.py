"""Hypothesis properties of the replicated control plane.

For *any* injected fault timeline (replica crashes, single-node
isolations, group partitions, and clock skews at arbitrary instants),
with a client submitting through failover sweeps and deposed leaders
injecting writes whenever they exist:

- at most one leader commits per epoch (the fencing-token safety pin);
- no client-acknowledged commit is ever lost, at any point in the run;
- after the faults clear, the live state digest equals a from-scratch
  serial replay of the committed log, byte for byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NotLeaderError, QuorumError
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import OcsId
from repro.faults.events import (
    FaultKind,
    controller_target,
    network_target,
    partition_groups_param,
)
from repro.faults.injector import FaultInjector
from repro.control.replication import ReplicationGroup

NUM_REPLICAS = 3
HORIZON_S = 8.0
SETTLE_S = HORIZON_S + 3.0  # every clear_after below lands before this

fault_timeline = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=HORIZON_S),
        st.sampled_from(["crash", "isolate", "split", "skew"]),
        st.integers(min_value=0, max_value=NUM_REPLICAS - 1),
        st.floats(min_value=-3.0, max_value=3.0),   # skew magnitude
        st.floats(min_value=0.3, max_value=2.0),    # clear_after_s
    ),
    min_size=0,
    max_size=12,
)


def build_manager() -> FabricManager:
    mgr = FabricManager()
    mgr.add_switch(OcsId(0), SimpleSwitch(16))
    return mgr


def schedule_timeline(injector: FaultInjector, events) -> None:
    for time_s, kind, index, skew, clear_after_s in sorted(
        events, key=lambda e: (e[0], e[1], e[2])
    ):
        if kind == "crash":
            injector.schedule(
                time_s, FaultKind.CONTROLLER_CRASH, controller_target(index),
                severity=1.0, clear_after_s=clear_after_s,
            )
        elif kind == "isolate":
            injector.schedule(
                time_s, FaultKind.NETWORK_PARTITION, controller_target(index),
                clear_after_s=clear_after_s,
            )
        elif kind == "split":
            rest = sorted(set(range(NUM_REPLICAS)) - {index})
            injector.schedule(
                time_s, FaultKind.NETWORK_PARTITION, network_target("control"),
                params=(partition_groups_param([[index], rest]),),
                clear_after_s=clear_after_s,
            )
        else:  # skew
            injector.schedule(
                time_s, FaultKind.CLOCK_SKEW, controller_target(index),
                severity=skew, clear_after_s=clear_after_s,
            )


def submit_with_failover(group: ReplicationGroup, payload, now_s, token) -> bool:
    """The serving layer's breaker edge in miniature: one election sweep
    over client-reachable live replicas, then one retry."""
    for _ in range(2):
        try:
            group.submit(payload, now_s, token=token)
            return True
        except (NotLeaderError, QuorumError):
            pass
        for i in range(NUM_REPLICAS):
            if not group.nodes[i].up or not group.client_reachable(i):
                continue
            try:
                group.elect(i, now_s)
                break
            except QuorumError:
                continue
        else:
            return False
    return False


def run_storm(events, seed: int) -> ReplicationGroup:
    group = ReplicationGroup(
        num_replicas=NUM_REPLICAS, manager_factory=build_manager, lease_s=0.4
    )
    group.elect(0, 0.0)
    injector = FaultInjector(seed=seed)
    group.attach_faults(injector)
    schedule_timeline(injector, events)

    k = 0
    now = 0.0
    while now < SETTLE_S:
        now = round(now + 0.25, 9)
        injector.advance_to(now)
        payload = {"op": "retarget", "changes": [[0, k % 8, 8 + ((k // 3) % 8)]]}
        submit_with_failover(group, payload, now, token=f"op-{k}")
        k += 1
        # Deposed-leader writes: any stale LEADER's in-flight commit must
        # be fenced, never double-applied.  A ReplicationError escaping
        # here IS the two-leaders-per-epoch violation and fails the test.
        for node in group.nodes:
            if node.index == group.leader_index or node.role.value != "leader":
                continue
            try:
                group.submit_as(
                    node.index, {"op": "noop", "reason": "stale"}, now
                )
            except (NotLeaderError, QuorumError):
                pass
        # Acked commits must survive *every* intermediate state, not
        # just the final healed one.
        assert group.committed_ops_lost() == 0
    group.finalize_outage(SETTLE_S)
    return group


@settings(max_examples=20, deadline=None)
@given(events=fault_timeline, seed=st.integers(min_value=0, max_value=50))
def test_no_committed_op_lost_for_any_fault_timeline(events, seed):
    group = run_storm(events, seed)
    assert group.committed_ops_lost() == 0
    assert group.commits == len(group.acked_commits())


@settings(max_examples=20, deadline=None)
@given(events=fault_timeline, seed=st.integers(min_value=0, max_value=50))
def test_at_most_one_leader_commits_per_epoch(events, seed):
    group = run_storm(events, seed)
    leaders = group.epoch_leaders()
    # The mapping is epoch -> the single committing replica; every acked
    # record must agree with it (two leaders in one epoch would have
    # raised ReplicationError inside the run).
    for record in group.acked_commits():
        assert leaders[record.epoch] == record.leader
    # Epochs only move forward in the acked history.
    epochs = [r.epoch for r in group.acked_commits()]
    assert epochs == sorted(epochs)


@settings(max_examples=20, deadline=None)
@given(events=fault_timeline, seed=st.integers(min_value=0, max_value=50))
def test_post_failover_digest_equals_serial_replay(events, seed):
    group = run_storm(events, seed)
    # The storm has cleared by SETTLE_S; one more commit proves the
    # group is serviceable again, then the state machine must equal a
    # from-scratch serial replay of the committed log.
    assert submit_with_failover(
        group, {"op": "noop", "reason": "settle"}, SETTLE_S + 0.25, "settle"
    )
    assert group.state_digest() == group.replay_digest()
