"""Tests for repro.control.wal (framing, tail repair, crash schedules)."""

import struct

import pytest

from repro.control.wal import FRAME_OVERHEAD, MAGIC, CrashSchedule, WalRecord, WriteAheadLog
from repro.core.errors import ConfigurationError, ControllerCrash, WalError


@pytest.fixture
def wal():
    return WriteAheadLog()


class TestFraming:
    def test_append_assigns_monotonic_seq(self, wal):
        r0 = wal.append("op", {"x": 1})
        r1 = wal.append("op", {"x": 2})
        assert (r0.seq, r1.seq) == (0, 1)
        assert [r.seq for r in wal] == [0, 1]

    def test_frame_layout(self, wal):
        record = wal.append("op", {"x": 1})
        body = record.body()
        frame = bytes(wal.storage)
        assert frame[:2] == MAGIC
        assert struct.unpack(">I", frame[2:6])[0] == len(body)
        assert len(frame) == len(body) + FRAME_OVERHEAD

    def test_roundtrip_payload(self, wal):
        wal.append("op", {"op": "establish", "north": 3, "south": 41})
        (record,) = wal.records()
        assert record.kind == "op"
        assert record.payload == {"op": "establish", "north": 3, "south": 41}

    def test_offsets_recorded(self, wal):
        r0 = wal.append("op", {})
        r1 = wal.append("op", {})
        scanned = wal.records()
        assert scanned[0].offset == r0.offset == 0
        assert scanned[1].offset == r1.offset > 0

    def test_reopen_continues_sequence(self, wal):
        wal.append("op", {"x": 1})
        wal.append("op", {"x": 2})
        reopened = WriteAheadLog(wal.storage)
        r = reopened.append("op", {"x": 3})
        assert r.seq == 2

    def test_digest_stable_and_sensitive(self, wal):
        wal.append("op", {"x": 1})
        other = WriteAheadLog()
        other.append("op", {"x": 1})
        assert wal.digest() == other.digest()
        other.append("op", {"x": 2})
        assert wal.digest() != other.digest()


class TestTailDiagnosis:
    def test_truncated_final_record_is_dropped(self, wal):
        wal.append("op", {"x": 1})
        keep = len(wal.storage)
        wal.append("op", {"x": 2})
        del wal.storage[keep + 5 :]  # torn mid-frame
        scan = wal.scan()
        assert scan.truncated and not scan.corrupt
        assert len(scan.records) == 1
        assert wal.repair_tail() == 5
        assert len(wal.storage) == keep

    def test_checksum_mismatch_is_corrupt(self, wal):
        wal.append("op", {"x": 1})
        keep = len(wal.storage)
        wal.append("op", {"x": 2})
        wal.storage[keep + 8] ^= 0xFF  # flip a body byte
        scan = wal.scan()
        assert scan.corrupt and not scan.truncated
        assert "checksum" in scan.detail
        assert len(scan.records) == 1

    def test_strict_raises_on_corrupt_not_truncated(self, wal):
        wal.append("op", {"x": 1})
        keep = len(wal.storage)
        wal.append("op", {"x": 2})
        wal.storage[keep + 8] ^= 0xFF
        with pytest.raises(WalError) as exc:
            wal.records(strict=True)
        assert exc.value.offset == keep
        del wal.storage[keep + 9 :]  # now merely truncated
        wal.storage[keep + 8] ^= 0xFF
        assert len(wal.records(strict=True)) == 1

    def test_bad_magic_is_corrupt(self, wal):
        wal.append("op", {"x": 1})
        wal.storage[0] ^= 0xFF
        scan = wal.scan()
        assert scan.corrupt
        assert scan.records == ()

    def test_sequence_break_detected(self, wal):
        wal.append("op", {"x": 1})
        rogue = WriteAheadLog.encode(WalRecord(seq=7, kind="op", payload={}))
        wal.storage.extend(rogue)
        scan = wal.scan()
        assert scan.corrupt and "sequence" in scan.detail
        assert len(scan.records) == 1

    def test_repair_tail_noop_on_clean_log(self, wal):
        wal.append("op", {"x": 1})
        assert wal.repair_tail() == 0


class TestCompaction:
    def test_compact_drops_below_seq_and_keeps_numbering(self, wal):
        for i in range(5):
            wal.append("op", {"i": i})
        assert wal.compact(keep_from_seq=3) == 3
        assert [r.seq for r in wal] == [3, 4]
        assert wal.append("op", {}).seq == 5

    def test_compact_everything(self, wal):
        wal.append("op", {})
        wal.compact(keep_from_seq=10)
        assert wal.byte_size == 0
        assert wal.append("op", {}).seq == 1  # seq survives emptiness


class TestCrashSchedule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule(at_step=0)
        with pytest.raises(ConfigurationError):
            CrashSchedule(torn_bytes=-1)

    def test_fires_once_at_step(self):
        crash = CrashSchedule(at_step=2)
        crash.step("a")
        with pytest.raises(ControllerCrash) as exc:
            crash.step("b")
        assert exc.value.step == 2
        assert exc.value.label == "b"
        assert crash.fired_label == "b"
        crash.step("c")  # disarmed after firing

    def test_append_crash_lands_nothing_by_default(self):
        crash = CrashSchedule(at_step=1)
        wal = WriteAheadLog(crash=crash)
        with pytest.raises(ControllerCrash):
            wal.append("op", {"x": 1})
        assert wal.byte_size == 0

    def test_torn_write_lands_prefix(self):
        crash = CrashSchedule(at_step=1, torn_bytes=7)
        wal = WriteAheadLog(crash=crash)
        with pytest.raises(ControllerCrash):
            wal.append("op", {"x": 1})
        assert wal.byte_size == 7
        assert wal.scan().truncated
        assert wal.repair_tail() == 7

    def test_torn_bytes_never_land_whole_frame(self):
        crash = CrashSchedule(at_step=1, torn_bytes=10_000)
        wal = WriteAheadLog(crash=crash)
        with pytest.raises(ControllerCrash):
            wal.append("op", {"x": 1})
        assert wal.scan().truncated  # strictly less than the full frame
        assert wal.records() == ()

    def test_no_schedule_is_free(self):
        wal = WriteAheadLog()
        wal.append("op", {})
        assert len(wal) == 1
