"""Tests for DurableController idempotency tokens.

A retried intent mutation carrying its original token must replay the
committed result from the journal -- one WAL record, one hardware
apply, no double effect -- including across a crash-recovery boundary
(the crash-mid-retry scenario the serving layer's retry loop depends
on).
"""

import pytest

from repro.control import CrashSchedule, DurableController, recover
from repro.control.journal import KIND_OP
from repro.core.errors import ControllerCrash, IdempotencyError, PortInUseError
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId

RADIX = 16


def build_manager(num_ocses: int = 2) -> FabricManager:
    mgr = FabricManager()
    for i in range(num_ocses):
        mgr.add_switch(OcsId(i), SimpleSwitch(RADIX))
    return mgr


def op_records(ctl: DurableController):
    return [r for r in ctl.wal.records() if r.kind == KIND_OP]


class TestTokenReplay:
    def test_retried_establish_replays_without_new_record(self):
        ctl = DurableController(manager=build_manager())
        first = ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        records_before = len(op_records(ctl))
        again = ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        assert again == first
        assert len(op_records(ctl)) == records_before
        assert ctl.manager.switch(OcsId(0)).state.south_of(0) == 8

    def test_untokened_retry_still_fails_loudly(self):
        ctl = DurableController(manager=build_manager())
        ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8)
        with pytest.raises(Exception):
            ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8)

    def test_retried_teardown_is_idempotent(self):
        ctl = DurableController(manager=build_manager())
        ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="t-est")
        ctl.teardown(LinkId("lk-a"), token="t-down")
        records_before = len(op_records(ctl))
        ctl.teardown(LinkId("lk-a"), token="t-down")  # replay, not an error
        assert len(op_records(ctl)) == records_before
        assert ctl.manager.switch(OcsId(0)).state.south_of(0) is None

    def test_retried_reconfigure_replays_committed_duration(self):
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="t-est")
        sw = mgr.switch(OcsId(0))
        target = sw.state.copy()
        target.disconnect(0)
        target.connect(0, 9)
        first = ctl.reconfigure({OcsId(0): target}, token="t-rc")
        records_before = len(ctl.wal.records())
        again = ctl.reconfigure({OcsId(0): target}, token="t-rc")
        assert again == first
        assert len(ctl.wal.records()) == records_before
        assert sw.state.south_of(0) == 9

    def test_distinct_tokens_do_not_collide(self):
        ctl = DurableController(manager=build_manager())
        ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-a")
        with pytest.raises(PortInUseError):
            ctl.establish(LinkId("lk-b"), OcsId(0), 0, 8, token="tok-b")

    def test_token_table_is_bounded(self):
        ctl = DurableController(manager=build_manager(), token_table_cap=4)
        for n in range(6):
            ctl.establish(LinkId(f"lk-{n}"), OcsId(0), n, n + 8, token=f"tok-{n}")
        assert ctl.known_tokens == 4


class TestTokenEviction:
    def test_replay_after_eviction_raises_loudly(self):
        # Once a token falls off the table the controller can no longer
        # tell a retry from a new request: re-executing would silently
        # double-apply, so presenting an evicted token must raise.
        ctl = DurableController(manager=build_manager(), token_table_cap=4)
        for n in range(6):
            ctl.establish(LinkId(f"lk-{n}"), OcsId(0), n, n + 8, token=f"tok-{n}")
        assert ctl.known_tokens == 4
        assert ctl.tokens_evicted == 2
        with pytest.raises(IdempotencyError):
            ctl.establish(LinkId("lk-0"), OcsId(0), 0, 8, token="tok-0")
        # A retained token still replays without a new record.
        records_before = len(op_records(ctl))
        ctl.establish(LinkId("lk-5"), OcsId(0), 5, 13, token="tok-5")
        assert len(op_records(ctl)) == records_before

    def test_eviction_survives_checkpoint_and_recovery(self):
        # Checkpoint compaction drops the evicted token's op record, so
        # without durable eviction state a post-recovery retry would
        # look brand new and re-execute.  The checkpoint carries the
        # evicted set; the recovered controller still refuses.
        mgr = build_manager()
        ctl = DurableController(manager=mgr, token_table_cap=2)
        for n in range(4):
            ctl.establish(LinkId(f"lk-{n}"), OcsId(0), n, n + 8, token=f"tok-{n}")
        assert ctl.tokens_evicted == 2
        ctl.checkpoint()
        ctl2, _ = recover(mgr, ctl.wal.storage)
        assert ctl2.tokens_evicted == 2
        with pytest.raises(IdempotencyError):
            ctl2.establish(LinkId("lk-0"), OcsId(0), 0, 8, token="tok-0")

    def test_uncompacted_records_resurrect_evicted_tokens(self):
        # Without a checkpoint the evicted token's op record is still in
        # the WAL, so recovery legitimately rebuilds its committed
        # result -- the retry replays instead of erroring.
        mgr = build_manager()
        ctl = DurableController(manager=mgr, token_table_cap=2)
        for n in range(4):
            ctl.establish(LinkId(f"lk-{n}"), OcsId(0), n, n + 8, token=f"tok-{n}")
        assert ctl.tokens_evicted == 2
        ctl2, _ = recover(mgr, ctl.wal.storage)
        assert ctl2.tokens_evicted == 0
        records_before = len(op_records(ctl2))
        link = ctl2.establish(LinkId("lk-0"), OcsId(0), 0, 8, token="tok-0")
        assert str(link.link_id) == "lk-0"
        assert len(op_records(ctl2)) == records_before


class TestCrashMidRetry:
    def test_crash_after_journal_then_retry_does_not_double_apply(self):
        # Crash exactly at the "op-durable" step: the WAL record landed,
        # the hardware apply did not.  Recovery rolls the op forward;
        # the client's retry with the same token must replay, not
        # re-journal or re-apply.
        mgr = build_manager()
        crash = CrashSchedule(at_step=2)  # step 1 = wal-append, step 2 = op-durable
        ctl = DurableController(manager=mgr, crash=crash)
        with pytest.raises(ControllerCrash):
            ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        assert crash.fired_label == "op-durable"

        ctl2, report = recover(mgr, ctl.wal.storage)
        assert report.state_digest
        # Recovery rolled the journaled intent forward onto hardware.
        assert mgr.switch(OcsId(0)).state.south_of(0) == 8

        records_before = len(op_records(ctl2))
        link = ctl2.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        assert str(link.link_id) == "lk-a"
        assert len(op_records(ctl2)) == records_before
        assert mgr.switch(OcsId(0)).state.south_of(0) == 8

    def test_rolled_back_transaction_leaves_token_spendable(self):
        # A txn token is only burned at txn-commit; a failed/rolled-back
        # transaction must leave the retry free to re-execute.
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="t-est")
        sw = mgr.switch(OcsId(0))
        target = sw.state.copy()
        target.disconnect(0)
        target.connect(0, 9)
        crash = CrashSchedule(at_step=2)  # txn-begin durable, apply crashes
        ctl.crash = crash
        ctl.wal.crash = crash
        with pytest.raises(ControllerCrash):
            ctl.reconfigure({OcsId(0): target}, token="t-rc")

        ctl2, _ = recover(mgr, ctl.wal.storage)
        # The token was never burned: the retry re-executes for real.
        duration = ctl2.reconfigure({OcsId(0): target}, token="t-rc")
        assert duration >= 0.0
        assert sw.state.south_of(0) == 9
        # And now it *is* burned: a further retry replays.
        records_before = len(ctl2.wal.records())
        assert ctl2.reconfigure({OcsId(0): target}, token="t-rc") == duration
        assert len(ctl2.wal.records()) == records_before


class TestTokenPersistence:
    def test_tokens_survive_recovery_from_ops(self):
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        first = ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        ctl2, _ = recover(mgr, ctl.wal.storage)
        records_before = len(op_records(ctl2))
        again = ctl2.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        assert (again.link_id, again.north, again.south) == (
            first.link_id, first.north, first.south
        )
        assert len(op_records(ctl2)) == records_before

    def test_tokens_survive_checkpoint_compaction(self):
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        ctl.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        ctl.checkpoint()
        ctl2, _ = recover(mgr, ctl.wal.storage)
        assert ctl2.known_tokens == ctl.known_tokens
        records_before = len(op_records(ctl2))
        ctl2.establish(LinkId("lk-a"), OcsId(0), 0, 8, token="tok-1")
        assert len(op_records(ctl2)) == records_before
