"""Tests for repro.control.reconcile (anti-entropy drift repair)."""

import pytest

from repro.control import Drift, DriftKind, Reconciler
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId
from repro.faults.events import FaultKind, ocs_target
from repro.faults.injector import FaultInjector
from repro.faults.resilience import ControlPlaneFaults, RetryPolicy

RADIX = 16


@pytest.fixture
def mgr():
    m = FabricManager()
    m.add_switch(OcsId(0), SimpleSwitch(RADIX))
    m.add_switch(OcsId(1), SimpleSwitch(RADIX))
    m.establish(LinkId("a"), OcsId(0), 0, 8)
    m.establish(LinkId("b"), OcsId(0), 1, 9)
    m.establish(LinkId("c"), OcsId(1), 0, 8)
    return m


@pytest.fixture
def rec(mgr):
    return Reconciler(manager=mgr)


class TestDiff:
    def test_clean_fabric_has_no_drift(self, rec):
        assert rec.diff() == ()

    def test_missing_circuit(self, mgr, rec):
        mgr.switch(OcsId(0)).state.disconnect(0)
        (drift,) = rec.diff()
        assert drift.kind is DriftKind.MISSING_CIRCUIT
        assert drift.link_id == LinkId("a")
        assert (drift.north, drift.want_south, drift.have_south) == (0, 8, None)

    def test_wrong_peer(self, mgr, rec):
        state = mgr.switch(OcsId(0)).state
        state.disconnect(0)
        state.connect(0, 12)
        (drift,) = rec.diff()
        assert drift.kind is DriftKind.WRONG_PEER
        assert (drift.want_south, drift.have_south) == (8, 12)

    def test_orphan_circuit(self, mgr, rec):
        mgr.switch(OcsId(1)).state.connect(5, 13)
        (drift,) = rec.diff()
        assert drift.kind is DriftKind.ORPHAN_CIRCUIT
        assert drift.link_id is None
        assert (drift.ocs, drift.north, drift.have_south) == (OcsId(1), 5, 13)

    def test_str_is_informative(self, mgr, rec):
        mgr.switch(OcsId(0)).state.disconnect(0)
        text = str(rec.diff()[0])
        assert "missing-circuit" in text and "want S8" in text


class TestRepair:
    def test_missing_circuit_restored(self, mgr, rec):
        mgr.switch(OcsId(0)).state.disconnect(0)
        report = rec.run()
        assert report.converged
        assert report.rounds == 1
        assert mgr.switch(OcsId(0)).state.south_of(0) == 8
        assert mgr.verify_links() == ()

    def test_wrong_peer_rehomed_without_touching_bystanders(self, mgr, rec):
        state = mgr.switch(OcsId(0)).state
        state.disconnect(0)
        state.connect(0, 12)
        report = rec.run()
        assert report.converged
        assert state.south_of(0) == 8
        assert state.south_of(1) == 9  # bystander on the same switch
        assert mgr.switch(OcsId(1)).state.south_of(0) == 8  # other switch
        # Only the drifted circuit was disturbed.
        assert report.repaired_circuits <= 2

    def test_orphans_dropped_by_default(self, mgr, rec):
        mgr.switch(OcsId(1)).state.connect(5, 13)
        report = rec.run()
        assert report.converged
        assert mgr.switch(OcsId(1)).state.south_of(5) is None

    def test_orphans_kept_when_configured(self, mgr):
        rec = Reconciler(manager=mgr, drop_orphans=False)
        mgr.switch(OcsId(1)).state.connect(5, 13)
        report = rec.run()
        assert report.converged  # nothing actionable remains
        assert report.rounds == 0
        assert mgr.switch(OcsId(1)).state.south_of(5) == 13  # left in place
        assert len(rec.diff()) == 1  # still reported

    def test_untouched_switch_not_in_targets(self, mgr, rec):
        mgr.switch(OcsId(0)).state.disconnect(0)
        targets = rec.repair_targets(rec.diff())
        assert set(targets) == {OcsId(0)}

    def test_multi_switch_drift_repaired_in_one_round(self, mgr, rec):
        mgr.switch(OcsId(0)).state.disconnect(0)
        mgr.switch(OcsId(1)).state.disconnect(0)
        report = rec.run()
        assert report.converged and report.rounds == 1
        assert mgr.verify_links() == ()

    def test_initial_drifts_recorded(self, mgr, rec):
        mgr.switch(OcsId(0)).state.disconnect(0)
        report = rec.run()
        assert len(report.initial_drifts) == 1
        assert isinstance(report.initial_drifts[0], Drift)


class TestRepairUnderFaults:
    def test_rpc_timeouts_absorbed_by_retries(self, mgr):
        injector = FaultInjector(seed=3)
        faults = ControlPlaneFaults().attach(injector)
        injector.schedule(0.0, FaultKind.RPC_TIMEOUT, ocs_target(0), severity=2.0)
        injector.pop_next()
        mgr.switch(OcsId(0)).state.disconnect(0)
        rec = Reconciler(
            manager=mgr, policy=RetryPolicy(max_retries=4), faults=faults, seed=3
        )
        report = rec.run()
        assert report.converged
        assert report.rollbacks == 0
        assert mgr.verify_links() == ()

    def test_exhausted_retries_roll_back_and_retry_next_round(self, mgr):
        injector = FaultInjector(seed=3)
        faults = ControlPlaneFaults().attach(injector)
        injector.schedule(0.0, FaultKind.RPC_TIMEOUT, ocs_target(0), severity=2.0)
        injector.pop_next()
        mgr.switch(OcsId(0)).state.disconnect(0)
        rec = Reconciler(
            manager=mgr, policy=RetryPolicy(max_retries=1), faults=faults, seed=3
        )
        report = rec.run()
        # First round exhausts retries and rolls back; a later round
        # (timeouts spent) lands the repair.
        assert report.rollbacks >= 1
        assert report.converged
        assert mgr.verify_links() == ()
