"""Tests for repro.control.journal (durable controller + crash recovery)."""

import pytest

from repro.control import CrashSchedule, DurableController, Reconciler, recover
from repro.control.journal import KIND_CHECKPOINT, KIND_OP, KIND_TXN_COMMIT
from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import (
    ConfigurationError,
    ControllerCrash,
    CrossConnectError,
    PortInUseError,
    RecoveryError,
)
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId

RADIX = 16
NUM_OCSES = 3
LINKS_PER_OCS = 4


def build_manager() -> FabricManager:
    mgr = FabricManager()
    for i in range(NUM_OCSES):
        mgr.add_switch(OcsId(i), SimpleSwitch(RADIX))
    return mgr


def seed_links(ctl: DurableController) -> None:
    for i in range(NUM_OCSES):
        for n in range(LINKS_PER_OCS):
            ctl.establish(LinkId(f"lk-{i}-{n}"), OcsId(i), n, n + 8)


def shifted_targets(mgr: FabricManager) -> dict:
    """Move every switch's first two circuits to new south ports."""
    out = {}
    for i in range(NUM_OCSES):
        sw = mgr.switch(OcsId(i))
        circuits = dict(sw.state.circuits)
        for n in sorted(circuits)[:2]:
            circuits[n] = circuits[n] + 4
        out[OcsId(i)] = CrossConnectMap.from_circuits(RADIX, circuits)
    return out


@pytest.fixture
def ctl():
    return DurableController(manager=build_manager())


class TestJournaledOps:
    def test_genesis_checkpoint_written(self, ctl):
        (record,) = ctl.wal.records()
        assert record.kind == KIND_CHECKPOINT

    def test_establish_journals_then_applies(self, ctl):
        ctl.establish(LinkId("x"), OcsId(0), 1, 9)
        kinds = [r.kind for r in ctl.wal.records()]
        assert kinds == [KIND_CHECKPOINT, KIND_OP]
        assert ctl.manager.switch(OcsId(0)).state.south_of(1) == 9

    def test_establish_validates_before_journaling(self, ctl):
        ctl.establish(LinkId("x"), OcsId(0), 1, 9)
        before = ctl.wal.byte_size
        with pytest.raises(ConfigurationError):
            ctl.establish(LinkId("x"), OcsId(1), 2, 9)  # duplicate id
        with pytest.raises(PortInUseError):
            ctl.establish(LinkId("y"), OcsId(0), 1, 10)  # busy north
        assert ctl.wal.byte_size == before  # nothing journaled

    def test_teardown_validates_before_journaling(self, ctl):
        before = ctl.wal.byte_size
        with pytest.raises(Exception):
            ctl.teardown(LinkId("ghost"))
        assert ctl.wal.byte_size == before

    def test_adopt_requires_existing_circuit(self, ctl):
        with pytest.raises(CrossConnectError):
            ctl.adopt_link(LinkId("x"), OcsId(0), 1, 9)

    def test_reconfigure_commit_marker_last(self, ctl):
        seed_links(ctl)
        ctl.reconfigure(shifted_targets(ctl.manager))
        assert ctl.wal.records()[-1].kind == KIND_TXN_COMMIT

    def test_checkpoint_compacts(self, ctl):
        seed_links(ctl)
        grown = ctl.wal.byte_size
        record = ctl.checkpoint()
        assert ctl.wal.byte_size < grown
        assert [r.seq for r in ctl.wal.records()] == [record.seq]


class TestCrashBetweenMarkerAndApply:
    def test_op_rolls_forward(self):
        """Crash exactly between the commit marker (the op record) and
        the hardware apply: recovery must roll the op forward."""
        mgr = build_manager()
        # Step 1 is the WAL append itself (frame not yet durable); step 2
        # fires after the record landed, before the hardware apply.
        crash = CrashSchedule(at_step=2)
        ctl = DurableController(manager=mgr, crash=crash)
        with pytest.raises(ControllerCrash) as exc:
            ctl.establish(LinkId("x"), OcsId(0), 1, 9)
        assert exc.value.label == "op-durable"
        assert mgr.switch(OcsId(0)).state.south_of(1) is None  # never applied
        ctl2, report = recover(mgr, ctl.wal.storage)
        assert report.open_txn == "none"
        assert mgr.switch(OcsId(0)).state.south_of(1) == 9
        assert str(ctl2.manager.link(LinkId("x")).link_id) == "x"
        assert mgr.verify_links() == ()

    def test_teardown_rolls_forward(self):
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        ctl.establish(LinkId("x"), OcsId(0), 1, 9)
        crash = CrashSchedule(at_step=2)  # after the record, before the apply
        ctl.crash = crash
        ctl.wal.crash = crash
        with pytest.raises(ControllerCrash):
            ctl.teardown(LinkId("x"))
        assert mgr.switch(OcsId(0)).state.south_of(1) == 9  # not yet applied
        _, report = recover(mgr, ctl.wal.storage)
        assert mgr.switch(OcsId(0)).state.south_of(1) is None  # rolled forward
        assert mgr.links == ()


class TestCrashSweep:
    def sweep(self):
        """Crash at every instrumented step of a 3-OCS reconfiguration."""
        mgr0 = build_manager()
        ctl0 = DurableController(manager=mgr0)
        seed_links(ctl0)
        wal_bytes = bytes(ctl0.wal.storage)
        ctl0.reconfigure(shifted_targets(mgr0))
        committed = ctl0.state_digest()

        outcomes = []
        step = 1
        while True:
            mgr = build_manager()
            storage = bytearray(wal_bytes)
            ctl, _ = recover(mgr, storage)
            crash = CrashSchedule(at_step=step)
            ctl.crash = crash
            ctl.wal.crash = crash
            try:
                ctl.reconfigure(shifted_targets(mgr))
            except ControllerCrash:
                _, report = recover(mgr, storage)
                outcomes.append((crash.fired_label, report, mgr))
                step += 1
                continue
            return committed, outcomes

    def test_every_crash_point_recovers(self):
        committed, outcomes = self.sweep()
        # txn-begin append + begin-durable + 3x(apply, append, durable)
        # + commit append + commit-durable = 13 instrumented steps.
        assert len(outcomes) == 13
        for label, report, mgr in outcomes:
            assert mgr.verify_links() == (), label
            assert Reconciler(manager=mgr, drop_orphans=False).run().converged

    def test_outcomes_deterministic(self):
        committed, outcomes = self.sweep()
        forward = {r.state_digest for _, r, _ in outcomes if r.open_txn == "rolled-forward"}
        backward = {r.state_digest for _, r, _ in outcomes if r.open_txn != "rolled-forward"}
        assert forward == {committed}
        assert len(backward) == 1
        # Only the post-commit-marker crash rolls forward.
        assert sum(1 for _, r, _ in outcomes if r.open_txn == "rolled-forward") == 1

    def test_replay_idempotent(self):
        # Two recoveries over the same media yield identical digests and
        # the second one drives no hardware at all.
        mgr0 = build_manager()
        ctl0 = DurableController(manager=mgr0)
        seed_links(ctl0)
        storage = bytearray(ctl0.wal.storage)
        mgr = build_manager()
        _, r1 = recover(mgr, storage)
        _, r2 = recover(mgr, storage)
        assert r1.state_digest == r2.state_digest
        assert r2.switches_repaired == 0
        assert r2.circuits_driven == 0


class TestTornWriteRecovery:
    def test_torn_final_frame_discarded_and_seq_reused(self):
        mgr = build_manager()
        crash = CrashSchedule(at_step=1, torn_bytes=9)
        ctl = DurableController(manager=mgr, crash=crash)
        with pytest.raises(ControllerCrash):
            ctl.establish(LinkId("x"), OcsId(0), 1, 9)
        ctl2, report = recover(mgr, ctl.wal.storage)
        assert report.tail_bytes_dropped == 9
        assert mgr.links == ()  # the torn op never committed
        # The reopened log reuses the seq the torn frame never claimed.
        link = ctl2.establish(LinkId("x"), OcsId(0), 1, 9)
        assert link.south == 9
        assert len(ctl2.wal.records(strict=True)) == 2


class TestRecoveryErrors:
    def test_unregistered_switch_rejected(self):
        mgr = build_manager()
        ctl = DurableController(manager=mgr)
        ctl.establish(LinkId("x"), OcsId(2), 1, 9)
        sparse = FabricManager()
        sparse.add_switch(OcsId(0), SimpleSwitch(RADIX))
        with pytest.raises(RecoveryError):
            recover(sparse, ctl.wal.storage)

    def test_recovery_digest_is_function_of_journal(self):
        mgr_a, mgr_b = build_manager(), build_manager()
        ctl = DurableController(manager=mgr_a)
        seed_links(ctl)
        storage = bytearray(ctl.wal.storage)
        _, ra = recover(build_manager(), bytearray(storage))
        _, rb = recover(build_manager(), bytearray(storage))
        assert ra.state_digest == rb.state_digest
