"""Tests for repro.control.health (flap damping, quarantine, release)."""

import pytest

from repro.control.health import CircuitHealth, DampingPolicy, FleetHealthWatchdog
from repro.core.errors import ConfigurationError
from repro.fabric.repair import RepairLoop
from repro.faults.events import FaultKind, endpoint_target
from repro.faults.injector import FaultInjector
from repro.ocs.palomar import PALOMAR_USABLE_PORTS, PalomarOcs
from repro.ocs.telemetry import Anomaly

POLICY = DampingPolicy(
    flap_penalty=1000.0,
    anomaly_penalty=600.0,
    suppress_threshold=2500.0,
    reuse_threshold=800.0,
    half_life_s=60.0,
    max_penalty=8000.0,
    hold_down_s=120.0,
)


@pytest.fixture
def ocs():
    device = PalomarOcs.build(name="health", seed=7)
    for j in range(4):
        device.connect(j, j)
    return device


@pytest.fixture
def loop(ocs):
    return RepairLoop(ocs, spare_south_ports=[PALOMAR_USABLE_PORTS])


@pytest.fixture
def dog(ocs, loop):
    w = FleetHealthWatchdog(policy=POLICY)
    for j in range(4):
        w.watch_circuit(0, j, j)
    w.add_repair_loop(0, loop)
    return w


class TestDampingPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DampingPolicy(reuse_threshold=0.0)
        with pytest.raises(ConfigurationError):
            DampingPolicy(reuse_threshold=3000.0, suppress_threshold=2500.0)
        with pytest.raises(ConfigurationError):
            DampingPolicy(suppress_threshold=9000.0, max_penalty=8000.0)
        with pytest.raises(ConfigurationError):
            DampingPolicy(half_life_s=0.0)

    def test_exponential_decay(self):
        assert POLICY.decayed(1000.0, 60.0) == pytest.approx(500.0)
        assert POLICY.decayed(1000.0, 120.0) == pytest.approx(250.0)
        assert POLICY.decayed(1000.0, 0.0) == 1000.0

    def test_max_suppress_bounded(self):
        # From the ceiling, penalty reaches reuse in a bounded time.
        t = POLICY.max_suppress_s()
        assert POLICY.decayed(POLICY.max_penalty, t) == pytest.approx(
            POLICY.reuse_threshold
        )


class TestPenaltyAccounting:
    def test_flaps_accumulate_with_decay(self, dog):
        assert dog.observe_flap(0, 0, 0.0) == pytest.approx(1000.0)
        assert dog.observe_flap(0, 0, 60.0) == pytest.approx(1500.0)
        assert dog.penalty(0, 0, 120.0) == pytest.approx(750.0)

    def test_penalty_capped(self, dog):
        for k in range(20):
            dog.observe_flap(0, 0, float(k))
        assert dog.penalty(0, 0, 19.0) <= POLICY.max_penalty

    def test_anomaly_charges_its_own_penalty(self, dog):
        anomaly = Anomaly(circuit=(1, 1), kind="loss-drift", detail="x")
        assert dog.observe_anomaly(0, anomaly, 0.0) == pytest.approx(600.0)

    def test_unwatched_circuit_rejected(self, dog):
        with pytest.raises(ConfigurationError):
            dog.observe_flap(0, 99, 0.0)
        with pytest.raises(ConfigurationError):
            dog.watch_circuit(0, 0, 0)  # duplicate

    def test_injector_attach_feeds_flaps(self, dog):
        injector = FaultInjector(seed=0)
        dog.map_endpoint(endpoint_target("tx0-a"), 0, 0)
        dog.attach(injector)
        injector.schedule(
            5.0, FaultKind.TRANSCEIVER_FLAP, endpoint_target("tx0-a"),
            clear_after_s=1.0,
        )
        injector.pop_next()  # flap edge
        injector.pop_next()  # recovery edge (ignored)
        assert dog.penalty(0, 0, 5.0) == pytest.approx(1000.0)
        assert dog.circuit(0, 0).flaps == 1


class TestQuarantine:
    def flap_to_suppress(self, dog, t0=0.0):
        """Three rapid flaps push the penalty past suppress."""
        for k in range(3):
            dog.observe_flap(0, 0, t0 + k * 1.0)

    def test_quarantine_steers_to_spare(self, dog, ocs):
        self.flap_to_suppress(dog)
        (action,) = dog.poll(3.0)
        assert action.action == "steer"
        assert ocs.state.south_of(0) == PALOMAR_USABLE_PORTS
        assert dog.quarantined() == ((0, 0),)
        assert dog.held_out() == ()  # capacity preserved

    def test_bystanders_untouched(self, dog, ocs):
        self.flap_to_suppress(dog)
        dog.poll(3.0)
        for j in range(1, 4):
            assert ocs.state.south_of(j) == j

    def test_hold_out_when_pool_dry(self, ocs):
        w = FleetHealthWatchdog(policy=POLICY)
        for j in range(4):
            w.watch_circuit(0, j, j)
        w.add_repair_loop(0, RepairLoop(ocs, spare_south_ports=[]))
        for k in range(3):
            w.observe_flap(0, 0, float(k))
        (action,) = w.poll(3.0)
        assert action.action == "hold-out"
        assert w.held_out() == ((0, 0),)
        assert w.held_out_fraction(0) == pytest.approx(0.25)
        assert ocs.state.south_of(0) == 0  # nothing moved

    def test_no_double_quarantine(self, dog):
        self.flap_to_suppress(dog)
        assert len(dog.poll(3.0)) == 1
        assert dog.poll(4.0) == []  # already quarantined

    def test_below_suppress_never_quarantines(self, dog):
        dog.observe_flap(0, 0, 0.0)
        dog.observe_flap(0, 0, 1.0)  # 2000 < 2500
        assert dog.poll(2.0) == []


class TestRelease:
    def arm(self, dog):
        for k in range(3):
            dog.observe_flap(0, 0, float(k))
        dog.poll(3.0)

    def test_release_waits_for_hold_down_and_decay(self, dog):
        self.arm(dog)
        # Penalty ~2832 at t=3; reaches reuse (800) after ~110 s of decay,
        # but the hold-down keeps it quarantined until t >= 123.
        assert dog.poll(100.0) == []
        actions = dog.poll(3.0 + POLICY.hold_down_s + 120.0)
        assert [a.action for a in actions] == ["release-home"]
        assert dog.quarantined() == ()

    def test_release_home_restores_original_port(self, dog, ocs):
        self.arm(dog)
        assert ocs.state.south_of(0) == PALOMAR_USABLE_PORTS
        dog.poll(400.0)
        assert ocs.state.south_of(0) == 0
        assert dog.circuit(0, 0).steered_to is None

    def test_release_stays_on_spare_when_home_fails_requalification(
        self, dog, ocs, loop
    ):
        self.arm(dog)
        loop.degrade_south_port(0, loop.requalify_fail_db + 2.0)  # home plant bad
        (action,) = dog.poll(400.0)
        assert action.action == "release"
        assert ocs.state.south_of(0) == PALOMAR_USABLE_PORTS  # stays put
        assert dog.quarantined() == ()

    def test_held_out_release_requires_requalification(self, ocs):
        dry = RepairLoop(ocs, spare_south_ports=[])
        w = FleetHealthWatchdog(policy=POLICY)
        w.watch_circuit(0, 0, 0)
        w.add_repair_loop(0, dry)
        for k in range(3):
            w.observe_flap(0, 0, float(k))
        w.poll(3.0)
        dry.degrade_south_port(0, dry.requalify_fail_db + 2.0)
        assert w.poll(400.0) == []  # still dark: plant fails grading
        assert w.held_out_fraction() == pytest.approx(1.0)

    def test_actions_audit_trail(self, dog):
        self.arm(dog)
        dog.poll(400.0)
        assert [a.action for a in dog.actions] == ["steer", "release-home"]
        assert all(a.key == (0, 0) for a in dog.actions)


class TestCapacityFeeds:
    def test_fraction_scopes(self, dog):
        assert dog.held_out_fraction() == 0.0
        assert dog.held_out_fraction(ocs_index=5) == 0.0  # nothing watched there

    def test_state_objects_exposed(self, dog):
        state = dog.circuit(0, 2)
        assert isinstance(state, CircuitHealth)
        assert (state.south, state.home_south) == (2, 2)
        assert not state.quarantined
