"""Tests for repro.control.replication (leases, fencing, failover)."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    NotLeaderError,
    QuorumError,
    ReplicationError,
)
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import OcsId
from repro.faults.events import (
    FaultKind,
    controller_target,
    network_target,
    partition_groups_param,
)
from repro.faults.injector import FaultInjector
from repro.control.replication import (
    LogEntry,
    ReplicationGroup,
    Role,
    apply_entry,
    log_digest,
    serial_replay_digest,
)


def build_manager() -> FabricManager:
    mgr = FabricManager()
    mgr.add_switch(OcsId(0), SimpleSwitch(8))
    return mgr


def make_group(lease_s: float = 1.0) -> ReplicationGroup:
    group = ReplicationGroup(
        num_replicas=3, manager_factory=build_manager, lease_s=lease_s
    )
    group.elect(0, 0.0)
    return group


RETARGET = {"op": "retarget", "changes": [[0, 0, 4]]}


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            ReplicationGroup(num_replicas=0)
        with pytest.raises(ConfigurationError):
            ReplicationGroup(lease_s=0.0)

    def test_unknown_op_rejected(self):
        with pytest.raises(ReplicationError):
            apply_entry(build_manager(), {"op": "meltdown"})


class TestElectionAndCommit:
    def test_elect_commits_barrier_and_replicates(self):
        group = make_group()
        assert group.leader_index == 0
        assert group.nodes[0].role is Role.LEADER
        # The election barrier is committed on a quorum.
        assert group.commits == 1
        assert all(len(n.log) == 1 for n in group.nodes)

    def test_submit_replicates_and_applies_everywhere(self):
        group = make_group()
        entry = group.submit(RETARGET, 0.1, token="t1")
        assert entry.payload["op"] == "retarget"
        digests = {n.state_digest() for n in group.nodes}
        assert len(digests) == 1
        assert group.state_digest() == group.replay_digest()

    def test_token_replay_is_idempotent(self):
        group = make_group()
        first = group.submit(RETARGET, 0.1, token="t1")
        again = group.submit(RETARGET, 0.2, token="t1")
        assert again is not None and again.seq == first.seq
        assert group.commits == 2  # barrier + one real commit, no dup

    def test_standby_blocked_while_lease_live_then_wins_after_expiry(self):
        group = make_group(lease_s=1.0)
        with pytest.raises(QuorumError):
            group.elect(1, 0.5)  # replica 0's lease still looks live
        assert group.lease_refusals > 0
        epoch = group.elect(1, 2.0)  # lease lapsed everywhere
        assert group.leader_index == 1
        assert epoch > 1


class TestFencing:
    def deposed_leader(self, group: ReplicationGroup):
        """Partition the leader away, elect a successor, heal -- the old
        leader still believes it leads at a stale epoch."""
        injector = FaultInjector(seed=0)
        group.attach_faults(injector)
        injector.schedule(
            1.0, FaultKind.NETWORK_PARTITION, controller_target(0),
            clear_after_s=1.0,
        )
        injector.advance_to(1.1)
        group.elect(1, 2.5)  # old lease expired; 1 and 2 form a quorum
        injector.advance_to(2.6)  # heal: replica 0 is back, still "LEADER"
        return group.nodes[0]

    def test_deposed_leader_write_is_fenced_not_applied(self):
        group = make_group()
        stale = self.deposed_leader(group)
        assert stale.role is Role.LEADER and group.leader_index == 1
        before = group.commits
        with pytest.raises(QuorumError):
            group.submit_as(0, RETARGET, 2.7)
        assert group.fencing_rejections >= 2  # both peers refused the ship
        assert group.commits == before
        assert group.committed_ops_lost() == 0

    def test_divergent_suffix_truncated_on_next_ship(self):
        group = make_group()
        stale = self.deposed_leader(group)
        with pytest.raises(QuorumError):
            group.submit_as(0, RETARGET, 2.7)
        stale_len = len(stale.log)  # carries the dead uncommitted entry
        group.submit({"op": "noop"}, 2.8)  # real leader ships; 0 adopts
        assert len(stale.log) != stale_len or stale.log == group.nodes[1].log
        assert stale.log == group.nodes[1].log
        assert stale.role is Role.FOLLOWER  # learned of its successor
        assert group.state_digest() == group.replay_digest()

    def test_one_leader_per_epoch_ledger(self):
        group = make_group()
        group.submit(RETARGET, 0.1)
        group.elect(1, 2.0)
        group.submit({"op": "noop"}, 2.1)
        leaders = group.epoch_leaders()
        assert set(leaders.values()) <= {0, 1}
        for record in group.acked_commits():
            assert leaders[record.epoch] == record.leader


class TestCrashFailover:
    def test_leader_crash_triggers_outage_then_failover(self):
        group = make_group(lease_s=0.2)
        injector = FaultInjector(seed=0)
        group.attach_faults(injector)
        injector.schedule(0.5, FaultKind.CONTROLLER_CRASH, controller_target(0))
        injector.advance_to(0.6)
        with pytest.raises(NotLeaderError):
            group.submit(RETARGET, 0.6)
        group.elect(1, 0.8)  # lease (0.2 s) has lapsed
        assert group.leader_index == 1
        assert group.failover_durations_s  # the outage window closed
        assert group.unavailable_s > 0.0
        assert group.committed_ops_lost() == 0

    def test_restarted_replica_catches_up_on_heartbeat(self):
        group = make_group(lease_s=0.2)
        group.submit(RETARGET, 0.1, token="t1")
        injector = FaultInjector(seed=0)
        group.attach_faults(injector)
        injector.schedule(
            0.5, FaultKind.CONTROLLER_CRASH, controller_target(2),
            clear_after_s=0.5,
        )
        injector.advance_to(0.6)
        group.submit({"op": "retarget", "changes": [[0, 1, 5]]}, 0.7)
        injector.advance_to(1.1)  # replica 2 reboots with a stale manager
        assert group.heartbeat(1.2)
        node = group.nodes[2]
        assert node.log == group.nodes[0].log
        assert node.state_digest() == group.state_digest()


class TestPartitionsAndSkew:
    def test_minority_group_cannot_elect(self):
        group = make_group(lease_s=0.2)
        injector = FaultInjector(seed=0)
        group.attach_faults(injector)
        injector.schedule(
            0.5, FaultKind.NETWORK_PARTITION, network_target("control"),
            params=(partition_groups_param([[0], [1, 2]]),),
        )
        injector.advance_to(0.6)
        with pytest.raises(QuorumError):
            group.elect(0, 1.0)  # marooned old leader: 1 grant < quorum 2
        group.elect(1, 1.0)  # the majority side elects fine
        assert group.leader_index == 1
        assert group.client_reachable(1) and not group.client_reachable(0)

    def test_clock_skew_bends_lease_liveness_not_safety(self):
        group = make_group(lease_s=1.0)
        injector = FaultInjector(seed=0)
        group.attach_faults(injector)
        injector.schedule(
            0.1, FaultKind.CLOCK_SKEW, controller_target(1), severity=5.0
        )
        injector.schedule(
            0.1, FaultKind.CLOCK_SKEW, controller_target(2), severity=5.0
        )
        injector.advance_to(0.2)
        # Replicas 1 and 2 run fast clocks, so both see the live lease
        # as expired and form an early election quorum -- a liveness
        # wobble (the unskewed replica 0 still refuses)...
        group.elect(1, 0.3)
        assert group.leader_index == 1
        # ...but commits still require a true quorum, so nothing is lost
        # and the state machines agree byte for byte.
        group.submit(RETARGET, 0.4)
        assert group.committed_ops_lost() == 0
        assert group.state_digest() == group.replay_digest()


class TestLogIdentity:
    def test_log_digest_orders_and_distinguishes(self):
        a = [LogEntry(1, 0, {"op": "noop"}), LogEntry(1, 1, RETARGET)]
        b = [LogEntry(1, 0, {"op": "noop"}), LogEntry(2, 1, RETARGET)]
        assert log_digest(a) != log_digest(b)
        assert log_digest(a) == log_digest(list(a))

    def test_serial_replay_digest_matches_incremental(self):
        group = make_group()
        for k in range(6):
            group.submit(
                {"op": "retarget", "changes": [[0, k % 4, 4 + k % 4]]}, 0.1 * k
            )
        assert (
            serial_replay_digest(build_manager, group.committed_entries())
            == group.state_digest()
        )
