"""Tests for repro.faults.resilience (retry, backoff, rollback, isolation)."""

import numpy as np
import pytest

from repro.core.crossconnect import CrossConnectMap
from repro.core.errors import ConfigurationError, TransactionError
from repro.core.fabric_manager import FabricManager, SimpleSwitch
from repro.core.ids import LinkId, OcsId
from repro.faults.events import FaultKind, mirror_target, ocs_target
from repro.faults.injector import FaultInjector
from repro.faults.resilience import (
    ControlPlaneFaults,
    ResilientReconfigurer,
    RetryPolicy,
)

RADIX = 8


class RecordingMap(CrossConnectMap):
    """CrossConnectMap spy: logs every port-level mutation."""

    def __init__(self, radix: int):
        super().__init__(radix)
        self.ops = []

    def connect(self, north: int, south: int) -> None:
        self.ops.append(("connect", north, south))
        super().connect(north, south)

    def disconnect(self, north: int) -> int:
        self.ops.append(("disconnect", north))
        return super().disconnect(north)


class SpySwitch:
    """SwitchLike wrapper exposing a RecordingMap as its state."""

    def __init__(self, radix: int):
        self._state = RecordingMap(radix)

    @property
    def radix(self) -> int:
        return self._state.radix

    @property
    def state(self) -> RecordingMap:
        return self._state

    def apply_plan(self, plan) -> float:
        duration = plan.duration_ms()
        plan.apply(self._state)
        return duration


def make_manager(num_switches=1, spy=False):
    mgr = FabricManager()
    for i in range(num_switches):
        sw = SpySwitch(RADIX) if spy else SimpleSwitch(RADIX)
        mgr.add_switch(OcsId(i), sw)
    return mgr


def target_with(mgr, ocs_id, **circuits):
    """Copy of the switch state with extra circuits n<i>=s applied."""
    target = mgr.switch(ocs_id).state.copy()
    for key, south in circuits.items():
        target.connect(int(key[1:]), south)
    return target


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_ms=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_backoff_ms=10.0,
            backoff_multiplier=10.0,
            backoff_cap_ms=40.0,
            jitter_fraction=0.0,
        )
        rng = np.random.default_rng(0)
        assert policy.backoff_ms(1, rng) == 10.0
        # 100 ms raw, capped; stays at the cap from then on.
        assert policy.backoff_ms(2, rng) == 40.0
        assert policy.backoff_ms(3, rng) == 40.0

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(jitter_fraction=0.1, backoff_cap_ms=100.0)
        a = policy.backoff_ms(5, np.random.default_rng(4))
        b = policy.backoff_ms(5, np.random.default_rng(4))
        assert a == b
        assert 90.0 <= a <= 110.0


class TestControlPlaneFaults:
    def test_rpc_timeouts_are_consumed(self):
        faults = ControlPlaneFaults()
        faults.inject_rpc_timeouts(0, count=2)
        assert faults.rpc_attempt_fails(0)
        assert faults.rpc_attempt_fails(0)
        assert not faults.rpc_attempt_fails(0)
        assert not faults.rpc_attempt_fails(1)

    def test_injector_attachment_drives_state(self):
        inj = FaultInjector(seed=0)
        faults = ControlPlaneFaults().attach(inj)
        inj.schedule(1.0, FaultKind.RPC_TIMEOUT, ocs_target(2), severity=2.0)
        inj.schedule(2.0, FaultKind.MIRROR_STUCK, mirror_target(0, "N", 3))
        inj.schedule(3.0, FaultKind.MIRROR_STUCK, mirror_target(0, "N", 3), recovery=True)
        inj.advance_to(2.0)
        assert faults.rpc_attempt_fails(2) and faults.rpc_attempt_fails(2)
        assert not faults.rpc_attempt_fails(2)
        assert (0, "N", 3) in faults._stuck
        inj.advance_to(3.0)
        assert (0, "N", 3) not in faults._stuck


class TestTransactions:
    def test_clean_commit_single_attempt(self):
        mgr = make_manager()
        txn = ResilientReconfigurer(manager=mgr)
        result = txn.reconfigure({OcsId(0): target_with(mgr, OcsId(0), n0=1, n2=3)})
        assert result.attempts == {OcsId(0): 1}
        assert result.retries == 0
        assert mgr.switch(OcsId(0)).state.circuits == frozenset({(0, 1), (2, 3)})

    def test_retries_absorb_injected_timeouts(self):
        mgr = make_manager()
        faults = ControlPlaneFaults()
        faults.inject_rpc_timeouts(0, count=2)
        txn = ResilientReconfigurer(
            manager=mgr, policy=RetryPolicy(max_retries=3), faults=faults
        )
        result = txn.reconfigure({OcsId(0): target_with(mgr, OcsId(0), n0=1)})
        assert result.attempts == {OcsId(0): 3}
        assert result.total_attempts == 3
        assert result.retries == 2
        assert result.backoff_ms > 0
        assert mgr.switch(OcsId(0)).state.south_of(0) == 1

    def test_zero_retries_fails_fast(self):
        mgr = make_manager()
        pre = mgr.switch(OcsId(0)).state.copy()
        faults = ControlPlaneFaults()
        faults.inject_rpc_timeouts(0, count=1)
        txn = ResilientReconfigurer(
            manager=mgr, policy=RetryPolicy(max_retries=0), faults=faults
        )
        with pytest.raises(TransactionError) as err:
            txn.reconfigure({OcsId(0): target_with(mgr, OcsId(0), n0=1)})
        assert err.value.attempts == 1
        assert err.value.rolled_back
        assert err.value.ocs_id == OcsId(0)
        assert mgr.switch(OcsId(0)).state == pre

    def test_backoff_cap_reached_sums_exactly(self):
        mgr = make_manager()
        faults = ControlPlaneFaults()
        faults.inject_rpc_timeouts(0, count=3)
        policy = RetryPolicy(
            max_retries=3,
            base_backoff_ms=10.0,
            backoff_multiplier=10.0,
            backoff_cap_ms=40.0,
            jitter_fraction=0.0,
        )
        txn = ResilientReconfigurer(manager=mgr, policy=policy, faults=faults)
        result = txn.reconfigure({OcsId(0): target_with(mgr, OcsId(0), n0=1)})
        # Backoffs before retries 1..3: 10 + cap(100->40) + cap -> 90 ms.
        assert result.backoff_ms == pytest.approx(90.0)
        assert result.attempts == {OcsId(0): 4}

    def test_rollback_restores_exact_pre_transaction_maps(self):
        mgr = make_manager(num_switches=2)
        mgr.establish(LinkId("keep-a"), OcsId(0), 4, 5)
        mgr.establish(LinkId("keep-b"), OcsId(1), 6, 7)
        pre = {oid: mgr.switch(oid).state.copy() for oid in (OcsId(0), OcsId(1))}
        faults = ControlPlaneFaults()
        faults.inject_rpc_timeouts(1, count=10)  # second switch never lands
        txn = ResilientReconfigurer(
            manager=mgr, policy=RetryPolicy(max_retries=2), faults=faults
        )
        targets = {
            OcsId(0): target_with(mgr, OcsId(0), n0=1),
            OcsId(1): target_with(mgr, OcsId(1), n2=3),
        }
        with pytest.raises(TransactionError) as err:
            txn.reconfigure(targets)
        assert err.value.rolled_back
        assert err.value.ocs_id == OcsId(1)
        # Byte-exact restore on both the applied and the failed switch.
        assert mgr.switch(OcsId(0)).state == pre[OcsId(0)]
        assert mgr.switch(OcsId(1)).state == pre[OcsId(1)]
        # Pre-existing links survived the rollback.
        assert {link.link_id for link in mgr.links} == {
            LinkId("keep-a"),
            LinkId("keep-b"),
        }

    def test_mirror_stuck_blocks_only_touching_plans(self):
        mgr = make_manager()
        faults = ControlPlaneFaults()
        faults.stick_mirror(0, "N", 6)  # unrelated port: must not interfere
        txn = ResilientReconfigurer(manager=mgr, faults=faults)
        result = txn.reconfigure({OcsId(0): target_with(mgr, OcsId(0), n0=1)})
        assert result.attempts == {OcsId(0): 1}
        faults.stick_mirror(0, "N", 2)
        with pytest.raises(TransactionError) as err:
            txn.reconfigure({OcsId(0): target_with(mgr, OcsId(0), n2=3)})
        assert "mirror stuck" in str(err.value)
        assert err.value.rolled_back


class TestJobIsolation:
    def test_untouched_circuits_never_glitch_mid_retry(self):
        mgr = make_manager(spy=True)
        mgr.establish(LinkId("tenant"), OcsId(0), 0, 0)  # the bystander job
        spy = mgr.switch(OcsId(0)).state
        spy.ops.clear()
        faults = ControlPlaneFaults()
        faults.inject_rpc_timeouts(0, count=2)
        txn = ResilientReconfigurer(
            manager=mgr, policy=RetryPolicy(max_retries=3), faults=faults
        )
        target = mgr.switch(OcsId(0)).state.copy()
        target.connect(1, 2)
        txn.reconfigure({OcsId(0): target})
        assert spy.ops == [("connect", 1, 2)]  # north 0 untouched throughout

    def test_untouched_circuits_survive_rollback_untouched(self):
        mgr = make_manager(spy=True)
        mgr.establish(LinkId("tenant"), OcsId(0), 0, 0)
        mgr.establish(LinkId("victim"), OcsId(0), 1, 1)
        spy = mgr.switch(OcsId(0)).state
        spy.ops.clear()
        faults = ControlPlaneFaults()
        faults.stick_mirror(0, "S", 2)  # the make 1->2 can never land
        txn = ResilientReconfigurer(
            manager=mgr, policy=RetryPolicy(max_retries=1), faults=faults
        )
        target = mgr.switch(OcsId(0)).state.copy()
        target.disconnect(1)
        target.connect(1, 2)
        with pytest.raises(TransactionError):
            txn.reconfigure({OcsId(0): target})
        # The attempt never reached the switch, so nothing moved at all --
        # and in particular the bystander on north 0 was never disturbed.
        assert all(op[1] != 0 for op in spy.ops)
        assert mgr.switch(OcsId(0)).state.south_of(0) == 0
        assert mgr.switch(OcsId(0)).state.south_of(1) == 1
