"""Determinism pins: equal seeds mean byte-identical schedules and metrics.

The acceptance property of the fault subsystem: every schedule and every
chaos metric is a pure function of the seed.  The digests compare the
canonical byte representation of the full event stream, so these tests
catch any nondeterminism -- unordered iteration, unseeded draws, time-
or platform-dependent values -- anywhere in the pipeline.
"""

from repro.faults.chaos import SCENARIOS, SMOKE_KWARGS, run_scenario
from repro.faults.events import FaultKind, cube_target
from repro.faults.injector import FaultInjector
from repro.scheduler.allocator import ReconfigurableAllocator
from repro.scheduler.requests import WorkloadGenerator
from repro.scheduler.simulator import SchedulerSimulation
from repro.tpu.superpod import Superpod


def build_injector(seed):
    inj = FaultInjector(seed=seed)
    inj.schedule_poisson(
        FaultKind.CUBE_POWER_LOSS,
        [cube_target(i) for i in range(8)],
        rate_per_s=1.0 / 900.0,
        horizon_s=3600.0,
        clear_after_s=600.0,
    )
    inj.schedule_poisson(
        FaultKind.TRANSCEIVER_FLAP,
        ["endpoint-a", "endpoint-b"],
        rate_per_s=1.0 / 120.0,
        horizon_s=3600.0,
        clear_after_s=10.0,
    )
    return inj


class TestInjectorDeterminism:
    def test_same_seed_byte_identical_schedules(self):
        assert build_injector(7).pending_digest() == build_injector(7).pending_digest()

    def test_different_seed_different_schedule(self):
        assert build_injector(7).pending_digest() != build_injector(8).pending_digest()

    def test_delivery_log_is_deterministic_too(self):
        a, b = build_injector(3), build_injector(3)
        a.advance_to(1800.0)
        b.advance_to(1800.0)
        assert a.delivered_digest() == b.delivered_digest()
        assert a.pending_digest() == b.pending_digest()


class TestChaosDeterminism:
    def test_every_scenario_digest_is_seed_stable(self):
        for name in sorted(SCENARIOS):
            kwargs = SMOKE_KWARGS[name]
            first = run_scenario(name, seed=11, **kwargs)
            second = run_scenario(name, seed=11, **kwargs)
            assert first.digest() == second.digest(), name
            assert first.timeline == second.timeline, name
            assert dict(first.metrics) == dict(second.metrics), name

    def test_seed_changes_the_run(self):
        a = run_scenario("repair_race", seed=0, **SMOKE_KWARGS["repair_race"])
        b = run_scenario("repair_race", seed=1, **SMOKE_KWARGS["repair_race"])
        assert a.digest() != b.digest()


class TestSchedulerDeterminism:
    def test_injector_backed_simulation_reproduces(self):
        trace = WorkloadGenerator(seed=5).generate(40)

        def run(seed):
            pod = Superpod(num_cubes=16, seed=seed)
            sim = SchedulerSimulation(
                allocator=ReconfigurableAllocator(pod),
                cube_failure_rate_per_s=1.0 / (40 * 3600.0),
                repair_s=3600.0,
                seed=seed,
            )
            m = sim.run(list(trace))
            return (
                m.completed,
                m.failures_injected,
                m.requeued_after_failure,
                m.survived_failures,
                tuple(m.waits_s),
                m.busy_integral_s,
            )

        assert run(9) == run(9)
        assert run(9) != run(10)
