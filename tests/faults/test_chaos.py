"""Tests for repro.faults.chaos (scenarios + cross-layer acceptance checks)."""

import pytest

from repro.availability.model import fabric_availability
from repro.core.errors import ConfigurationError
from repro.faults.chaos import (
    SCENARIOS,
    SMOKE_KWARGS,
    controller_crash_recovery,
    correlated_hv_batch,
    partition_failover,
    repair_race,
    rolling_transceiver_flaps,
    run_scenario,
    run_smoke,
    single_ocs_loss,
)
from repro.ml.models import LLM_ZOO
from repro.ml.parallelism import ParallelismPlan
from repro.ml.perfmodel import TrainingStepModel
from repro.ocs.reliability import SINGLE_OCS_AVAILABILITY
from repro.tpu.degradation import quarantine_step_degradation
from repro.tpu.superpod import NUM_OCSES


class TestSingleOcsLoss:
    def test_step_hit_matches_degradation_model_within_1pct(self):
        report = single_ocs_loss(seed=3, horizon_hours=2000.0)
        assert report.metrics["step_hit_chaos"] > 0
        assert report.metrics["step_hit_rel_error"] < 0.01

    def test_long_run_availability_matches_fig15_analytic(self):
        report = single_ocs_loss(seed=0, horizon_hours=20000.0)
        analytic = fabric_availability(NUM_OCSES, SINGLE_OCS_AVAILABILITY)
        assert report.metrics["availability_analytic"] == pytest.approx(analytic)
        # Monte-Carlo agreement: ~240 outages over the horizon puts the
        # sampling noise well under one point of availability.
        assert report.metrics["availability_abs_error"] < 0.01
        assert report.metrics["outages"] > 100

    def test_timeline_brackets_goodput(self):
        report = single_ocs_loss(seed=1, horizon_hours=2000.0)
        assert report.timeline[0] == (0.0, 1.0)
        assert all(0.0 <= g <= 1.0 for _, g in report.timeline)
        times = [t for t, _ in report.timeline]
        assert times == sorted(times)
        assert 0.0 < report.mean_goodput() <= 1.0


class TestCorrelatedHvBatch:
    def test_batch_drops_then_resilient_restore(self):
        report = correlated_hv_batch(seed=0, num_ocses=2, circuits_per_ocs=3)
        assert report.metrics["dropped"] == 6.0
        assert report.metrics["restored"] == 6.0
        assert report.metrics["final_up_fraction"] == 1.0
        assert report.metrics["rollbacks"] == 0.0
        # Two injected timeouts per switch cost two retries each.
        assert report.metrics["retries"] == 4.0
        assert report.metrics["backoff_ms"] > 0
        # Goodput dipped below 1 mid-run and recovered.
        assert min(g for _, g in report.timeline) < 1.0
        assert report.timeline[-1][1] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            correlated_hv_batch(circuits_per_ocs=9)


class TestRollingTransceiverFlaps:
    def test_availability_accounting(self):
        report = rolling_transceiver_flaps(seed=2, num_links=4, horizon_s=300.0)
        assert report.metrics["flaps"] > 0
        assert 0.0 < report.metrics["link_availability"] <= 1.0
        assert report.metrics["worst_concurrent_dark"] >= 1.0
        assert report.timeline[-1][1] == 1.0  # all flaps cleared by the end


class TestDampedFlaps:
    def test_quarantine_on_third_flap_and_release_after_hold_down(self):
        report = rolling_transceiver_flaps(
            seed=2, num_links=4, horizon_s=300.0, damping=True, spares=1
        )
        # The penalty crosses suppress exactly on the third flap of the
        # deterministic train (30 + 2*15 = 60 s).
        assert report.metrics["quarantine_t_s"] == 60.0
        assert report.metrics["quarantines"] == 1.0
        assert report.metrics["steered"] == 1.0
        # Release waits for the hold-down plus penalty decay, then the
        # circuit goes home.
        assert report.metrics["release_t_s"] >= 60.0 + 120.0
        assert report.metrics["released"] == 1.0
        assert report.metrics["released_home"] == 1.0

    def test_bystanders_never_disturbed(self):
        report = rolling_transceiver_flaps(
            seed=2, num_links=4, horizon_s=300.0, damping=True, spares=1
        )
        assert report.metrics["bystanders_disturbed"] == 0.0
        # Steering kept capacity: nothing was held out of service.
        assert report.metrics["held_out_max_fraction"] == 0.0
        assert report.metrics["goodput_during_quarantine"] == 1.0

    def test_hold_out_goodput_matches_degradation_analytic(self):
        report = rolling_transceiver_flaps(
            seed=2, num_links=4, horizon_s=300.0, damping=True, spares=0
        )
        # With no spares the quarantine holds 1 of 4 watched circuits out.
        assert report.metrics["held_out_max_fraction"] == 0.25
        plan = ParallelismPlan.for_shape(LLM_ZOO["llm2"], (16, 16, 16))
        analytic = 1.0 / (
            1.0 + quarantine_step_degradation(plan, TrainingStepModel(), 0, 0.25)
        )
        observed = report.metrics["goodput_during_quarantine"]
        assert abs(observed - analytic) / analytic < 0.01
        assert report.metrics["final_goodput"] == 1.0  # released by the end

    def test_undamped_path_byte_identical_to_classic(self):
        classic = rolling_transceiver_flaps(seed=2, num_links=4, horizon_s=300.0)
        explicit = rolling_transceiver_flaps(
            seed=2, num_links=4, horizon_s=300.0, damping=False
        )
        assert explicit.digest() == classic.digest()


class TestControllerCrashRecovery:
    def test_every_crash_point_recovers_deterministically(self):
        report = controller_crash_recovery(seed=0, num_ocses=2, links_per_ocs=4)
        points = report.metrics["crash_points"]
        assert points == 10.0  # 2-OCS txn has 10 instrumented steps
        assert report.metrics["recoveries_ok"] == points
        assert report.metrics["reconciles_converged"] == points
        assert report.metrics["deterministic"] == 1.0
        # Every pre-commit crash rolls back to one digest; the lone
        # post-commit crash rolls forward to the committed digest.
        assert report.metrics["rollback_digests"] == 1.0
        assert report.metrics["forward_digests"] == 1.0
        assert report.metrics["forward_matches_committed"] == 1.0

    def test_report_digest_stable(self):
        a = controller_crash_recovery(seed=0, num_ocses=2, links_per_ocs=4)
        b = controller_crash_recovery(seed=0, num_ocses=2, links_per_ocs=4)
        assert a.digest() == b.digest()


class TestRepairRace:
    def test_pool_exhaustion_surfaces_capacity_context(self):
        report = repair_race(seed=1, num_circuits=4, num_spares=2, horizon_s=400.0)
        assert report.metrics["repairs"] >= 1.0
        assert report.metrics["capacity_errors"] >= 1.0
        # The surfaced CapacityError enumerated the whole (small) pool.
        assert report.metrics["attempted_spares_last"] == 2.0
        assert report.timeline[-1][1] < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            repair_race(num_spares=1, damaged_spares=2)


class TestPartitionFailover:
    def test_invariants_hold_under_storm(self):
        report = partition_failover(seed=0, horizon_s=24.0)
        # The storm forced real failovers...
        assert report.metrics["storm_cycles"] >= 3.0
        assert report.metrics["elections"] >= report.metrics["storm_cycles"]
        assert report.metrics["epochs"] >= 3.0
        # ...yet the HA invariants held.
        assert report.metrics["committed_ops_lost"] == 0.0
        assert report.metrics["digest_match"] == 1.0
        assert report.metrics["settled"] == 1.0
        # Most ticks commit; election gaps carve the rest.
        assert 0.5 < report.metrics["goodput"] < 1.0
        assert 0.0 < report.metrics["availability"] <= 1.0
        assert min(g for _, g in report.timeline) == 0.0
        assert report.timeline[-1][1] == 1.0

    def test_report_digest_stable(self):
        a = partition_failover(seed=3, horizon_s=24.0)
        b = partition_failover(seed=3, horizon_s=24.0)
        assert a.digest() == b.digest()

    def test_seed_perturbs_background_skew(self):
        a = partition_failover(seed=0, horizon_s=24.0, skew_rate_per_s=0.05)
        b = partition_failover(seed=7, horizon_s=24.0, skew_rate_per_s=0.05)
        assert a.schedule != b.schedule

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            partition_failover(num_replicas=2)
        with pytest.raises(ConfigurationError):
            partition_failover(horizon_s=0.0)


class TestRegistry:
    def test_registry_covers_all_scenarios(self):
        assert set(SCENARIOS) == {
            "single_ocs_loss",
            "correlated_hv_batch",
            "rolling_transceiver_flaps",
            "repair_race",
            "controller_crash_recovery",
            "partition_failover",
        }
        assert set(SMOKE_KWARGS) == set(SCENARIOS)

    def test_run_scenario_dispatch_and_unknown(self):
        report = run_scenario("repair_race", seed=0, **SMOKE_KWARGS["repair_race"])
        assert report.scenario == "repair_race"
        assert report.seed == 0
        with pytest.raises(ConfigurationError):
            run_scenario("nope")

    def test_smoke_runs_everything(self):
        reports = run_smoke(seed=0)
        assert set(reports) == set(SCENARIOS)
        for name, report in reports.items():
            assert report.scenario == name
            assert len(report.digest()) == 64
