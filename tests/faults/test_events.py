"""Tests for repro.faults.events (taxonomy, targets, digests)."""

import numpy as np
import pytest

from repro.core.errors import FaultInjectionError
from repro.faults.events import (
    DEFAULT_CLEAR_S,
    FaultEvent,
    FaultKind,
    circuit_target,
    cube_target,
    endpoint_target,
    host_target,
    mirror_target,
    network_target,
    ocs_target,
    parse_partition_groups,
    partition_groups_param,
    poisson_times,
    schedule_digest,
    target_index,
    validate_trace,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(time_s=-1.0, kind=FaultKind.HOST_CRASH, target="cube-0")
        with pytest.raises(FaultInjectionError):
            FaultEvent(time_s=0.0, kind=FaultKind.HOST_CRASH, target="")

    def test_params_sorted_and_queryable(self):
        e = FaultEvent(
            time_s=1.0,
            kind=FaultKind.FIBER_PINCH,
            target="ocs-0/N1-S2",
            params=(("zeta", 1), ("alpha", "x")),
        )
        assert e.params == (("alpha", "x"), ("zeta", 1))
        assert e.param("alpha") == "x"
        assert e.param("missing", 7) == 7

    def test_canonical_distinguishes_fields(self):
        base = dict(time_s=1.0, kind=FaultKind.RPC_TIMEOUT, target="ocs-3")
        a = FaultEvent(**base)
        b = FaultEvent(**{**base, "recovery": True})
        c = FaultEvent(**{**base, "severity": 2.0})
        assert len({a.canonical(), b.canonical(), c.canonical()}) == 3

    def test_taxonomy_covers_the_paper_failure_modes(self):
        values = {k.value for k in FaultKind}
        assert values == {
            "ocs-hv-driver",
            "mirror-stuck",
            "circuit-loss-drift",
            "transceiver-flap",
            "fiber-pinch",
            "host-crash",
            "cube-power-loss",
            "rpc-timeout",
            "controller-crash",
            "network-partition",
            "clock-skew",
        }


class TestTargets:
    def test_round_trips(self):
        assert target_index(ocs_target(7)) == 7
        assert target_index(cube_target(12)) == 12
        assert target_index(mirror_target(3, "N", 12)) == 3
        assert target_index(circuit_target(5, 1, 2)) == 5
        assert target_index(host_target(9, 4)) == 9

    def test_endpoint_and_bad_targets(self):
        assert endpoint_target("srv") == "endpoint-srv"
        with pytest.raises(FaultInjectionError):
            target_index("nonsense")
        with pytest.raises(FaultInjectionError):
            mirror_target(0, "X", 1)

    def test_partition_groups_round_trip_and_canonical(self):
        assert network_target() == "net-control"
        key, encoded = partition_groups_param([[2, 1], [0]])
        assert key == "groups"
        assert encoded == "0|1,2"  # sorted within and across groups
        assert parse_partition_groups(encoded) == ((0,), (1, 2))
        # Equal partitions encode equally regardless of input order.
        assert partition_groups_param([[0], [1, 2]]) == (key, encoded)

    def test_partition_groups_validation(self):
        with pytest.raises(FaultInjectionError):
            partition_groups_param([])
        with pytest.raises(FaultInjectionError):
            partition_groups_param([[0], []])
        with pytest.raises(FaultInjectionError):
            partition_groups_param([[0, 1], [1, 2]])
        with pytest.raises(FaultInjectionError):
            parse_partition_groups("0,x|2")


class TestSchedules:
    def test_poisson_times_reproducible(self):
        a = poisson_times(np.random.default_rng(5), 0.1, 100.0)
        b = poisson_times(np.random.default_rng(5), 0.1, 100.0)
        assert a == b
        assert all(0 <= t < 100.0 for t in a)
        assert a == sorted(a)

    def test_poisson_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(FaultInjectionError):
            poisson_times(rng, 0.0, 10.0)
        with pytest.raises(FaultInjectionError):
            poisson_times(rng, 1.0, 0.0)

    def test_digest_order_independent_but_content_sensitive(self):
        e1 = FaultEvent(time_s=1.0, kind=FaultKind.HOST_CRASH, target="cube-0", seq=0)
        e2 = FaultEvent(time_s=2.0, kind=FaultKind.HOST_CRASH, target="cube-1", seq=1)
        assert schedule_digest([e1, e2]) == schedule_digest([e2, e1])
        e2b = FaultEvent(time_s=2.0, kind=FaultKind.HOST_CRASH, target="cube-2", seq=1)
        assert schedule_digest([e1, e2]) != schedule_digest([e1, e2b])

    def test_validate_trace_sorts(self):
        e1 = FaultEvent(time_s=5.0, kind=FaultKind.FIBER_PINCH, target="ocs-0/N0-S0")
        e2 = FaultEvent(time_s=1.0, kind=FaultKind.FIBER_PINCH, target="ocs-0/N1-S1")
        assert validate_trace([e1, e2]) == (e2, e1)

    def test_default_clear_times_sane(self):
        assert DEFAULT_CLEAR_S[FaultKind.TRANSCEIVER_FLAP] < 60.0
        assert DEFAULT_CLEAR_S[FaultKind.CUBE_POWER_LOSS] >= 3600.0
