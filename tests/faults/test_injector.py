"""Tests for repro.faults.injector (timeline, delivery, subscriptions)."""

import pytest

from repro.core.errors import FaultInjectionError
from repro.faults.events import FaultEvent, FaultKind, cube_target, ocs_target
from repro.faults.injector import FaultInjector


class TestScheduling:
    def test_schedule_and_pop_in_time_order(self):
        inj = FaultInjector(seed=0)
        inj.schedule(5.0, FaultKind.HOST_CRASH, cube_target(1))
        inj.schedule(1.0, FaultKind.HOST_CRASH, cube_target(2))
        assert inj.next_time() == 1.0
        first = inj.pop_next()
        second = inj.pop_next()
        assert (first.time_s, second.time_s) == (1.0, 5.0)
        assert inj.pop_next() is None

    def test_clear_after_schedules_recovery_edge(self):
        inj = FaultInjector(seed=0)
        inj.schedule(2.0, FaultKind.TRANSCEIVER_FLAP, "endpoint-a", clear_after_s=3.0)
        events = [inj.pop_next(), inj.pop_next()]
        assert [e.recovery for e in events] == [False, True]
        assert events[1].time_s == 5.0
        assert events[1].target == events[0].target

    def test_clear_after_validation(self):
        inj = FaultInjector(seed=0)
        with pytest.raises(FaultInjectionError):
            inj.schedule(1.0, FaultKind.HOST_CRASH, "cube-0", clear_after_s=0.0)
        with pytest.raises(FaultInjectionError):
            inj.schedule(
                1.0, FaultKind.HOST_CRASH, "cube-0", recovery=True, clear_after_s=1.0
            )

    def test_same_time_events_keep_schedule_order(self):
        inj = FaultInjector(seed=0)
        for i in range(5):
            inj.schedule(1.0, FaultKind.RPC_TIMEOUT, ocs_target(i))
        popped = [inj.pop_next().target for _ in range(5)]
        assert popped == [ocs_target(i) for i in range(5)]

    def test_poisson_counts_and_horizon(self):
        inj = FaultInjector(seed=7)
        n = inj.schedule_poisson(
            FaultKind.FIBER_PINCH,
            ["ocs-0/N0-S0", "ocs-0/N1-S1"],
            rate_per_s=0.1,
            horizon_s=200.0,
        )
        assert n == inj.num_pending > 0
        assert all(e.time_s < 200.0 for e in inj.pending_events())

    def test_trace_replay(self):
        trace = [
            FaultEvent(time_s=3.0, kind=FaultKind.HOST_CRASH, target="cube-1"),
            FaultEvent(time_s=1.0, kind=FaultKind.HOST_CRASH, target="cube-0"),
        ]
        inj = FaultInjector(seed=0)
        assert inj.schedule_trace(trace) == 2
        assert [e.target for e in inj.pending_events()] == ["cube-0", "cube-1"]


class TestDelivery:
    def test_subscribers_fire_per_kind(self):
        inj = FaultInjector(seed=0)
        seen = []
        inj.subscribe(FaultKind.HOST_CRASH, lambda e: seen.append(e.target))
        inj.schedule(1.0, FaultKind.HOST_CRASH, cube_target(3))
        inj.schedule(2.0, FaultKind.RPC_TIMEOUT, ocs_target(0))
        inj.pop_next()
        inj.pop_next()
        assert seen == [cube_target(3)]

    def test_advance_to_delivers_prefix(self):
        inj = FaultInjector(seed=0)
        for t in (1.0, 2.0, 3.0):
            inj.schedule(t, FaultKind.HOST_CRASH, cube_target(0))
        out = inj.advance_to(2.0)
        assert [e.time_s for e in out] == [1.0, 2.0]
        assert inj.num_pending == 1
        assert len(inj.delivered()) == 2

    def test_digests_track_pending_vs_delivered(self):
        inj = FaultInjector(seed=0)
        inj.schedule(1.0, FaultKind.HOST_CRASH, cube_target(0))
        inj.schedule(2.0, FaultKind.HOST_CRASH, cube_target(1))
        before = inj.pending_digest()
        inj.pop_next()
        assert inj.pending_digest() != before
        assert inj.delivered_digest() != inj.pending_digest()


class TestDraws:
    def test_exponential_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(seed=0).exponential(0.0)

    def test_draws_come_from_seeded_stream(self):
        a, b = FaultInjector(seed=3), FaultInjector(seed=3)
        assert [a.exponential(10.0) for _ in range(5)] == [
            b.exponential(10.0) for _ in range(5)
        ]
        assert a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)
