"""Tests for repro.optics.fiber."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.optics.fiber import (
    ZERO_DISPERSION_NM,
    FiberSpan,
    dispersion_ps_per_nm_km,
)


class TestDispersion:
    def test_zero_at_lambda0(self):
        assert dispersion_ps_per_nm_km(ZERO_DISPERSION_NM) == pytest.approx(0.0, abs=1e-6)

    def test_sign_change(self):
        assert dispersion_ps_per_nm_km(1271.0) < 0
        assert dispersion_ps_per_nm_km(1331.0) > 0

    def test_magnitude_reasonable(self):
        # G.652 fiber: a few ps/nm/km tens of nm from lambda0.
        assert abs(dispersion_ps_per_nm_km(1271.0)) < 6.0
        assert abs(dispersion_ps_per_nm_km(1271.0)) > 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dispersion_ps_per_nm_km(0)


class TestFiberSpan:
    def test_attenuation(self):
        span = FiberSpan(length_m=2000.0, connectors=0)
        assert span.attenuation_db == pytest.approx(0.7)

    def test_termination_loss(self):
        span = FiberSpan(length_m=0.0, connectors=2, splices=4)
        assert span.termination_loss_db == pytest.approx(2 * 0.3 + 4 * 0.05)

    def test_total(self):
        span = FiberSpan(length_m=1000.0, connectors=2, splices=0)
        assert span.total_loss_db == pytest.approx(0.35 + 0.6)

    def test_latency(self):
        span = FiberSpan(length_m=100.0)
        assert span.latency_ns == pytest.approx(489.6, rel=1e-2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FiberSpan(length_m=-1)
        with pytest.raises(ConfigurationError):
            FiberSpan(length_m=1, connectors=-1)


class TestDispersionPenalty:
    def test_zero_at_lambda0(self):
        span = FiberSpan(length_m=500.0)
        assert span.dispersion_penalty_db(ZERO_DISPERSION_NM, 50.0) == pytest.approx(0.0, abs=1e-9)

    def test_grows_with_rate(self):
        """§3.3.1: dispersion becomes an issue above 100 Gb/s."""
        span = FiberSpan(length_m=2000.0)
        p50 = span.dispersion_penalty_db(1271.0, 26.5)  # 50G PAM4 symbol rate
        p100 = span.dispersion_penalty_db(1271.0, 53.0)  # 100G PAM4
        assert p100 > p50 >= 0

    def test_grows_with_length(self):
        short = FiberSpan(length_m=100.0)
        long = FiberSpan(length_m=2000.0)
        wl, rate = 1271.0, 53.0
        assert long.dispersion_penalty_db(wl, rate) > short.dispersion_penalty_db(wl, rate)

    def test_outer_lane_worse_than_center(self):
        span = FiberSpan(length_m=2000.0)
        assert span.dispersion_penalty_db(1271.0, 53.0) > span.dispersion_penalty_db(
            1311.0, 53.0
        )

    def test_link_failure_is_infinite(self):
        span = FiberSpan(length_m=100_000.0)
        assert math.isinf(span.dispersion_penalty_db(1271.0, 106.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FiberSpan(length_m=1.0).dispersion_penalty_db(1271.0, 0)
