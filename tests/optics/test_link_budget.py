"""Tests for repro.optics.link_budget."""

import pytest

from repro.core.errors import ConfigurationError, LinkBudgetError
from repro.optics.circulator import Circulator
from repro.optics.fiber import FiberSpan
from repro.optics.link_budget import LinkBudget, LossElement
from repro.optics.transceiver import transceiver


class TestLossElement:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LossElement("x", -0.1)


class TestBudgetArithmetic:
    def test_accumulation(self):
        b = LinkBudget(tx_power_dbm=2.0, rx_sensitivity_dbm=-11.0)
        b.add("a", 1.0).add("b", 2.5)
        assert b.total_loss_db == pytest.approx(3.5)
        assert b.received_power_dbm == pytest.approx(-1.5)
        assert b.margin_db == pytest.approx(9.5)

    def test_closes_with_margin(self):
        b = LinkBudget(2.0, -11.0, required_margin_db=1.5)
        b.add("loss", 11.0)
        assert b.margin_db == pytest.approx(2.0)
        assert b.closes
        b.add("more", 1.0)
        assert not b.closes

    def test_require_closed_raises(self):
        b = LinkBudget(0.0, -5.0)
        b.add("huge", 10.0)
        with pytest.raises(LinkBudgetError):
            b.require_closed()

    def test_breakdown_order(self):
        b = LinkBudget(0.0, -10.0).add("first", 1.0).add("second", 2.0)
        assert b.breakdown() == (("first", 1.0), ("second", 2.0))


class TestFabricPath:
    def test_bidi_includes_circulators(self):
        spec = transceiver("bidi_2x400g_cwdm4")
        b = LinkBudget.for_fabric_path(spec, ocs_insertion_loss_db=2.0)
        names = [n for n, _ in b.breakdown()]
        assert names[0] == "tx-circulator"
        assert names[-1] == "rx-circulator"
        assert "ocs-0" in names

    def test_duplex_skips_circulators(self):
        spec = transceiver("osfp_400g")
        b = LinkBudget.for_fabric_path(spec, ocs_insertion_loss_db=2.0)
        names = [n for n, _ in b.breakdown()]
        assert "tx-circulator" not in names

    def test_typical_ml_path_closes(self):
        """A bidi link through one OCS with short fiber closes its budget."""
        spec = transceiver("bidi_2x400g_cwdm4")
        b = LinkBudget.for_fabric_path(
            spec,
            ocs_insertion_loss_db=2.0,
            fiber_spans=[FiberSpan(length_m=50.0)],
        )
        b.require_closed()
        assert b.margin_db > 1.5

    def test_excessive_ocs_loss_fails(self):
        spec = transceiver("bidi_2x400g_cwdm4")
        b = LinkBudget.for_fabric_path(
            spec,
            ocs_insertion_loss_db=6.0,
            fiber_spans=[FiberSpan(length_m=500.0, connectors=4)],
            num_ocs_hops=2,
        )
        assert not b.closes

    def test_custom_circulator(self):
        spec = transceiver("bidi_dcn_cwdm4")
        lossy = Circulator(insertion_loss_db=1.5)
        b = LinkBudget.for_fabric_path(spec, 2.0, circulator=lossy)
        assert dict(b.breakdown())["tx-circulator"] == 1.5

    def test_negative_hops_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkBudget.for_fabric_path(transceiver("osfp_400g"), 2.0, num_ocs_hops=-1)

    def test_max_ocs_hops(self):
        spec = transceiver("bidi_2x400g_cwdm4")
        b = LinkBudget.for_fabric_path(spec, ocs_insertion_loss_db=2.0)
        extra = b.max_ocs_hops(2.0)
        assert extra >= 0
        # Consume the spare margin and it should drop to zero.
        b.add("consume", extra * 2.0 + 1.9)
        assert b.max_ocs_hops(2.0) == 0

    def test_max_hops_validation(self):
        b = LinkBudget(0.0, -10.0)
        with pytest.raises(ConfigurationError):
            b.max_ocs_hops(0.0)
