"""Tests for repro.optics.eye."""

import pytest

from repro.core.errors import ConfigurationError
from repro.optics.ber import receiver_sensitivity_dbm
from repro.optics.eye import eye_margin_db, eye_report, worst_eye_is_top
from repro.optics.pam4 import Pam4LinkModel


class TestEyeReport:
    def test_three_eyes(self):
        report = eye_report(Pam4LinkModel(), -8.0)
        assert len(report.heights_w) == 3
        assert report.open

    def test_eyes_close_at_low_power(self):
        report = eye_report(Pam4LinkModel(), -20.0)
        assert not report.open

    def test_clean_link_eyes_symmetric(self):
        report = eye_report(Pam4LinkModel(), -8.0)
        assert report.heights_w[0] == pytest.approx(report.heights_w[2], rel=1e-9)

    def test_mpi_closes_top_eye_first(self):
        """Beat noise scales with level: the 2->3 eye is the victim."""
        assert worst_eye_is_top(Pam4LinkModel(mpi_db=-30.0), -8.0)

    def test_closure_fraction_bounds(self):
        report = eye_report(Pam4LinkModel(), -9.0)
        assert 0.0 < report.worst_closure_fraction < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            eye_report(Pam4LinkModel(), -8.0, target_ber=0.7)


class TestEyeBerConsistency:
    def test_eye_closure_tracks_sensitivity(self):
        """The power where the worst eye closes sits within ~0.5 dB of the
        BER engine's sensitivity at the same target."""
        model = Pam4LinkModel()
        sens = receiver_sensitivity_dbm(model, 2e-4)
        open_at_sens = eye_report(model, sens + 0.5).open
        closed_below = eye_report(model, sens - 0.7).open
        assert open_at_sens
        assert not closed_below

    def test_margin_positive_above_sensitivity(self):
        model = Pam4LinkModel()
        margin = eye_margin_db(model, -8.0)
        assert margin > 1.0

    def test_margin_zero_when_closed(self):
        assert eye_margin_db(Pam4LinkModel(), -20.0) == 0.0

    def test_oim_widens_eye(self):
        dirty = eye_report(Pam4LinkModel(mpi_db=-30.0), -9.0)
        mitigated = eye_report(
            Pam4LinkModel(mpi_db=-30.0, oim_suppression_db=12.0), -9.0
        )
        assert mitigated.worst_eye_w > dirty.worst_eye_w
