"""Tests for repro.optics.transceiver (Fig 8 / Fig 9 roadmap)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.optics.transceiver import (
    TRANSCEIVER_GENERATIONS,
    FormFactor,
    Modulation,
    TransceiverSpec,
    bandwidth_growth_factor,
    interoperable,
    transceiver,
)
from repro.optics.wavelength import CWDM4_GRID


class TestRoadmap:
    def test_20x_bandwidth_growth(self):
        """Fig 8: 40G QSFP+ to 800G OSFP is 20x."""
        assert bandwidth_growth_factor() == pytest.approx(20.0)

    def test_generations_ordered_by_year(self):
        duplex = [
            transceiver(k)
            for k in ("qsfp_40g", "qsfp28_100g", "qsfp56_200g", "osfp_400g", "osfp_800g")
        ]
        years = [t.year for t in duplex]
        assert years == sorted(years)
        rates = [t.max_rate_gbps for t in duplex]
        assert rates == sorted(rates)

    def test_energy_efficiency_improves(self):
        """Fig 8: continuous improvement in energy efficiency."""
        old = transceiver("qsfp_40g")
        new = transceiver("osfp_800g")
        assert new.energy_pj_per_bit < old.energy_pj_per_bit

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError):
            transceiver("sfp_1g")


class TestBidiModules:
    def test_ml_2x400_has_two_circulators(self):
        spec = transceiver("bidi_2x400g_cwdm4")
        assert spec.bidi
        assert spec.num_circulators == 2
        assert spec.max_rate_gbps == 800.0

    def test_ml_800g_cwdm8_single_circulator(self):
        spec = transceiver("bidi_800g_cwdm8")
        assert spec.num_circulators == 1
        assert spec.grid.num_channels == 8
        assert spec.fibers_per_module == 1

    def test_bidi_halves_fibers(self):
        duplex = transceiver("osfp_800g")
        bidi = transceiver("bidi_2x400g_cwdm4")
        assert bidi.fibers_per_module == duplex.fibers_per_module // 2

    def test_validation_bidi_needs_circulator(self):
        with pytest.raises(ConfigurationError):
            TransceiverSpec(
                name="bad",
                form_factor=FormFactor.OSFP,
                grid=CWDM4_GRID,
                lanes=4,
                line_rates_gbps=(100.0,),
                modulation=Modulation.PAM4,
                bidi=True,
                num_circulators=0,
            )

    def test_validation_duplex_rejects_circulator(self):
        with pytest.raises(ConfigurationError):
            TransceiverSpec(
                name="bad",
                form_factor=FormFactor.OSFP,
                grid=CWDM4_GRID,
                lanes=4,
                line_rates_gbps=(100.0,),
                modulation=Modulation.PAM4,
                bidi=False,
                num_circulators=1,
            )


class TestBackwardCompatibility:
    def test_400g_interops_with_100g(self):
        """§3.3.1: 100G PAM4 modules also support 50G PAM4 and 25G NRZ."""
        assert interoperable(transceiver("osfp_400g"), transceiver("qsfp28_100g"))

    def test_common_rate_is_highest_shared(self):
        rate = transceiver("osfp_400g").common_rate_gbps(transceiver("qsfp56_200g"))
        assert rate == 50.0

    def test_no_common_rate(self):
        assert not interoperable(transceiver("qsfp_40g"), transceiver("osfp_400g"))

    def test_bidi_duplex_mismatch(self):
        assert not interoperable(transceiver("osfp_400g"), transceiver("bidi_dcn_cwdm4"))

    def test_bidi_generations_interop(self):
        """CWDM8 nests on CWDM4 so ML bidi generations interoperate."""
        assert interoperable(
            transceiver("bidi_2x400g_cwdm4"), transceiver("bidi_800g_cwdm8")
        )


class TestValidation:
    def test_needs_lanes(self):
        with pytest.raises(ConfigurationError):
            TransceiverSpec(
                name="x",
                form_factor=FormFactor.OSFP,
                grid=CWDM4_GRID,
                lanes=0,
                line_rates_gbps=(100.0,),
                modulation=Modulation.PAM4,
            )

    def test_needs_rates(self):
        with pytest.raises(ConfigurationError):
            TransceiverSpec(
                name="x",
                form_factor=FormFactor.OSFP,
                grid=CWDM4_GRID,
                lanes=4,
                line_rates_gbps=(),
                modulation=Modulation.PAM4,
            )

    def test_ocs_ports_counts(self):
        assert transceiver("bidi_800g_cwdm8").ocs_ports_per_module == 1
        assert transceiver("bidi_2x400g_cwdm4").ocs_ports_per_module == 2
        assert transceiver("osfp_800g").ocs_ports_per_module == 4
