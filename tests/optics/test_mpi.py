"""Tests for repro.optics.mpi."""

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.optics.mpi import (
    MpiSource,
    aggregate_mpi_db,
    beat_noise_sigma_w,
    crosstalk_mpi_db,
    double_reflection_mpi_db,
    sample_beat_noise_w,
)


class TestMpiSource:
    def test_positive_level_rejected(self):
        with pytest.raises(ConfigurationError):
            MpiSource("x", 1.0)
        with pytest.raises(ConfigurationError):
            MpiSource("x", 0.0)


class TestDoubleReflection:
    def test_sum_of_return_losses(self):
        assert double_reflection_mpi_db(-46.0, -40.0) == pytest.approx(-86.0)

    def test_rejects_positive(self):
        with pytest.raises(ConfigurationError):
            double_reflection_mpi_db(1.0, -40.0)


class TestCrosstalk:
    def test_link_loss_amplifies(self):
        # 50 dB crosstalk, 8 dB link loss: interferer 42 dB below signal.
        assert crosstalk_mpi_db(-50.0, remote_tx_dbm=2.0, local_rx_dbm=-6.0) == pytest.approx(
            -42.0
        )

    def test_rejects_gain(self):
        with pytest.raises(ConfigurationError):
            crosstalk_mpi_db(-50.0, remote_tx_dbm=0.0, local_rx_dbm=1.0)

    def test_rejects_positive_crosstalk(self):
        with pytest.raises(ConfigurationError):
            crosstalk_mpi_db(10.0, 0.0, -5.0)


class TestAggregate:
    def test_single_source(self):
        assert aggregate_mpi_db([MpiSource("a", -40.0)]) == pytest.approx(-40.0)

    def test_two_equal_sources_add_3db(self):
        agg = aggregate_mpi_db([MpiSource("a", -40.0), MpiSource("b", -40.0)])
        assert agg == pytest.approx(-36.99, abs=0.01)

    def test_empty_is_minus_inf(self):
        assert aggregate_mpi_db([]) == float("-inf")

    def test_dominated_by_strongest(self):
        agg = aggregate_mpi_db([MpiSource("a", -30.0), MpiSource("b", -60.0)])
        assert agg == pytest.approx(-30.0, abs=0.01)


class TestBeatNoise:
    def test_rms_formula(self):
        assert beat_noise_sigma_w(100e-6, 1e-9) == pytest.approx(
            math.sqrt(2 * 100e-6 * 1e-9)
        )

    def test_zero_signal_is_zero(self):
        assert beat_noise_sigma_w(0.0, 1e-9) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            beat_noise_sigma_w(-1.0, 1e-9)

    def test_samples_match_rms(self):
        rng = np.random.default_rng(0)
        levels = np.full(200_000, 100e-6)
        samples = sample_beat_noise_w(rng, levels, 1e-9)
        expected = beat_noise_sigma_w(100e-6, 1e-9)
        assert np.std(samples) == pytest.approx(expected, rel=0.02)

    def test_suppression_reduces_rms(self):
        rng = np.random.default_rng(0)
        levels = np.full(100_000, 100e-6)
        raw = np.std(sample_beat_noise_w(rng, levels, 1e-9, suppression_db=0.0))
        rng = np.random.default_rng(0)
        suppressed = np.std(sample_beat_noise_w(rng, levels, 1e-9, suppression_db=12.0))
        assert suppressed == pytest.approx(raw * 10 ** (-12 / 20), rel=0.05)

    def test_negative_suppression_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            sample_beat_noise_w(rng, np.ones(4), 1e-9, suppression_db=-1.0)
