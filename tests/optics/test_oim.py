"""Tests for repro.optics.oim (the notch-filter DSP)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.optics.oim import (
    OimDsp,
    beat_tone_waveform,
    estimate_interferer_frequency,
)


@pytest.fixture
def waveform():
    rng = np.random.default_rng(7)
    return beat_tone_waveform(
        rng,
        num_samples=8192,
        sample_rate_hz=1e9,
        tone_hz=120e6,
        tone_amplitude=0.5,
        noise_rms=0.1,
    )


class TestFrequencyEstimation:
    def test_finds_tone(self, waveform):
        f = estimate_interferer_frequency(waveform, 1e9)
        assert f == pytest.approx(120e6, rel=0.02)

    def test_rejects_short_input(self):
        with pytest.raises(ConfigurationError):
            estimate_interferer_frequency(np.zeros(4), 1e9)

    def test_rejects_bad_rate(self, waveform):
        with pytest.raises(ConfigurationError):
            estimate_interferer_frequency(waveform, 0)


class TestNotchFilter:
    def test_tone_suppressed(self, waveform):
        dsp = OimDsp(suppression_db=12.0, notch_q=30.0)
        filtered, offset = dsp.mitigate(waveform, 1e9)
        assert offset == pytest.approx(120e6, rel=0.02)
        # Measure residual tone power at the offset bin.
        def tone_power(x):
            spectrum = np.abs(np.fft.rfft(x)) ** 2
            freqs = np.fft.rfftfreq(x.size, 1e-9)
            band = (freqs > 110e6) & (freqs < 130e6)
            return spectrum[band].sum()

        assert tone_power(filtered) < tone_power(waveform) * 0.2

    def test_disabled_passthrough(self, waveform):
        dsp = OimDsp(enabled=False)
        filtered, offset = dsp.mitigate(waveform, 1e9)
        np.testing.assert_array_equal(filtered, waveform)
        assert offset == 0.0
        assert dsp.effective_suppression_db == 0.0

    def test_effective_suppression(self):
        assert OimDsp(suppression_db=12.0).effective_suppression_db == 12.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OimDsp(suppression_db=-1.0)
        with pytest.raises(ConfigurationError):
            OimDsp(notch_q=0.0)


class TestWaveformSynthesis:
    def test_rms_composition(self):
        rng = np.random.default_rng(0)
        w = beat_tone_waveform(rng, 100_000, 1e9, 100e6, tone_amplitude=0.5, noise_rms=0.1)
        expected_rms = np.sqrt(0.5 ** 2 / 2 + 0.1 ** 2)
        assert np.std(w) == pytest.approx(expected_rms, rel=0.02)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            beat_tone_waveform(rng, 0, 1e9, 100e6, 0.5, 0.1)
        with pytest.raises(ConfigurationError):
            beat_tone_waveform(rng, 100, 1e9, 600e6, 0.5, 0.1)
