"""Tests for repro.optics.pam4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.units import dbm_to_w
from repro.optics.pam4 import Pam4LinkModel, _gray_bit_errors


class TestLevels:
    def test_average_equals_rx_power(self):
        m = Pam4LinkModel()
        levels = m.levels_w(-10.0)
        assert levels.mean() == pytest.approx(dbm_to_w(-10.0))

    def test_equally_spaced(self):
        levels = Pam4LinkModel().levels_w(-8.0)
        diffs = np.diff(levels)
        assert np.allclose(diffs, diffs[0])

    def test_oma_is_2x_avg(self):
        m = Pam4LinkModel()
        assert m.oma_w(-10.0) == pytest.approx(2 * dbm_to_w(-10.0))


class TestAnalyticBer:
    def test_monotone_in_power(self):
        m = Pam4LinkModel()
        powers = np.linspace(-14, -6, 9)
        bers = m.ber_curve(powers)
        assert np.all(np.diff(bers) < 0)

    def test_mpi_raises_ber(self):
        clean = Pam4LinkModel().ber(-11.0)
        dirty = Pam4LinkModel(mpi_db=-32.0).ber(-11.0)
        assert dirty > clean

    def test_oim_recovers(self):
        dirty = Pam4LinkModel(mpi_db=-32.0).ber(-11.0)
        mitigated = Pam4LinkModel(mpi_db=-32.0, oim_suppression_db=12.0).ber(-11.0)
        clean = Pam4LinkModel().ber(-11.0)
        assert clean <= mitigated < dirty

    def test_mpi_floor_at_high_power(self):
        """Strong MPI floors the BER: more power does not help (Fig 11)."""
        m = Pam4LinkModel(mpi_db=-26.0)
        assert m.ber(5.0) == pytest.approx(m.ber(15.0), rel=0.05)
        assert m.ber(5.0) > 1e-4

    def test_ber_capped_at_half(self):
        assert Pam4LinkModel().ber(-40.0) <= 0.5

    def test_none_and_neg_inf_equivalent(self):
        a = Pam4LinkModel(mpi_db=None).ber(-11.0)
        b = Pam4LinkModel(mpi_db=float("-inf")).ber(-11.0)
        assert a == pytest.approx(b)

    @given(st.floats(min_value=-13.0, max_value=-7.0))
    @settings(max_examples=30, deadline=None)
    def test_level_sigmas_ordered(self, power):
        """Beat noise grows with level, so sigma_0 <= ... <= sigma_3."""
        m = Pam4LinkModel(mpi_db=-30.0)
        sigmas = m.level_sigmas_w(power)
        assert np.all(np.diff(sigmas) >= 0)


class TestValidation:
    def test_bad_thermal(self):
        with pytest.raises(ConfigurationError):
            Pam4LinkModel(thermal_noise_w=0.0)

    def test_bad_suppression(self):
        with pytest.raises(ConfigurationError):
            Pam4LinkModel(oim_suppression_db=-1.0)

    def test_bad_mpi(self):
        with pytest.raises(ConfigurationError):
            Pam4LinkModel(mpi_db=3.0)

    def test_bad_enhancement(self):
        with pytest.raises(ConfigurationError):
            Pam4LinkModel(equalizer_enhancement=0.5)

    def test_bad_symbol_count(self):
        with pytest.raises(ConfigurationError):
            Pam4LinkModel().monte_carlo_ber(-10.0, num_symbols=0)


class TestMonteCarlo:
    def test_matches_analytic_clean(self):
        m = Pam4LinkModel()
        analytic = m.ber(-11.5)
        mc = m.monte_carlo_ber(-11.5, num_symbols=400_000, seed=1)
        assert mc == pytest.approx(analytic, rel=0.15)

    def test_matches_analytic_with_mpi(self):
        m = Pam4LinkModel(mpi_db=-32.0)
        analytic = m.ber(-11.0)
        mc = m.monte_carlo_ber(-11.0, num_symbols=400_000, seed=2)
        assert mc == pytest.approx(analytic, rel=0.15)

    def test_deterministic_with_seed(self):
        m = Pam4LinkModel(mpi_db=-30.0)
        assert m.monte_carlo_ber(-11.0, 50_000, seed=3) == m.monte_carlo_ber(
            -11.0, 50_000, seed=3
        )

    def test_simulate_symbols_shapes(self):
        tx, rx = Pam4LinkModel().simulate_symbols(-10.0, 1000, seed=0)
        assert tx.shape == rx.shape == (1000,)
        assert tx.min() >= 0 and tx.max() <= 3


class TestGrayCoding:
    def test_adjacent_symbols_one_bit(self):
        tx = np.array([0, 1, 2, 3])
        rx = np.array([1, 2, 3, 2])
        # adjacent-level mistakes cost exactly one bit each.
        assert _gray_bit_errors(tx, rx) == 4

    def test_identical_is_zero(self):
        s = np.array([0, 1, 2, 3, 3])
        assert _gray_bit_errors(s, s) == 0

    def test_extreme_swap_costs_one(self):
        # Gray 00 vs 10 differ in one bit (levels 0 and 3).
        assert _gray_bit_errors(np.array([0]), np.array([3])) == 1
