"""Property suite pinning the vectorized optics kernels to their scalar
oracles.

The perf rewrite keeps every original scalar implementation in-tree
(``Pam4LinkModel.ber``, ``FleetBerSampler.sample_reference``,
``receiver_sensitivity_reference``); these tests assert the vectorized
paths reproduce them to 1e-12 relative over randomized parameter grids.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.optics.ber import (
    BerCurve,
    LinkBerSimulator,
    receiver_sensitivity_batch,
    receiver_sensitivity_dbm,
    receiver_sensitivity_reference,
)
from repro.optics.fleet import FleetBerSampler
from repro.optics.pam4 import DEFAULT_THERMAL_NOISE_W, Pam4LinkModel, ber_batch

#: Contract from the issue: vectorized kernels match the scalar oracles
#: to 1e-12 relative.
RTOL = 1e-12

powers = st.floats(min_value=-20.0, max_value=0.0)
mpis = st.one_of(st.none(), st.floats(min_value=-45.0, max_value=-25.0))
suppressions = st.floats(min_value=0.0, max_value=20.0)
thermal_mults = st.floats(min_value=0.5, max_value=2.0)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _assert_close(vec, ref):
    np.testing.assert_allclose(np.asarray(vec), np.asarray(ref), rtol=RTOL, atol=0.0)


class TestBerBatch:
    @given(
        st.lists(powers, min_size=1, max_size=8),
        mpis,
        suppressions,
        thermal_mults,
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_over_power_grid(self, pows, mpi, supp, mult):
        model = Pam4LinkModel(
            mpi_db=mpi,
            oim_suppression_db=supp,
            thermal_noise_w=DEFAULT_THERMAL_NOISE_W * mult,
        )
        vec = ber_batch(
            np.array(pows),
            mpi_db=np.nan if mpi is None else mpi,
            thermal_noise_w=model.thermal_noise_w,
            oim_suppression_db=supp,
        )
        _assert_close(vec, [model.ber(p) for p in pows])

    @given(seeds, st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_over_mixed_parameter_grid(self, seed, n):
        rng = np.random.default_rng(seed)
        pows = rng.uniform(-20.0, 0.0, n)
        mpi = np.where(rng.random(n) < 0.3, np.nan, rng.uniform(-45.0, -25.0, n))
        thermal = DEFAULT_THERMAL_NOISE_W * rng.uniform(0.5, 2.0, n)
        supp = rng.uniform(0.0, 20.0, n)
        vec = ber_batch(pows, mpi_db=mpi, thermal_noise_w=thermal, oim_suppression_db=supp)
        ref = [
            Pam4LinkModel(
                mpi_db=None if np.isnan(mpi[i]) else float(mpi[i]),
                oim_suppression_db=float(supp[i]),
                thermal_noise_w=float(thermal[i]),
            ).ber(float(pows[i]))
            for i in range(n)
        ]
        _assert_close(vec, ref)

    def test_broadcasts_like_numpy(self):
        pows = np.linspace(-15.0, -5.0, 7)[np.newaxis, :]
        mpi = np.array([-35.0, -30.0])[:, np.newaxis]
        assert ber_batch(pows, mpi_db=mpi).shape == (2, 7)

    def test_none_and_nan_both_mean_no_mpi(self):
        _assert_close(
            ber_batch(-11.0, mpi_db=None), ber_batch(-11.0, mpi_db=np.nan)
        )

    def test_curve_method_uses_batch_kernel(self):
        model = Pam4LinkModel(mpi_db=-32.0)
        pows = np.linspace(-14.0, -6.0, 9)
        _assert_close(model.ber_curve(pows), [model.ber(p) for p in pows])


class TestFleetSampler:
    @given(seeds, st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_sample_matches_reference(self, seed, ports):
        sampler = FleetBerSampler(num_ports=ports, seed=seed)
        _assert_close(sampler.sample(), sampler.sample_reference())

    def test_summarize_accepts_external_bers(self):
        sampler = FleetBerSampler(num_ports=32, seed=1)
        assert sampler.summarize(sampler.sample()) == sampler.summarize()


class TestSensitivityBatch:
    @given(mpis, suppressions, thermal_mults, st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar_reference(self, mpi, supp, mult, target):
        model = Pam4LinkModel(
            mpi_db=mpi,
            oim_suppression_db=supp,
            thermal_noise_w=DEFAULT_THERMAL_NOISE_W * mult,
        )
        try:
            ref = receiver_sensitivity_reference(model, target)
        except ConfigurationError:
            with pytest.raises(ConfigurationError):
                receiver_sensitivity_batch([model], target)
            return
        vec = receiver_sensitivity_batch([model], target)
        cached = receiver_sensitivity_dbm(model, target)
        assert vec[0] == pytest.approx(ref, rel=1e-9, abs=1e-9)
        assert cached == pytest.approx(ref, rel=1e-9, abs=1e-9)

    def test_per_model_targets_broadcast(self):
        models = [Pam4LinkModel(), Pam4LinkModel(mpi_db=-32.0)]
        targets = np.array([2e-4, 1e-3])
        vec = receiver_sensitivity_batch(models, targets)
        ref = [
            receiver_sensitivity_reference(m, float(t))
            for m, t in zip(models, targets)
        ]
        np.testing.assert_allclose(vec, ref, rtol=1e-9)

    def test_empty_batch(self):
        assert receiver_sensitivity_batch([]).size == 0


class TestPowerAtBer:
    @staticmethod
    def _reference_power_at_ber(curve, target_ber):
        # The pre-searchsorted linear scan, kept inline as the oracle.
        logs = np.log10(np.maximum(curve.bers, 1e-30))
        target = np.log10(target_ber)
        if logs.min() > target:
            raise ConfigurationError("floor above target")
        order = np.argsort(curve.rx_powers_dbm)
        powers, logs = curve.rx_powers_dbm[order], logs[order]
        for i in range(len(logs) - 1):
            if logs[i] >= target >= logs[i + 1]:
                frac = (logs[i] - target) / (logs[i] - logs[i + 1])
                return float(powers[i] + frac * (powers[i + 1] - powers[i]))
        return float(powers[0] if logs[0] <= target else powers[-1])

    @given(seeds, st.floats(min_value=1e-8, max_value=1e-2))
    @settings(max_examples=60, deadline=None)
    def test_matches_linear_scan_on_waterfalls(self, seed, target):
        rng = np.random.default_rng(seed)
        pows = np.linspace(-16.0, -4.0, int(rng.integers(4, 40)))
        model = Pam4LinkModel(mpi_db=float(rng.uniform(-40.0, -28.0)))
        curve = BerCurve("wf", pows, model.ber_curve(pows))
        try:
            ref = self._reference_power_at_ber(curve, target)
        except ConfigurationError:
            with pytest.raises(ConfigurationError):
                curve.power_at_ber(target)
            return
        assert curve.power_at_ber(target) == pytest.approx(ref, abs=1e-12)

    def test_matches_scan_on_flat_segments(self):
        # Repeated BER values exercise the side="left" tie-break.
        pows = np.linspace(-10.0, -5.0, 6)
        bers = np.array([1e-2, 1e-4, 1e-4, 1e-4, 1e-6, 1e-8])
        curve = BerCurve("flat", pows, bers)
        ref = self._reference_power_at_ber(curve, 1e-4)
        assert curve.power_at_ber(1e-4) == pytest.approx(ref, abs=1e-12)


class TestCurveGeneration:
    def test_mpi_sweep_matches_scalar_models(self):
        sim = LinkBerSimulator()
        pows = np.linspace(-14.0, -6.0, 9)
        curves = sim.mpi_sweep(rx_powers_dbm=pows)
        for (mpi, oim_on), curve in curves.items():
            model = sim._model(mpi, oim_on)
            _assert_close(curve.bers, [model.ber(float(p)) for p in pows])

    def test_sfec_curves_match_scalar_transfer(self):
        sim = LinkBerSimulator()
        pows = np.linspace(-15.0, -7.0, 9)
        curves = sim.sfec_curves(rx_powers_dbm=pows)
        for mpi in (-36.0, -32.0):
            model = sim._model(mpi, oim_on=False)
            raw = [model.ber(float(p)) for p in pows]
            _assert_close(curves[(mpi, False)].bers, raw)
            _assert_close(
                curves[(mpi, True)].bers,
                [sim.fec.inner.output_ber(min(b, 0.5)) for b in raw],
            )
