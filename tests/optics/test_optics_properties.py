"""Hypothesis property suite for the optical-layer invariants.

These are the monotonicity and consistency laws the physics must obey
regardless of parameter values -- the safety net under the calibrated
constants.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.optics.ber import receiver_sensitivity_dbm
from repro.optics.eye import eye_report
from repro.optics.fec import ConcatenatedFec, InnerSoftFec, Kp4OuterCode
from repro.optics.pam4 import Pam4LinkModel

powers = st.floats(min_value=-13.0, max_value=-5.0)
mpis = st.floats(min_value=-45.0, max_value=-30.0)
bers = st.floats(min_value=1e-7, max_value=1e-2)


class TestBerMonotonicity:
    @given(powers, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_more_power_never_hurts(self, power, delta):
        model = Pam4LinkModel()
        assert model.ber(power + delta) <= model.ber(power) + 1e-15

    @given(powers, mpis)
    @settings(max_examples=40, deadline=None)
    def test_mpi_never_helps(self, power, mpi):
        clean = Pam4LinkModel().ber(power)
        dirty = Pam4LinkModel(mpi_db=mpi).ber(power)
        assert dirty >= clean - 1e-15

    @given(powers, mpis, st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_oim_never_hurts(self, power, mpi, suppression):
        base = Pam4LinkModel(mpi_db=mpi).ber(power)
        mitigated = Pam4LinkModel(mpi_db=mpi, oim_suppression_db=suppression).ber(power)
        assert mitigated <= base + 1e-15

    @given(mpis)
    @settings(max_examples=20, deadline=None)
    def test_sensitivity_worsens_with_mpi(self, mpi):
        clean = receiver_sensitivity_dbm(Pam4LinkModel())
        dirty = receiver_sensitivity_dbm(Pam4LinkModel(mpi_db=mpi))
        assert dirty >= clean - 1e-9


class TestFecLaws:
    @given(bers)
    @settings(max_examples=40, deadline=None)
    def test_concatenated_never_worse_than_outer(self, ber):
        fec = ConcatenatedFec()
        assert fec.post_fec_ber(ber) <= fec.outer.output_ber(ber) + 1e-30

    @given(bers, bers)
    @settings(max_examples=40, deadline=None)
    def test_outer_transfer_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        code = Kp4OuterCode()
        assert code.output_ber(lo) <= code.output_ber(hi) + 1e-30

    @given(st.integers(min_value=1, max_value=4), bers)
    @settings(max_examples=40, deadline=None)
    def test_stronger_inner_code_never_worse(self, t_eff, ber):
        weak = InnerSoftFec(t_eff=t_eff).output_ber(ber)
        strong = InnerSoftFec(t_eff=t_eff + 1).output_ber(ber)
        assert strong <= weak + 1e-30

    @given(bers)
    @settings(max_examples=40, deadline=None)
    def test_inner_never_amplifies_below_half(self, ber):
        # Bounded-distance pass-through cannot create more errors than in.
        assert InnerSoftFec().output_ber(ber) <= ber + 1e-30


class TestEyeBerDuality:
    @given(powers, mpis)
    @settings(max_examples=30, deadline=None)
    def test_open_eye_implies_threshold_ber(self, power, mpi):
        """An eye open at Q(2e-4) means the analytic BER clears ~2e-4.

        The eye criterion is slightly conservative (it budgets Q sigma on
        both rails), so the implication runs one way only.
        """
        model = Pam4LinkModel(mpi_db=mpi)
        report = eye_report(model, power)
        if report.open:
            assert model.ber(power) < 2e-4 * 1.05

    @given(powers)
    @settings(max_examples=30, deadline=None)
    def test_eye_heights_shrink_with_less_power(self, power):
        model = Pam4LinkModel()
        high = eye_report(model, power)
        low = eye_report(model, power - 1.0)
        assert low.worst_eye_w <= high.worst_eye_w
