"""Tests for repro.optics.circulator."""

import pytest

from repro.core.errors import ConfigurationError
from repro.optics.circulator import Circulator, bidi_ports_saved


@pytest.fixture
def circ():
    return Circulator()


class TestCyclicFlow:
    def test_cycle(self, circ):
        assert circ.output_port(1) == 2
        assert circ.output_port(2) == 3
        assert circ.output_port(3) == 1

    def test_bad_port(self, circ):
        with pytest.raises(ConfigurationError):
            circ.output_port(0)
        with pytest.raises(ConfigurationError):
            circ.output_port(4)


class TestTransmission:
    def test_forward_paths_see_insertion_loss(self, circ):
        assert circ.transmission_db(1, 2) == -circ.insertion_loss_db
        assert circ.transmission_db(2, 3) == -circ.insertion_loss_db

    def test_skip_path_is_crosstalk(self, circ):
        assert circ.transmission_db(1, 3) == circ.crosstalk_db

    def test_reverse_paths_isolated(self, circ):
        assert circ.transmission_db(2, 1) == -circ.isolation_db
        assert circ.transmission_db(3, 2) == -circ.isolation_db

    def test_same_port_is_return_loss(self, circ):
        assert circ.transmission_db(2, 2) == circ.return_loss_db

    def test_bad_ports(self, circ):
        with pytest.raises(ConfigurationError):
            circ.transmission_db(0, 1)


class TestProperties:
    def test_tx_rx_losses(self, circ):
        assert circ.tx_to_fiber_db == circ.insertion_loss_db
        assert circ.fiber_to_rx_db == circ.insertion_loss_db

    def test_equivalent_reflection(self, circ):
        assert circ.equivalent_reflection_db() == circ.crosstalk_db

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Circulator(insertion_loss_db=-1)
        with pytest.raises(ConfigurationError):
            Circulator(isolation_db=0)
        with pytest.raises(ConfigurationError):
            Circulator(crosstalk_db=5)
        with pytest.raises(ConfigurationError):
            Circulator(return_loss_db=0)


class TestPortSavings:
    def test_fifty_percent(self):
        # N bidi links save N strands => 50% of the 2N duplex strands.
        assert bidi_ports_saved(128) == 128

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bidi_ports_saved(-1)
