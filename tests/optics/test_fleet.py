"""Tests for repro.optics.fleet (Fig 13 reproduction target)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.fleet import SUPERPOD_RX_PORTS, FleetBerSampler


class TestPortCount:
    def test_fig13_port_arithmetic(self):
        """16 ports per cube face x 6 faces x 64 cubes = 6144."""
        assert SUPERPOD_RX_PORTS == 6144


class TestSampling:
    @pytest.fixture(scope="class")
    def sample(self):
        sampler = FleetBerSampler(num_ports=1500, seed=5)
        return sampler, sampler.sample()

    def test_shape(self, sample):
        _, bers = sample
        assert bers.shape == (1500,)

    def test_all_below_kp4_threshold(self, sample):
        """Fig 13: every lane meets the 2e-4 KP4 specification."""
        _, bers = sample
        assert np.all(bers < KP4_BER_THRESHOLD)

    def test_margin_about_two_decades(self, sample):
        """Fig 13: ~two orders of magnitude of margin on the worst lane."""
        sampler, bers = sample
        summary = sampler.summarize(bers)
        assert summary["worst_margin_decades"] > 1.0
        assert summary["median_margin_decades"] > 2.0

    def test_deterministic(self):
        a = FleetBerSampler(num_ports=100, seed=3).sample()
        b = FleetBerSampler(num_ports=100, seed=3).sample()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = FleetBerSampler(num_ports=100, seed=1).sample()
        b = FleetBerSampler(num_ports=100, seed=2).sample()
        assert not np.array_equal(a, b)


class TestSummary:
    def test_summary_keys(self):
        summary = FleetBerSampler(num_ports=200, seed=0).summarize()
        assert summary["ports"] == 200
        assert summary["median_ber"] <= summary["p99_ber"] <= summary["worst_ber"]
        assert summary["all_below_threshold"]

    def test_degraded_fleet_flagged(self):
        """A fleet run too close to sensitivity violates the spec."""
        bad = FleetBerSampler(
            num_ports=300, rx_power_mean_dbm=-11.5, mpi_mean_db=-30.0,
            mpi_worst_db=-28.0, seed=0,
        )
        summary = bad.summarize()
        assert not summary["all_below_threshold"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetBerSampler(num_ports=0)
