"""Tests for repro.optics.wdm_link (per-lane dispersion margins)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.optics.fiber import FiberSpan
from repro.optics.transceiver import transceiver
from repro.optics.wdm_link import WdmLinkModel


def model(key="bidi_800g_cwdm8", length_m=500.0, **kw):
    return WdmLinkModel(
        spec=transceiver(key), fiber=FiberSpan(length_m=length_m), **kw
    )


class TestLaneResults:
    def test_one_result_per_lane(self):
        results = model().lane_results()
        assert len(results) == 8

    def test_outer_lanes_pay_dispersion(self):
        """Lanes far from 1310 nm carry a larger penalty (§3.3.1)."""
        results = model(length_m=2000.0).lane_results()
        by_channel = {r.channel.center_nm: r.dispersion_penalty_db for r in results}
        assert by_channel[1271.0] > by_channel[1311.0]
        assert by_channel[1341.0] > by_channel[1311.0]

    def test_ber_spread_grows_with_length(self):
        short = model(length_m=100.0).lane_ber_spread()
        long = model(length_m=2000.0).lane_ber_spread()
        assert long > short >= 1.0

    def test_worst_lane_is_outer(self):
        worst = model(length_m=2000.0).worst_lane()
        assert worst.channel.center_nm in (1271.0, 1341.0)

    def test_mlse_halves_penalty(self):
        with_mlse = model(length_m=2000.0, use_mlse=True).worst_lane()
        without = model(length_m=2000.0, use_mlse=False).worst_lane()
        assert with_mlse.dispersion_penalty_db == pytest.approx(
            without.dispersion_penalty_db / 2
        )
        assert with_mlse.ber <= without.ber

    def test_lower_rate_less_penalty(self):
        """§3.3.1: dispersion is an issue above 100 Gb/s -- 50G lanes care less."""
        m = model(length_m=2000.0)
        fast = m.worst_lane(line_rate_gbps=100.0)
        slow = m.worst_lane(line_rate_gbps=50.0)
        assert slow.dispersion_penalty_db < fast.dispersion_penalty_db

    def test_unsupported_rate(self):
        with pytest.raises(ConfigurationError):
            model().lane_results(line_rate_gbps=25.0)


class TestLinkHealth:
    def test_short_link_ok(self):
        assert model(length_m=100.0).link_ok()

    def test_lossy_path_fails(self):
        bad = model(length_m=100.0, path_loss_db=15.0)
        assert not bad.link_ok()

    def test_cwdm4_module_has_4_lanes_per_engine_grid(self):
        results = model(key="bidi_2x400g_cwdm4").lane_results()
        assert len(results) == 8  # two CWDM4 engines reuse the grid
        centers = {r.channel.center_nm for r in results}
        assert centers == {1271.0, 1291.0, 1311.0, 1331.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            model(path_loss_db=-1.0)
