"""Tests for repro.optics.fec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.optics.fec import (
    ERROR_FREE_BER,
    KP4_BER_THRESHOLD,
    ConcatenatedFec,
    InnerSoftFec,
    Kp4OuterCode,
    kp4_channel_threshold,
)


class TestKp4:
    def test_geometry(self):
        code = Kp4OuterCode()
        assert code.t_symbols == 15
        assert code.rate == pytest.approx(514 / 544)

    def test_threshold_near_2e4(self):
        """The standalone KP4 channel threshold is the paper's ~2e-4."""
        th = kp4_channel_threshold()
        assert 1e-4 < th < 5e-4

    def test_steep_waterfall(self):
        code = Kp4OuterCode()
        assert code.output_ber(1e-4) < 1e-15
        assert code.output_ber(1e-3) > 1e-8

    def test_zero_in_zero_out(self):
        assert Kp4OuterCode().output_ber(0.0) == 0.0

    def test_tiny_input_no_underflow(self):
        assert Kp4OuterCode().output_ber(1e-18) == pytest.approx(0.0, abs=1e-20)

    def test_symbol_error_rate(self):
        code = Kp4OuterCode()
        assert code.symbol_error_rate(1e-4) == pytest.approx(1e-3, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Kp4OuterCode(n_symbols=100, k_symbols=100)
        with pytest.raises(ConfigurationError):
            Kp4OuterCode().output_ber(0.7)

    @given(st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=40, deadline=None)
    def test_monotone_transfer(self, ber):
        code = Kp4OuterCode()
        assert code.output_ber(ber) <= code.output_ber(min(0.5, ber * 2)) + 1e-30

    @given(st.floats(min_value=1e-6, max_value=5e-3))
    @settings(max_examples=40, deadline=None)
    def test_coding_gain_property(self, ber):
        """Below threshold the code always improves BER."""
        code = Kp4OuterCode()
        if ber < 2e-4:
            assert code.output_ber(ber) < ber


class TestInnerSoftFec:
    def test_rate_and_overhead(self):
        inner = InnerSoftFec()
        assert inner.rate == pytest.approx(120 / 128)
        assert inner.overhead_percent == pytest.approx(100 * (128 / 120 - 1))

    def test_low_latency(self):
        """§4.1.2: <20 ns at 200 Gb/s."""
        assert InnerSoftFec().latency_ns < 20.0

    def test_improves_ber(self):
        inner = InnerSoftFec()
        assert inner.output_ber(1e-3) < 1e-3

    def test_zero(self):
        assert InnerSoftFec().output_ber(0.0) == 0.0

    def test_block_failure_monotone(self):
        inner = InnerSoftFec()
        assert inner.block_failure_rate(1e-3) < inner.block_failure_rate(1e-2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InnerSoftFec(block_bits=100, payload_bits=100)
        with pytest.raises(ConfigurationError):
            InnerSoftFec(t_eff=0)
        with pytest.raises(ConfigurationError):
            InnerSoftFec(latency_ns=-1)


class TestConcatenation:
    def test_relaxed_channel_threshold(self):
        """The concatenated chain tolerates ~10x the channel BER of KP4 alone."""
        fec = ConcatenatedFec()
        concat_th = fec.channel_threshold()
        kp4_th = kp4_channel_threshold()
        assert concat_th > 5 * kp4_th

    def test_inner_input_threshold(self):
        fec = ConcatenatedFec()
        th = fec.inner_input_threshold()
        assert fec.inner.output_ber(th) == pytest.approx(KP4_BER_THRESHOLD, rel=0.05)

    def test_end_to_end_error_free(self):
        fec = ConcatenatedFec()
        th = fec.channel_threshold()
        assert fec.post_fec_ber(th * 0.5) < ERROR_FREE_BER

    def test_total_rate(self):
        fec = ConcatenatedFec()
        assert fec.total_rate == pytest.approx(fec.inner.rate * fec.outer.rate)

    def test_latency_from_inner(self):
        assert ConcatenatedFec().latency_ns == InnerSoftFec().latency_ns

    @given(st.floats(min_value=1e-5, max_value=3e-3))
    @settings(max_examples=40, deadline=None)
    def test_concatenated_beats_outer_alone(self, ber):
        fec = ConcatenatedFec()
        assert fec.post_fec_ber(ber) <= fec.outer.output_ber(ber) + 1e-30
