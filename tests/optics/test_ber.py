"""Tests for repro.optics.ber (Fig 11 / Fig 12 reproduction targets)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.optics.ber import BerCurve, LinkBerSimulator, receiver_sensitivity_dbm
from repro.optics.fec import KP4_BER_THRESHOLD
from repro.optics.pam4 import Pam4LinkModel


@pytest.fixture(scope="module")
def sim():
    return LinkBerSimulator()


class TestSensitivity:
    def test_clean_sensitivity_near_minus_11(self):
        s = receiver_sensitivity_dbm(Pam4LinkModel())
        assert -12.0 < s < -10.0

    def test_sensitivity_solves_target(self):
        m = Pam4LinkModel(mpi_db=-32.0)
        s = receiver_sensitivity_dbm(m, 2e-4)
        assert m.ber(s) == pytest.approx(2e-4, rel=0.02)

    def test_mpi_floor_detected(self):
        with pytest.raises(ConfigurationError):
            receiver_sensitivity_dbm(Pam4LinkModel(mpi_db=-24.0), 2e-4)

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            receiver_sensitivity_dbm(Pam4LinkModel(), 0.7)

    def test_lower_bracket_returned_if_already_met(self):
        assert receiver_sensitivity_dbm(Pam4LinkModel(), 0.4, lo_dbm=-5.0) == -5.0


class TestBerCurve:
    def test_power_at_ber_interpolates(self):
        powers = np.linspace(-14, -6, 17)
        curve = BerCurve("x", powers, Pam4LinkModel().ber_curve(powers))
        p = curve.power_at_ber(2e-4)
        direct = receiver_sensitivity_dbm(Pam4LinkModel())
        assert p == pytest.approx(direct, abs=0.1)

    def test_unreachable_target(self):
        powers = np.linspace(-8, -6, 5)
        curve = BerCurve("x", powers, Pam4LinkModel().ber_curve(powers))
        with pytest.raises(ConfigurationError):
            curve.power_at_ber(1e-30)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BerCurve("x", np.array([1.0]), np.array([1e-3]))
        with pytest.raises(ConfigurationError):
            BerCurve("x", np.array([1.0, 2.0]), np.array([1e-3]))


class TestFig11:
    def test_oim_gain_exceeds_1db(self, sim):
        """Paper: >1 dB sensitivity improvement at MPI -32 dB, BER 2e-4."""
        assert sim.oim_sensitivity_gain_db(-32.0) > 1.0

    def test_gain_grows_with_mpi(self, sim):
        assert sim.oim_sensitivity_gain_db(-32.0) > sim.oim_sensitivity_gain_db(-35.0)

    def test_sweep_structure(self, sim):
        curves = sim.mpi_sweep(mpi_levels_db=(None, -32.0))
        assert len(curves) == 4
        assert (None, True) in curves and (-32.0, False) in curves

    def test_oim_curves_below_unmitigated(self, sim):
        curves = sim.mpi_sweep(mpi_levels_db=(-30.0,))
        off = curves[(-30.0, False)]
        on = curves[(-30.0, True)]
        assert np.all(on.bers <= off.bers + 1e-18)

    def test_monte_carlo_mode_close_to_analytic(self, sim):
        powers = np.array([-11.5, -10.5])
        analytic = sim.mpi_sweep(mpi_levels_db=(-32.0,), rx_powers_dbm=powers)
        mc = sim.mpi_sweep(
            mpi_levels_db=(-32.0,), rx_powers_dbm=powers, monte_carlo=True,
            num_symbols=300_000,
        )
        a = analytic[(-32.0, False)].bers
        m = mc[(-32.0, False)].bers
        np.testing.assert_allclose(m, a, rtol=0.25)


class TestFig12:
    def test_sfec_gain_near_1_6db(self, sim):
        """Paper: 1.6 dB receiver sensitivity improvement at MPI -32 dB."""
        gain = sim.sfec_sensitivity_gain_db(-32.0)
        assert 1.2 < gain < 2.4

    def test_gain_present_without_mpi(self, sim):
        assert sim.sfec_sensitivity_gain_db(None) > 0.8

    def test_curves_sfec_below_raw(self, sim):
        curves = sim.sfec_curves(mpi_levels_db=(-32.0,))
        raw = curves[(-32.0, False)]
        sfec = curves[(-32.0, True)]
        assert np.all(sfec.bers <= raw.bers + 1e-18)


class TestMargin:
    def test_production_margin_positive(self, sim):
        decades = sim.ber_margin_decades(rx_power_dbm=-9.0, mpi_db=-35.0)
        assert decades > 1.0

    def test_infinite_for_zero_ber(self, sim):
        assert sim.ber_margin_decades(rx_power_dbm=5.0, mpi_db=None) > 10
