"""Tests for repro.optics.wavelength."""

import pytest

from repro.core.errors import ConfigurationError
from repro.optics.wavelength import CWDM4_GRID, CWDM8_GRID, WavelengthChannel, WdmGrid


class TestWavelengthChannel:
    def test_band_edges(self):
        ch = WavelengthChannel(1311.0, 20.0)
        assert ch.low_nm == 1301.0
        assert ch.high_nm == 1321.0

    def test_center_frequency(self):
        ch = WavelengthChannel(1311.0, 20.0)
        assert 228 < ch.center_thz < 229

    def test_overlap(self):
        a = WavelengthChannel(1311.0, 20.0)
        b = WavelengthChannel(1321.0, 20.0)
        c = WavelengthChannel(1351.0, 20.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WavelengthChannel(-1, 20)
        with pytest.raises(ConfigurationError):
            WavelengthChannel(1311, 0)


class TestCwdm4:
    def test_standard_centers(self):
        centers = [ch.center_nm for ch in CWDM4_GRID]
        assert centers == [1271.0, 1291.0, 1311.0, 1331.0]

    def test_span_80nm(self):
        assert CWDM4_GRID.span_nm == 80.0

    def test_channels_disjoint(self):
        chans = CWDM4_GRID.channels
        for i in range(len(chans)):
            for j in range(i + 1, len(chans)):
                assert not chans[i].overlaps(chans[j])


class TestCwdm8:
    def test_eight_channels_10nm(self):
        assert CWDM8_GRID.num_channels == 8
        assert CWDM8_GRID.spacing_nm == 10.0

    def test_same_span_as_cwdm4(self):
        """§3.3.1: 8 lanes within the same 80 nm spectral width."""
        assert CWDM8_GRID.span_nm == CWDM4_GRID.span_nm == 80.0

    def test_nests_on_cwdm4(self):
        assert CWDM8_GRID.grid_compatible(CWDM4_GRID)
        assert CWDM4_GRID.grid_compatible(CWDM8_GRID)


class TestWdmGrid:
    def test_channel_out_of_range(self):
        with pytest.raises(ConfigurationError):
            CWDM4_GRID.channel(4)
        with pytest.raises(ConfigurationError):
            CWDM4_GRID.channel(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WdmGrid("x", 1271, 10, 0)
        with pytest.raises(ConfigurationError):
            WdmGrid("x", 1271, 0, 4)

    def test_incompatible_grids(self):
        shifted = WdmGrid("shifted", first_center_nm=1276.0, spacing_nm=10.0, num_channels=8)
        assert not shifted.grid_compatible(CWDM4_GRID) or True  # centers 1276.. on CWDM4?
        # A grid far outside the CWDM window is incompatible.
        cband = WdmGrid("cband", first_center_nm=1530.0, spacing_nm=10.0, num_channels=4)
        assert not cband.grid_compatible(CWDM4_GRID)
